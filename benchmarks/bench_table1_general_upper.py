"""T1.GEN.UB — Table 1, row 1, upper bound: HA is O(√log μ).

Regenerates the clairvoyant/general-inputs upper-bound row: HA vs
First-Fit, classify-by-duration and Ren–Tang on random inputs and on the
two trap families; asserts Theorem 3.2's explicit constant held.
"""

from conftest import record

from repro.experiments.table1 import general_upper_experiment


def test_table1_general_upper(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: general_upper_experiment(
            mus=(4, 16, 64, 256), seeds=(0, 1), n_items=250
        ),
        rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # shape assertions: FF must blow up on its trap, CBD on its trap,
    # while HA stays below a small constant on every row
    ff_trap_rows = [r for r in result.rows if r[0] == "ff-trap"]
    cbd_trap_rows = [r for r in result.rows if r[0] == "cbd-trap"]
    ha_col, ff_col, cbd_col = 2, 3, 4
    assert ff_trap_rows[-1][ff_col] > 10 * ff_trap_rows[-1][ha_col]
    assert cbd_trap_rows[-1][cbd_col] > 2 * cbd_trap_rows[-1][ha_col]
    assert all(r[ha_col] < 4.0 for r in result.rows)
