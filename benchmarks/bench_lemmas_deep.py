"""LEM3.5 / LEM5.5 / LEM5.12 — deep-instrumentation lemma validations.

These step the simulator release-by-release and check the lemmas'
inequalities (or the exact Lemma 5.5 mapping) against internal algorithm
state at every moment.
"""

from conftest import record

from repro.experiments.lemmas5 import (
    lemma35_experiment,
    lemma55_experiment,
    lemma512_experiment,
)


def test_lemma35(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma35_experiment(mus=(4, 16, 64), seeds=(0, 1, 2),
                                   n_items=150),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    assert all(row[4] == 0 for row in result.rows)  # zero violations


def test_lemma55(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma55_experiment(mus=(4, 16, 64, 256, 1024)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the mapping is exact: zero mismatches over thousands of checks
    assert sum(row[1] for row in result.rows) > 5000
    assert all(row[2] == 0 for row in result.rows)


def test_lemma512(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma512_experiment(mus=(16, 64, 256), seeds=(0, 1, 2),
                                    n_items=150),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # rows really do open many bins (the lemma is exercised, not vacuous)
    assert max(row[2] for row in result.rows) >= 10
