"""T1.NC — Table 1, row 3: the non-clairvoyant setting is Θ(μ).

The adaptive adversary forces First-Fit/Best-Fit into Ω(μ), while on
random inputs FF respects the μ+4 upper bound of Tang et al. [13].
"""

from conftest import record

from repro.experiments.table1 import nonclairvoyant_experiment


def test_table1_nonclairvoyant(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: nonclairvoyant_experiment(
            gs=(4, 8, 16, 32), random_mus=(4, 16, 64), seeds=(0, 1),
            n_items=250,
        ),
        rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    adversary_ff = [
        r for r in result.rows if r[0] == "adversary" and r[2] == "FirstFit"
    ]
    # linear growth: ratio ≈ μ/2 at every scale
    for row in adversary_ff:
        mu, ratio = row[1], row[3]
        assert ratio >= mu / 2 - 1e-6
        assert ratio <= mu + 4  # the [13] upper bound still caps it
