"""T1.ALIGN.UB — Table 1, row 2: CDFF is O(log log μ) on aligned inputs.

Runs CDFF, the static-row ablation, HA and FF on σ_μ and random aligned
inputs; asserts Theorem 5.1's explicit constant and the growth ordering
(CDFF's σ_μ ratio grows like log log μ while StaticRows grows like log μ).
"""

from conftest import record

from repro.analysis.theory import loglog_mu
from repro.experiments.table1 import aligned_experiment


def test_table1_aligned(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: aligned_experiment(
            mus=(4, 16, 64, 256, 1024, 4096), seeds=(0, 1), n_items=250
        ),
        rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    sigma_rows = [r for r in result.rows if r[1] == "sigma_mu"]
    # CDFF's measured σ_μ ratio grows, but sub-logarithmically: for every
    # pair of μ values, the increase is within the loglog prediction shape
    cdff = [(r[0], r[2]) for r in sigma_rows]
    static = [(r[0], r[3]) for r in sigma_rows]
    for (mu1, c1), (mu2, c2) in zip(cdff, cdff[1:]):
        assert c2 >= c1 - 1e-9  # monotone
        # increment per μ-doubling bounded by the loglog increment + slack
        assert c2 - c1 <= 2 * (loglog_mu(mu2) - loglog_mu(mu1)) + 0.75
    # static rows grow by exactly the log-μ rate on σ_μ — CDFF must win
    assert static[-1][1] > 2.5 * cdff[-1][1]
