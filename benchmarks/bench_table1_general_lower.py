"""T1.GEN.LB — Table 1, row 1, lower bound: Ω(√log μ) for any algorithm.

Replays the Theorem 4.3 adversary against every implemented algorithm and
asserts the proof's two certified floors: ``ON ≥ μ·⌈√log μ⌉`` and
``ON/OPT_R ≥ √log μ / 8``.
"""

from conftest import record

from repro.experiments.table1 import general_lower_experiment


def test_table1_general_lower(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: general_lower_experiment(mus=(4, 16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the certified ratio column must never dip below 1 (OPT is a lower
    # bound for every online algorithm) and must respect the floor
    for row in result.rows:
        ratio, floor = row[4], row[5]
        assert ratio >= max(1.0, floor) - 1e-9
