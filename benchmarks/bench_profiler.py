"""PROFILER — overhead of the statistical stack sampler on the hot path.

Not a paper artifact.  This benchmark freezes the continuous-profiling
contract: running the streaming replay of a 1e5-item Poisson trace with
the :class:`repro.obs.prof.StackSampler` attached at its default 97 Hz
must stay within **5%** of the sampler-off throughput
(``profiler_on_ratio >= 0.95``).  The sampler only reads frames from a
background thread — the replay loop itself is untouched — so anything
worse than a few percent means the sampler has started contending for
the GIL or allocating on the hot path.

Variants (replay frontend only — the sampler is frontend-agnostic):

- ``off`` — plain replay, no sampler (the baseline);
- ``on``  — replay with ``StackSampler(97.0)`` running start-to-stop.

Each cell runs best-of-ROUNDS in fresh subprocesses so timings are not
contaminated by earlier cells' heap state; the off/on rounds are
*interleaved* so a transient load spike on the host taxes both variants
instead of poisoning one side of the ratio.  The ``on`` cell also
sanity-checks the profile itself: samples were actually taken, and the
replay cost is bit-identical to the ``off`` run (observation must never
change behaviour).

Run directly (``python benchmarks/bench_profiler.py [--smoke]``) or via
pytest; both write ``BENCH_PROFILER.json``.  ``--smoke`` is the
reduced-scale CI cell; the CI gate is ``scripts/bench_report.py
--min-profiler-ratio`` on the aggregated ``profiler_on_ratio``.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import tempfile

N_ITEMS = 100_000
SMOKE_N_ITEMS = 50_000
RATE = 40.0
MU = 16.0
SAMPLE_HZ = 97.0
ROUNDS = 7  # best-of, per cell, interleaved off/on
MIN_ON_RATIO = 0.95  # the <5% acceptance bar

VARIANTS = ("off", "on")


def generate_trace(path: pathlib.Path, n_items: int, seed: int = 0) -> None:
    """Stream a uniform-size Poisson-arrival trace to JSONL."""
    import random

    rng = random.Random(seed)
    t = 0.0
    log_mu = math.log(MU)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(n_items):
            t += rng.expovariate(RATE)
            length = math.exp(rng.uniform(0.0, log_mu))
            obj = {
                "arrival": t,
                "departure": t + length,
                "size": rng.uniform(0.02, 1.0),
            }
            fh.write(json.dumps(obj) + "\n")


def _child(variant: str, trace: str) -> None:
    """Measured body: one replay run, sampler off or on."""
    import time

    from repro.algorithms import BestFit
    from repro.engine import Engine
    from repro.workloads import iter_jsonl

    sampler = None
    if variant == "on":
        from repro.obs.prof import StackSampler

        sampler = StackSampler(SAMPLE_HZ)
        sampler.start()

    start = time.perf_counter()
    engine = Engine(BestFit())
    summary = engine.run(iter_jsonl(trace))
    elapsed = time.perf_counter() - start

    samples = None
    if sampler is not None:
        profile = sampler.stop()
        samples = profile.samples
    print(json.dumps({"items": summary.items, "cost": summary.cost,
                      "seconds": elapsed, "samples": samples}))


def _run_one(variant: str, trace: pathlib.Path) -> dict:
    """One fresh-subprocess timing of one cell."""
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src"
    out = subprocess.run(
        [sys.executable, __file__, "--child", variant, str(trace)],
        check=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_root)},
    )
    return json.loads(out.stdout)


def run_suite(n_items: int = N_ITEMS, *, gate: bool = True):
    cells: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        trace = pathlib.Path(tmp) / f"trace_{n_items}.jsonl"
        generate_trace(trace, n_items)
        for _ in range(ROUNDS):  # interleaved best-of
            for variant in VARIANTS:
                r = _run_one(variant, trace)
                assert r["items"] == n_items
                best = cells.get(variant)
                if best is None or r["seconds"] < best["seconds"]:
                    cells[variant] = r
    # observation must never change behaviour
    assert cells["on"]["cost"] == cells["off"]["cost"]
    # and must actually observe: a run this size spans many sample ticks
    assert cells["on"]["samples"] > 0, cells["on"]
    return render(cells, n_items, gate=gate), bench_metrics(cells)


def bench_metrics(cells: dict) -> dict:
    """Deterministic outcomes (+ timings, ungated) for BENCH_PROFILER.json.

    ``profiler_on_ratio`` is the headline scalar bench_report hoists and
    CI gates: sampler-on throughput as a fraction of sampler-off.
    """
    return {
        "profiler_on_ratio": cells["off"]["seconds"] / cells["on"]["seconds"],
        "sample_hz": SAMPLE_HZ,
        "samples": cells["on"]["samples"],
        "cost": cells["off"]["cost"],
        "timings": {
            variant: {"seconds": cells[variant]["seconds"]}
            for variant in VARIANTS
        },
    }


def render(cells: dict, n_items: int, *, gate: bool = True) -> str:
    ratio = cells["off"]["seconds"] / cells["on"]["seconds"]
    lines = [
        f"PROFILER — stack-sampler overhead on the hot path (BestFit "
        f"replay, {n_items:,} items, {SAMPLE_HZ:g} Hz, best of {ROUNDS})",
        "",
        f"{'variant':>8} | {'items/s':>10} {'vs off':>8}",
        "-" * 32,
    ]
    base = cells["off"]["seconds"]
    for variant in VARIANTS:
        sec = cells[variant]["seconds"]
        lines.append(
            f"{variant:>8} | {n_items / sec:>10,.0f} {sec / base:>7.3f}x"
        )
    lines += [
        "",
        f"sampler-on throughput ratio: {ratio:.3f} "
        f"(bar: >= {MIN_ON_RATIO:.2f}; {cells['on']['samples']} samples "
        f"taken)",
        "the sampler reads frames from its own thread; the replay loop "
        "runs unmodified, so the only cost is brief GIL holds at each "
        "sample tick.",
        "sampler-on agrees with sampler-off on cost bit-for-bit.",
        "",
    ]
    text = "\n".join(lines)
    # full scale enforces the contract here too; the CI gate is
    # bench_report's --min-profiler-ratio on the frozen JSON
    if gate:
        assert ratio >= MIN_ON_RATIO, text
    return text


def test_bench_profiler(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "PROFILER.txt").write_text(text)
    bench_json(output_dir, "PROFILER", metrics, algorithm="BestFit",
               generator="poisson-jsonl",
               config={"n_items": N_ITEMS, "sample_hz": SAMPLE_HZ})


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2], sys.argv[3])
    else:
        from conftest import bench_json

        smoke = "--smoke" in sys.argv[1:]
        n = SMOKE_N_ITEMS if smoke else N_ITEMS
        # smoke scale skips the full-scale assert; the CI gate is
        # bench_report's floor on the frozen profiler_on_ratio
        output, metrics = run_suite(n, gate=not smoke)
        out_dir = pathlib.Path(__file__).parent / "output"
        out_dir.mkdir(exist_ok=True)
        if not smoke:
            (out_dir / "PROFILER.txt").write_text(output)
        bench_json(out_dir, "PROFILER", metrics, algorithm="BestFit",
                   generator="poisson-jsonl",
                   config={"n_items": n, "sample_hz": SAMPLE_HZ,
                           "smoke": smoke})
        print(output)
