"""FIG1–FIG3 — regenerate the paper's three figures.

Each test renders the figure, writes it to ``benchmarks/output/``, and
asserts structural fidelity against the paper (class counts for Figure 2,
the Lemma 5.5 packing for Figure 3).
"""

import math

from conftest import record

from repro.experiments.figures_exp import (
    figure1_experiment,
    figure2_experiment,
    figure3_experiment,
)


def test_figure1(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: figure1_experiment(mu=16, n_items=60, seed=7),
        rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed
    text = result.notes[0]
    assert "row" in text and "[#" in text  # rows with load gauges


def test_figure2(benchmark, output_dir):
    result = benchmark.pedantic(lambda: figure2_experiment(mu=8), rounds=1,
                                iterations=1)
    record(output_dir, result)
    assert result.passed
    text = result.notes[0]
    # σ_8 has 4 classes; each class line plus stacking sub-lines
    for cls in range(4):
        assert f"class {cls}" in text


def test_figure3(benchmark, output_dir):
    result = benchmark.pedantic(lambda: figure3_experiment(mu=8), rounds=1,
                                iterations=1)
    record(output_dir, result)
    assert result.passed
    text = result.notes[0]
    # the paper's packing: 7 bins, cost 19 (with the corrected load)
    assert "7 bins" in text
    assert "cost 19" in text
