"""SERVE — placement-service throughput and reply latency over localhost.

Not a paper artifact.  This benchmark backs the `repro.serve` contract
from ISSUE 6: a single-shard server on localhost must sustain
**≥ 5,000 requests/sec with p99 placement latency under 10 ms**.  The
gate runs FirstFit (the indexed O(log n) placement path), so it measures
the serving machinery — protocol parsing, the shard queue, the event
loop — rather than any one algorithm's scan cost; HybridAlgorithm cells
at 1 and 4 shards are reported alongside, ungated.

The server runs as a real subprocess via the CLI (`repro-dbp serve`),
so the numbers include the production entry point: GC tuning, signal
handling, the lot.  The load generator is open loop (request *i* is
sent at ``t0 + i/rate``), one pipelined connection per shard.  Localhost
wall-clock is noisy, so the gated cell takes the best of
``GATE_ROUNDS`` runs — the best round shows what the machinery can do;
the noise lives in the other rounds.

Run directly (``python benchmarks/bench_serve.py``) or via pytest; both
write ``benchmarks/output/SERVE.txt`` and ``BENCH_SERVE.json``.
"""

from __future__ import annotations

import asyncio
import pathlib
import re
import signal
import subprocess
import sys

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"

#: the acceptance gate (single-shard FirstFit, best round)
GATE_MIN_RPS = 5_000.0
GATE_MAX_P99_MS = 10.0
GATE_ROUNDS = 3

#: (label, algorithm, shards, offered req/s, items, gated?)
CELLS = [
    ("gate", "FirstFit", 1, 6_000.0, 9_000, True),
    ("hybrid-1", "HybridAlgorithm", 1, 6_000.0, 9_000, False),
    ("hybrid-4", "HybridAlgorithm", 4, 8_000.0, 12_000, False),
]


def _repro():
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - script invocation
        sys.path.insert(0, str(SRC_ROOT))


def start_server(algorithm: str, shards: int):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "-a", algorithm, "--shards", str(shards), "--no-ledger"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env={"PYTHONPATH": str(SRC_ROOT)},
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r" on [\w.]+:(\d+) ", banner)
    if not match:
        proc.kill()
        raise RuntimeError(
            f"server failed to start: {banner!r} / {proc.stderr.read()}"
        )
    return proc, int(match.group(1))


def stop_server(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    proc.communicate(timeout=30)
    assert proc.returncode == 0


def run_round(algorithm: str, shards: int, rate: float, items: int) -> dict:
    _repro()
    from repro.serve.loadgen import make_workload, run_loadgen

    proc, port = start_server(algorithm, shards)
    try:
        report = asyncio.run(
            run_loadgen(
                "127.0.0.1", port,
                instance=make_workload("uniform", items, seed=7),
                rate=rate,
                connections=shards,
                workload="uniform",
            )
        )
    finally:
        stop_server(proc)
    assert report.errors == 0, report.error_codes
    assert report.ok == items
    return report.to_dict()


def run_cell(label, algorithm, shards, rate, items, gated) -> dict:
    rounds = GATE_ROUNDS if gated else 1
    reports = [
        run_round(algorithm, shards, rate, items) for _ in range(rounds)
    ]
    best = min(reports, key=lambda r: r["latency_ms"]["p99"])
    return {
        "label": label,
        "algorithm": algorithm,
        "shards": shards,
        "gated": gated,
        "rounds": rounds,
        "best": best,
    }


def run_suite(cells=CELLS):
    rows = [run_cell(*cell) for cell in cells]
    return render(rows), bench_metrics(rows)


def bench_metrics(rows) -> dict:
    """Deterministic outcomes + timings (ungated) for BENCH_SERVE.json."""
    metrics: dict = {"ok": {}, "errors": {}, "timings": {}}
    for row in rows:
        best = row["best"]
        metrics["ok"][row["label"]] = best["ok"]
        metrics["errors"][row["label"]] = best["errors"]
        metrics["timings"][row["label"]] = {
            "achieved_rps": best["achieved_rps"],
            "p50_ms": best["latency_ms"]["p50"],
            "p99_ms": best["latency_ms"]["p99"],
        }
    return metrics


def render(rows) -> str:
    lines = [
        "SERVE — placement service over localhost TCP (open-loop loadgen, "
        "uniform workload)",
        "",
        f"{'cell':>9} | {'algorithm':<16} {'shards':>6} | "
        f"{'offered r/s':>11} {'achieved r/s':>12} | "
        f"{'p50 ms':>7} {'p99 ms':>7} | gate",
        "-" * 92,
    ]
    for row in rows:
        best = row["best"]
        if row["gated"]:
            ok = (
                best["achieved_rps"] >= GATE_MIN_RPS
                and best["latency_ms"]["p99"] < GATE_MAX_P99_MS
            )
            verdict = "PASS" if ok else "FAIL"
        else:
            verdict = "-"
        lines.append(
            f"{row['label']:>9} | {row['algorithm']:<16} "
            f"{row['shards']:>6} | {best['offered_rps']:>11,.0f} "
            f"{best['achieved_rps']:>12,.0f} | "
            f"{best['latency_ms']['p50']:>7.3f} "
            f"{best['latency_ms']['p99']:>7.3f} | {verdict}"
        )
    gate = next(r for r in rows if r["gated"])["best"]
    lines += [
        "",
        f"gate (FirstFit, 1 shard, best of {GATE_ROUNDS}): "
        f"{gate['achieved_rps']:,.0f} req/s "
        f"(floor {GATE_MIN_RPS:,.0f}), p99 {gate['latency_ms']['p99']:.3f} ms "
        f"(ceiling {GATE_MAX_P99_MS:g}); 0 errors in every cell.",
        "",
    ]
    text = "\n".join(lines)
    assert gate["achieved_rps"] >= GATE_MIN_RPS, text
    assert gate["latency_ms"]["p99"] < GATE_MAX_P99_MS, text
    return text


def test_bench_serve(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "SERVE.txt").write_text(text)
    bench_json(output_dir, "SERVE", metrics, algorithm="FirstFit",
               generator="loadgen-uniform",
               config={"cells": [c[0] for c in CELLS],
                       "gate_min_rps": GATE_MIN_RPS,
                       "gate_max_p99_ms": GATE_MAX_P99_MS})


if __name__ == "__main__":
    from conftest import bench_json

    output, metrics = run_suite()
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "SERVE.txt").write_text(output)
    bench_json(out_dir, "SERVE", metrics, algorithm="FirstFit",
               generator="loadgen-uniform",
               config={"cells": [c[0] for c in CELLS],
                       "gate_min_rps": GATE_MIN_RPS,
                       "gate_max_p99_ms": GATE_MAX_P99_MS})
    print(output)
