"""SERVE — placement-service throughput and reply latency over localhost.

Not a paper artifact.  This benchmark backs the `repro.serve` contract
from ISSUE 6: a single-shard server on localhost must sustain
**≥ 5,000 requests/sec with p99 placement latency under 10 ms**.  The
gate runs FirstFit (the indexed O(log n) placement path), so it measures
the serving machinery — protocol parsing, the shard queue, the event
loop — rather than any one algorithm's scan cost; HybridAlgorithm cells
at 1 and 4 shards are reported alongside, ungated.

The server runs as a real subprocess via the CLI (`repro-dbp serve`),
so the numbers include the production entry point: GC tuning, signal
handling, the lot.  The load generator is open loop (request *i* is
sent at ``t0 + i/rate``), one pipelined connection per shard.  Localhost
wall-clock is noisy, so the gated cell takes the best of
``GATE_ROUNDS`` runs — the best round shows what the machinery can do;
the noise lives in the other rounds.

Run directly (``python benchmarks/bench_serve.py``) or via pytest; both
write ``benchmarks/output/SERVE.txt`` and ``BENCH_SERVE.json``.
"""

from __future__ import annotations

import asyncio
import pathlib
import re
import signal
import subprocess
import sys

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"

#: the acceptance gate (single-shard FirstFit, best round)
GATE_MIN_RPS = 5_000.0
GATE_MAX_P99_MS = 10.0
GATE_ROUNDS = 3

#: the frozen SERVE.txt gate-cell throughput (FirstFit, 1 shard): the
#: telemetry-off run must stay within TELEMETRY_MAX_OFF_OVERHEAD of it,
#: so the telemetry hook sites (one ``is None`` check each) stay free
BASELINE_GATE_RPS = 5_914.0
TELEMETRY_MAX_OFF_OVERHEAD = 0.05

#: (label, algorithm, shards, offered req/s, items, gated?, telemetry?)
CELLS = [
    ("gate", "FirstFit", 1, 6_000.0, 9_000, True, False),
    ("tel-on", "FirstFit", 1, 6_000.0, 9_000, False, True),
    ("hybrid-1", "HybridAlgorithm", 1, 6_000.0, 9_000, False, False),
    ("hybrid-4", "HybridAlgorithm", 4, 8_000.0, 12_000, False, False),
]

#: ``--smoke``: the reduced-scale CI cells — just the telemetry-off/on
#: pair that feeds the perf-smoke overhead gate in bench_report
SMOKE_CELLS = [
    ("gate", "FirstFit", 1, 6_000.0, 3_000, True, False),
    ("tel-on", "FirstFit", 1, 6_000.0, 3_000, False, True),
]


def _repro():
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - script invocation
        sys.path.insert(0, str(SRC_ROOT))


def start_server(algorithm: str, shards: int, telemetry: bool = False):
    cmd = [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
           "-a", algorithm, "--shards", str(shards), "--no-ledger"]
    if telemetry:
        cmd.append("--telemetry")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env={"PYTHONPATH": str(SRC_ROOT)},
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r" on [\w.]+:(\d+) ", banner)
    if not match:
        proc.kill()
        raise RuntimeError(
            f"server failed to start: {banner!r} / {proc.stderr.read()}"
        )
    return proc, int(match.group(1))


def stop_server(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    proc.communicate(timeout=30)
    assert proc.returncode == 0


def run_round(
    algorithm: str, shards: int, rate: float, items: int,
    telemetry: bool = False,
) -> dict:
    _repro()
    from repro.serve.loadgen import make_workload, run_loadgen

    proc, port = start_server(algorithm, shards, telemetry)
    try:
        report = asyncio.run(
            run_loadgen(
                "127.0.0.1", port,
                instance=make_workload("uniform", items, seed=7),
                rate=rate,
                connections=shards,
                workload="uniform",
                trace=telemetry,
            )
        )
    finally:
        stop_server(proc)
    assert report.errors == 0, report.error_codes
    assert report.ok == items
    if telemetry:
        served = report.server_telemetry["merged"]["counters"]["requests"]
        assert served >= items, report.server_telemetry
    return report.to_dict()


def run_cell(label, algorithm, shards, rate, items, gated, telemetry) -> dict:
    # the telemetry-on cell gets gate rounds too: its ratio against the
    # gate cell is only honest when both sides take their best round
    rounds = GATE_ROUNDS if (gated or telemetry) else 1
    reports = [
        run_round(algorithm, shards, rate, items, telemetry)
        for _ in range(rounds)
    ]
    best = min(reports, key=lambda r: r["latency_ms"]["p99"])
    return {
        "label": label,
        "algorithm": algorithm,
        "shards": shards,
        "gated": gated,
        "telemetry": telemetry,
        "rounds": rounds,
        "best": best,
    }


def run_suite(cells=CELLS, gate: bool = True):
    rows = [run_cell(*cell) for cell in cells]
    return render(rows, gate=gate), bench_metrics(rows)


def bench_metrics(rows) -> dict:
    """Deterministic outcomes + timings (ungated) for BENCH_SERVE.json.

    The two scalar ratios are hoisted into the bench-report headline:
    ``telemetry_off_ratio`` (gate cell vs the frozen baseline — the
    <5% overhead bar) and ``telemetry_on_ratio`` (full tracing vs the
    off path, reported, ungated).
    """
    metrics: dict = {"ok": {}, "errors": {}, "timings": {}}
    for row in rows:
        best = row["best"]
        metrics["ok"][row["label"]] = best["ok"]
        metrics["errors"][row["label"]] = best["errors"]
        metrics["timings"][row["label"]] = {
            "achieved_rps": best["achieved_rps"],
            "p50_ms": best["latency_ms"]["p50"],
            "p99_ms": best["latency_ms"]["p99"],
        }
    gate = next((r for r in rows if r["label"] == "gate"), None)
    if gate is not None:
        metrics["telemetry_off_ratio"] = (
            gate["best"]["achieved_rps"] / BASELINE_GATE_RPS
        )
        tel = next((r for r in rows if r["telemetry"]), None)
        if tel is not None:
            metrics["telemetry_on_ratio"] = (
                tel["best"]["achieved_rps"] / gate["best"]["achieved_rps"]
            )
    return metrics


def render(rows, gate: bool = True) -> str:
    lines = [
        "SERVE — placement service over localhost TCP (open-loop loadgen, "
        "uniform workload)",
        "",
        f"{'cell':>9} | {'algorithm':<16} {'shards':>6} | "
        f"{'offered r/s':>11} {'achieved r/s':>12} | "
        f"{'p50 ms':>7} {'p99 ms':>7} | gate",
        "-" * 92,
    ]
    for row in rows:
        best = row["best"]
        if row["gated"]:
            ok = (
                best["achieved_rps"] >= GATE_MIN_RPS
                and best["latency_ms"]["p99"] < GATE_MAX_P99_MS
            )
            verdict = "PASS" if ok else "FAIL"
        else:
            verdict = "-"
        lines.append(
            f"{row['label']:>9} | {row['algorithm']:<16} "
            f"{row['shards']:>6} | {best['offered_rps']:>11,.0f} "
            f"{best['achieved_rps']:>12,.0f} | "
            f"{best['latency_ms']['p50']:>7.3f} "
            f"{best['latency_ms']['p99']:>7.3f} | {verdict}"
        )
    gate_best = next(r for r in rows if r["gated"])["best"]
    lines += [
        "",
        f"gate (FirstFit, 1 shard, best of {GATE_ROUNDS}): "
        f"{gate_best['achieved_rps']:,.0f} req/s "
        f"(floor {GATE_MIN_RPS:,.0f}), "
        f"p99 {gate_best['latency_ms']['p99']:.3f} ms "
        f"(ceiling {GATE_MAX_P99_MS:g}); 0 errors in every cell.",
    ]
    off_ratio = gate_best["achieved_rps"] / BASELINE_GATE_RPS
    floor = 1.0 - TELEMETRY_MAX_OFF_OVERHEAD
    tel = next((r for r in rows if r["telemetry"]), None)
    if tel is not None:
        on_ratio = tel["best"]["achieved_rps"] / gate_best["achieved_rps"]
        lines.append(
            f"telemetry: off-path {off_ratio:.3f}x the frozen baseline "
            f"({BASELINE_GATE_RPS:,.0f} req/s; floor {floor:.2f}x), "
            f"full tracing {on_ratio:.3f}x the off-path."
        )
    lines.append("")
    text = "\n".join(lines)
    if gate:
        assert gate_best["achieved_rps"] >= GATE_MIN_RPS, text
        assert gate_best["latency_ms"]["p99"] < GATE_MAX_P99_MS, text
        assert off_ratio >= floor, text
    return text


def test_bench_serve(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "SERVE.txt").write_text(text)
    bench_json(output_dir, "SERVE", metrics, algorithm="FirstFit",
               generator="loadgen-uniform",
               config={"cells": [c[0] for c in CELLS],
                       "gate_min_rps": GATE_MIN_RPS,
                       "gate_max_p99_ms": GATE_MAX_P99_MS})


if __name__ == "__main__":
    from conftest import bench_json

    smoke = "--smoke" in sys.argv[1:]
    cells = SMOKE_CELLS if smoke else CELLS
    # smoke scale skips the full-scale asserts; the CI gate is
    # bench_report's floor on the aggregated telemetry_off_ratio
    output, metrics = run_suite(cells, gate=not smoke)
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    if not smoke:
        (out_dir / "SERVE.txt").write_text(output)
    bench_json(out_dir, "SERVE", metrics, algorithm="FirstFit",
               generator="loadgen-uniform",
               config={"cells": [c[0] for c in cells],
                       "smoke": smoke,
                       "gate_min_rps": GATE_MIN_RPS,
                       "gate_max_p99_ms": GATE_MAX_P99_MS,
                       "baseline_gate_rps": BASELINE_GATE_RPS})
    print(output)
