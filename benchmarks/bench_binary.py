"""COR5.8 / LEM5.9 / PROP5.3 — Section 5.1 binary-input results."""

from conftest import record

from repro.experiments.binary import (
    cor58_experiment,
    lemma59_experiment,
    prop53_experiment,
)


def test_cor58(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: cor58_experiment(mus=(2, 4, 8, 16, 64, 256, 1024, 4096)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # exact identity: zero mismatches at every μ
    assert all(r[2] == 0 for r in result.rows)


def test_lemma59(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma59_experiment(ns=(2, 4, 8, 12, 16, 20, 24)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_prop53(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: prop53_experiment(mus=(4, 16, 64, 256, 1024, 4096, 16384)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the measured ratio grows strictly (log log μ shape) yet stays under bound
    ratios = [r[3] for r in result.rows]
    assert ratios == sorted(ratios)
