"""ABL.THRESH / ABL.ANYFIT / ABL.ROWS — ablations of the design choices."""

from conftest import record

from repro.experiments.ablations import (
    anyfit_ablation,
    rows_ablation,
    threshold_ablation,
)


def test_threshold(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: threshold_ablation(mus=(16, 256), seeds=(0, 1), n_items=250),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    paper = next(r for r in result.rows if "paper" in r[0])
    all_gn = next(r for r in result.rows if "all-GN" in r[0])
    # the paper threshold survives the ff-trap; the FF-degenerate one dies
    assert paper[-1] < 5.0
    assert all_gn[-1] > 10 * paper[-1]


def test_anyfit(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: anyfit_ablation(mus=(16, 256), seeds=(0, 1, 2), n_items=250),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    # footnote 1: rules within a few percent of each other
    for col in range(1, len(result.headers)):
        vals = [r[col] for r in result.rows]
        assert max(vals) - min(vals) < 0.25


def test_rows(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: rows_ablation(mus=(16, 64, 256, 1024, 4096)), rounds=1,
        iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the gap factor must widen with μ (exponential separation in the limit)
    gaps = [r[4] for r in result.rows]
    assert gaps == sorted(gaps)
