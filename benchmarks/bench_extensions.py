"""OBJ.MOTIVATION / EXT.GREEDY / EXT.SHALOM / OPEN.ALIGN — extensions."""

from conftest import record

from repro.experiments.extensions import (
    greedy_experiment,
    open_aligned_experiment,
    shalom_experiment,
)
from repro.experiments.objectives import objectives_experiment


def test_objectives_motivation(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: objectives_experiment(mu=64, k=12), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()
    spike, trap = result.rows
    assert spike[1] == trap[1]                 # max-bins blind
    assert abs(spike[2] - trap[2]) <= 1.0      # momentary blind
    assert trap[4] > 4 * spike[4]              # usage-time separates


def test_greedy_extension(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: greedy_experiment(mus=(16, 64, 256)), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_shalom_equivalence(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: shalom_experiment(gs=(2, 4, 8)), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_open_aligned_search(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: open_aligned_experiment(mus=(8, 32, 128)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # σ_μ stays the hardest known aligned family
    for row in result.rows:
        assert row[1] <= row[2] + 0.5


def test_resource_augmentation(benchmark, output_dir):
    from repro.experiments.augmentation import augmentation_experiment

    result = benchmark.pedantic(
        lambda: augmentation_experiment(), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # ε = 0.25 collapses the trap by >10×; ε = 1.0 partially re-arms it
    by_eps = {row[0]: row[1] for row in result.rows}
    assert by_eps[0.25] < 0.1 * by_eps[0.0]
    assert by_eps[1.0] > by_eps[0.25]


def test_nr_gap(benchmark, output_dir):
    from repro.experiments.gaps import nr_gap_experiment

    result = benchmark.pedantic(
        lambda: nr_gap_experiment(), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_adaptivity(benchmark, output_dir):
    from repro.experiments.gaps import adaptivity_experiment

    result = benchmark.pedantic(
        lambda: adaptivity_experiment(), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the prefix ratio never exceeds a small constant even as μ grows 128×
    assert all(row[4] < 3.0 for row in result.rows)


def test_randomized_robustness(benchmark, output_dir):
    from repro.experiments.randomized import randomized_experiment

    result = benchmark.pedantic(
        lambda: randomized_experiment(), rounds=1, iterations=1
    )
    record(output_dir, result)
    assert result.passed, result.render()
