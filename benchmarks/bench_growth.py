"""GROWTH — the measured ratio curves grow at Table 1's predicted rates.

Least-squares law fitting must pick log log μ for CDFF-on-σ_μ, log μ for
the static rows and the CBD trap, and linear μ for the First-Fit trap and
the non-clairvoyant adversary.
"""

from conftest import record

from repro.experiments.growth import growth_experiment


def test_growth(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: growth_experiment(mus=(4, 16, 64, 256, 1024)),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
    # the static-rows curve is log μ + 1 *exactly*: zero residual
    static = next(r for r in result.rows if "StaticRows" in r[0])
    assert static[4] < 1e-9
