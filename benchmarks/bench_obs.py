"""OBS — overhead of the observability layer on the hot placement path.

Not a paper artifact.  This benchmark backs the obs-layer contract: with
observability *disabled* (no tracer, or a tracer constructed disabled —
the engine then skips attaching the TracingListener entirely), both
``simulate()`` and the streaming ``replay`` must run within **5%** of
the plain un-instrumented baseline.  Enabled tracing and the
deterministic MetricsListener are measured too, for the record — they
are allowed to cost more (every kernel event becomes a Python call),
and the numbers here are what docs/observability.md quotes.

Variants per frontend:

- ``plain``   — no observability at all (the baseline);
- ``off``     — ``Tracer(enabled=False)`` handed to the frontend: the
  construct-time switch must make this indistinguishable from plain;
- ``trace``   — enabled tracer, default ring capacity;
- ``metrics`` — the deterministic :class:`repro.obs.MetricsListener`;
- ``inv``     — the :class:`repro.obs.invariants.InvariantMonitor`
  re-deriving the theory bounds online.

Each (frontend, variant) cell runs best-of-3 in fresh subprocesses so
timings are not contaminated by earlier cells' heap state.

Run directly (``python benchmarks/bench_obs.py``) or via pytest; both
write ``benchmarks/output/OBS.txt``.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import tempfile

N_ITEMS = 100_000
RATE = 40.0
MU = 16.0
ROUNDS = 3  # best-of, per cell
MAX_OFF_OVERHEAD = 1.05  # the <5% acceptance bar

VARIANTS = ("plain", "off", "trace", "metrics", "inv")


def generate_trace(path: pathlib.Path, n_items: int, seed: int = 0) -> None:
    """Stream a uniform-size Poisson-arrival trace to JSONL."""
    import random

    rng = random.Random(seed)
    t = 0.0
    log_mu = math.log(MU)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(n_items):
            t += rng.expovariate(RATE)
            length = math.exp(rng.uniform(0.0, log_mu))
            obj = {
                "arrival": t,
                "departure": t + length,
                "size": rng.uniform(0.02, 1.0),
            }
            fh.write(json.dumps(obj) + "\n")


def _child(frontend: str, variant: str, trace: str) -> None:
    """Measured body: one run of one frontend/variant cell."""
    import time

    from repro.algorithms import BestFit
    from repro.obs import MetricsListener, Tracer

    tracer = None
    listener = None
    if variant == "off":
        tracer = Tracer(enabled=False)
    elif variant == "trace":
        tracer = Tracer()
    elif variant == "metrics":
        listener = MetricsListener()
    elif variant == "inv":
        from repro.obs.invariants import InvariantMonitor

        listener = InvariantMonitor(algorithm="BestFit")

    start = time.perf_counter()
    if frontend == "simulate":
        from repro.core.simulation import simulate
        from repro.workloads import load_jsonl

        # simulate() has no tracer arg; adapt through the listener slot
        if tracer is not None and tracer.enabled:
            from repro.obs import TracingListener

            listener = TracingListener(tracer)
        result = simulate(BestFit(), load_jsonl(trace), listener=listener)
        items, cost = len(result.items), result.cost
    elif frontend == "replay":
        from repro.engine import Engine
        from repro.workloads import iter_jsonl

        engine = Engine(
            BestFit(),
            tracer=tracer,
            listeners=(listener,) if listener is not None else (),
        )
        summary = engine.run(iter_jsonl(trace))
        items, cost = summary.items, summary.cost
    else:  # pragma: no cover - driver bug
        raise SystemExit(f"unknown frontend {frontend!r}")
    elapsed = time.perf_counter() - start
    violations = None
    if variant == "inv":
        listener.finalize()
        violations = len(listener.violations)
        assert listener.ok, listener.violations
    print(json.dumps({"items": items, "cost": cost, "seconds": elapsed,
                      "violations": violations}))


def _run_cell(frontend: str, variant: str, trace: pathlib.Path) -> dict:
    """Best-of-ROUNDS fresh-subprocess timing for one cell."""
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src"
    best = None
    for _ in range(ROUNDS):
        out = subprocess.run(
            [sys.executable, __file__, "--child", frontend, variant,
             str(trace)],
            check=True,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src_root)},
        )
        r = json.loads(out.stdout)
        if best is None or r["seconds"] < best["seconds"]:
            best = r
    return best


def run_suite(n_items: int = N_ITEMS) -> str:
    cells: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        trace = pathlib.Path(tmp) / f"trace_{n_items}.jsonl"
        generate_trace(trace, n_items)
        for frontend in ("simulate", "replay"):
            for variant in VARIANTS:
                r = _run_cell(frontend, variant, trace)
                assert r["items"] == n_items
                cells[(frontend, variant)] = r
            # observation must never change behaviour
            base_cost = cells[(frontend, "plain")]["cost"]
            for variant in VARIANTS[1:]:
                assert cells[(frontend, variant)]["cost"] == base_cost, (
                    frontend, variant,
                )
    return render(cells, n_items), bench_metrics(cells)


def bench_metrics(cells: dict) -> dict:
    """Deterministic outcomes (+ timings, ungated) for BENCH_OBS.json."""
    metrics: dict = {"costs": {}, "violations": {}, "timings": {}}
    for frontend in ("simulate", "replay"):
        metrics["costs"][frontend] = cells[(frontend, "plain")]["cost"]
        metrics["violations"][frontend] = cells[(frontend, "inv")][
            "violations"
        ]
        base = cells[(frontend, "plain")]["seconds"]
        metrics["timings"][frontend] = {
            variant: {
                "seconds": cells[(frontend, variant)]["seconds"],
                "vs_plain": cells[(frontend, variant)]["seconds"] / base,
            }
            for variant in VARIANTS
        }
    return metrics


def render(cells: dict, n_items: int) -> str:
    lines = [
        f"OBS — observability overhead on the hot path (BestFit, "
        f"{n_items:,} items, Poisson rate={RATE:g}, mu={MU:g}, "
        f"best of {ROUNDS})",
        "",
        f"{'frontend':>10} {'variant':>9} | {'items/s':>10} {'vs plain':>9}",
        "-" * 46,
    ]
    for frontend in ("simulate", "replay"):
        base = cells[(frontend, "plain")]["seconds"]
        for variant in VARIANTS:
            sec = cells[(frontend, variant)]["seconds"]
            lines.append(
                f"{frontend:>10} {variant:>9} | {n_items / sec:>10,.0f} "
                f"{sec / base:>8.3f}x"
            )
    off_sim = (
        cells[("simulate", "off")]["seconds"]
        / cells[("simulate", "plain")]["seconds"]
    )
    off_rep = (
        cells[("replay", "off")]["seconds"]
        / cells[("replay", "plain")]["seconds"]
    )
    lines += [
        "",
        f"tracing-off overhead: simulate {off_sim:.3f}x, replay "
        f"{off_rep:.3f}x (bar: <= {MAX_OFF_OVERHEAD:.2f}x).",
        "a disabled tracer is a construct-time no-op: the engine never "
        "attaches the TracingListener, so the kernel loop is untouched.",
        "every variant agrees with the plain run on cost bit-for-bit.",
        "",
    ]
    text = "\n".join(lines)
    # the obs layer's acceptance bar: <5% with observability disabled
    assert off_sim <= MAX_OFF_OVERHEAD, text
    assert off_rep <= MAX_OFF_OVERHEAD, text
    return text


def test_bench_obs(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "OBS.txt").write_text(text)
    bench_json(output_dir, "OBS", metrics, algorithm="BestFit",
               generator="poisson-jsonl", config={"n_items": N_ITEMS})


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2], sys.argv[3], sys.argv[4])
    else:
        from conftest import bench_json

        n = int(sys.argv[1]) if len(sys.argv) > 1 else N_ITEMS
        output, metrics = run_suite(n)
        out_dir = pathlib.Path(__file__).parent / "output"
        out_dir.mkdir(exist_ok=True)
        (out_dir / "OBS.txt").write_text(output)
        bench_json(out_dir, "OBS", metrics, algorithm="BestFit",
                   generator="poisson-jsonl", config={"n_items": n})
        print(output)
