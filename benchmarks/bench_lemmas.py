"""LEM3.1 / LEM3.3 / COR3.4 / THM4.2 — Section 3 lemma validations."""

from conftest import record

from repro.experiments.lemmas import (
    cor34_experiment,
    dc_experiment,
    lemma31_experiment,
    lemma33_experiment,
)


def test_lemma31(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma31_experiment(mus=(4, 16, 64), seeds=(0, 1, 2), n_items=180),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_lemma33(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: lemma33_experiment(
            mus=(4, 16, 64, 256, 1024), seeds=(0, 1, 2), n_items=500
        ),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_cor34(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: cor34_experiment(mus=(4, 16, 64), seeds=(0, 1, 2), n_items=120),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()


def test_dc_4approx(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: dc_experiment(mus=(4, 16, 64, 256), seeds=(0, 1, 2, 3),
                              n_items=200),
        rounds=1, iterations=1,
    )
    record(output_dir, result)
    assert result.passed, result.render()
