"""Benchmark-suite configuration.

Each benchmark file regenerates one paper artifact (DESIGN.md §3).  The
``benchmark`` fixture times the experiment; the experiment's own PASS flag
asserts the paper's bound held.  Rendered tables are written to
``benchmarks/output/`` so EXPERIMENTS.md can reference frozen copies.

Every benchmark additionally emits ``BENCH_<name>.json`` — a
ledger-style :class:`~repro.obs.ledger.RunRecord` of kind
``"benchmark"`` holding the run's deterministic outcomes.  CI uploads
these as artifacts, and they diff with ``repro-dbp obs diff`` like any
other ledger record.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def _ledger_module():
    # benchmarks run both under pytest (PYTHONPATH=src) and as plain
    # scripts (no PYTHONPATH); fall back to the in-repo src tree
    try:
        from repro.obs import ledger
    except ImportError:  # pragma: no cover - script invocation
        sys.path.insert(
            0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
        )
        from repro.obs import ledger
    return ledger


def bench_json(
    output_dir: pathlib.Path,
    name: str,
    metrics: dict,
    *,
    algorithm: str = "suite",
    generator: str = "benchmark",
    config: dict | None = None,
    wall_s: float | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json``: a machine-readable benchmark record.

    Put wall-clock numbers under a ``timings`` sub-dict — the sentinel
    never gates on ``metrics.timings.*``, so records stay comparable
    across machines.
    """
    ledger = _ledger_module()
    rec = ledger.RunRecord(
        kind="benchmark",
        algorithm=algorithm,
        generator=generator,
        config=dict(config or {}),
        metrics=metrics,
        wall_s=wall_s,
        git=ledger.git_sha(),
    )
    path = output_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(rec.to_dict(), indent=2, sort_keys=True, default=float)
        + "\n"
    )
    return path


def record(output_dir: pathlib.Path, result) -> None:
    """Persist an experiment's rendered table next to the benchmarks,
    plus its ``BENCH_<id>.json`` run record."""
    path = output_dir / f"{result.experiment_id}.txt"
    path.write_text(result.render())
    bench_json(
        output_dir,
        result.experiment_id,
        {
            "passed": result.passed,
            "rows": len(result.rows),
            "columns": len(result.headers),
            "table": {"headers": result.headers, "rows": result.rows},
        },
        algorithm=result.experiment_id,
        generator="experiment",
    )
