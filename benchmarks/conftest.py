"""Benchmark-suite configuration.

Each benchmark file regenerates one paper artifact (DESIGN.md §3).  The
``benchmark`` fixture times the experiment; the experiment's own PASS flag
asserts the paper's bound held.  Rendered tables are written to
``benchmarks/output/`` so EXPERIMENTS.md can reference frozen copies.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def record(output_dir: pathlib.Path, result) -> None:
    """Persist an experiment's rendered table next to the benchmarks."""
    path = output_dir / f"{result.experiment_id}.txt"
    path.write_text(result.render())
