"""ENGINE — streaming engine vs batch simulator: throughput and memory.

Not a paper artifact.  This benchmark backs the `repro.engine` contract:
the streaming replay path must match the batch simulator's throughput
order of magnitude while holding peak RSS *constant* in the trace length
(the batch path, which materialises the whole instance, grows linearly).

Each (mode, size) cell runs in a fresh subprocess so `ru_maxrss` is an
honest per-configuration high-water mark, not contaminated by earlier
cells.  Traces are Poisson-arrival JSONL files generated streamingly, so
the generator itself never holds the instance in memory either.

Run directly (``python benchmarks/bench_engine.py``) or via pytest; both
write ``benchmarks/output/ENGINE.txt``.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import tempfile

SIZES = (10_000, 100_000, 1_000_000)
RATE = 10.0  # arrivals per unit time -> bounded expected concurrency
MU = 16.0


def generate_trace(path: pathlib.Path, n_items: int, seed: int = 0) -> None:
    """Stream a Poisson-arrival trace to JSONL without materialising it."""
    import random

    rng = random.Random(seed)
    t = 0.0
    log_mu = math.log(MU)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(n_items):
            t += rng.expovariate(RATE)
            length = math.exp(rng.uniform(0.0, log_mu))
            obj = {
                "arrival": t,
                "departure": t + length,
                "size": rng.uniform(0.02, 1.0),
            }
            fh.write(json.dumps(obj) + "\n")


def _child(mode: str, trace: str) -> None:
    """Measured body: run one replay, print a JSON record, exit."""
    import resource
    import time

    from repro.algorithms import FirstFit

    start = time.perf_counter()
    if mode == "engine":
        from repro.engine import Engine
        from repro.workloads import iter_jsonl

        summary = Engine(FirstFit()).run(iter_jsonl(trace))
        items, cost = summary.items, summary.cost
    elif mode == "batch":
        from repro.core.simulation import simulate
        from repro.workloads import load_jsonl

        result = simulate(FirstFit(), load_jsonl(trace))
        items, cost = len(result.items), result.cost
    else:  # pragma: no cover - driver bug
        raise SystemExit(f"unknown mode {mode!r}")
    elapsed = time.perf_counter() - start
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "items": items,
                "cost": cost,
                "seconds": elapsed,
                "peak_rss_mb": peak_kb / 1024.0,
            }
        )
    )


def _run_cell(mode: str, trace: pathlib.Path) -> dict:
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src"
    out = subprocess.run(
        [sys.executable, __file__, "--child", mode, str(trace)],
        check=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_root)},
    )
    return json.loads(out.stdout)


def run_suite(sizes=SIZES) -> str:
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            trace = pathlib.Path(tmp) / f"trace_{n}.jsonl"
            generate_trace(trace, n)
            cell = {"n": n}
            for mode in ("batch", "engine"):
                r = _run_cell(mode, trace)
                cell[mode] = r
                assert r["items"] == n
            # parity travels with the benchmark for free
            assert cell["engine"]["cost"] == cell["batch"]["cost"]
            rows.append(cell)
            trace.unlink()
    return render(rows), bench_metrics(rows)


def bench_metrics(rows) -> dict:
    """Deterministic outcomes (+ timings, ungated) for BENCH_ENGINE.json."""
    metrics: dict = {"costs": {}, "timings": {}}
    for cell in rows:
        n = cell["n"]
        metrics["costs"][str(n)] = cell["engine"]["cost"]
        metrics["timings"][str(n)] = {
            mode: {
                "seconds": cell[mode]["seconds"],
                "peak_rss_mb": cell[mode]["peak_rss_mb"],
            }
            for mode in ("batch", "engine")
        }
    return metrics


def render(rows) -> str:
    lines = [
        "ENGINE — streaming engine vs batch simulator (FirstFit, Poisson "
        f"trace, rate={RATE:g}, mu={MU:g})",
        "",
        f"{'items':>10} | {'batch ev/s':>11} {'batch MB':>9} | "
        f"{'engine ev/s':>11} {'engine MB':>9} | cost parity",
        "-" * 78,
    ]
    for cell in rows:
        n = cell["n"]
        b, e = cell["batch"], cell["engine"]
        lines.append(
            f"{n:>10,} | {2 * n / b['seconds']:>11,.0f} "
            f"{b['peak_rss_mb']:>9.1f} | {2 * n / e['seconds']:>11,.0f} "
            f"{e['peak_rss_mb']:>9.1f} | exact"
        )
    first, last = rows[0], rows[-1]
    growth = last["engine"]["peak_rss_mb"] / first["engine"]["peak_rss_mb"]
    batch_growth = last["batch"]["peak_rss_mb"] / first["batch"]["peak_rss_mb"]
    lines += [
        "",
        f"trace length grew {last['n'] // first['n']}x; engine peak RSS "
        f"grew {growth:.2f}x (constant memory), batch grew "
        f"{batch_growth:.2f}x.",
        "engine cost == batch cost bit-for-bit at every size.",
        "",
    ]
    text = "\n".join(lines)
    # the contract: engine memory is independent of trace length
    assert growth < 1.5, text
    return text


def test_bench_engine(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "ENGINE.txt").write_text(text)
    bench_json(output_dir, "ENGINE", metrics, algorithm="FirstFit",
               generator="poisson-jsonl", config={"sizes": list(SIZES)})


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2], sys.argv[3])
    else:
        from conftest import bench_json

        sizes = tuple(int(a) for a in sys.argv[1:]) or SIZES
        output, metrics = run_suite(sizes)
        out_dir = pathlib.Path(__file__).parent / "output"
        out_dir.mkdir(exist_ok=True)
        (out_dir / "ENGINE.txt").write_text(output)
        bench_json(out_dir, "ENGINE", metrics, algorithm="FirstFit",
                   generator="poisson-jsonl", config={"sizes": list(sizes)})
        print(output)
