"""Performance regression benchmarks for the hot paths.

Not a paper artifact — these keep the substrate fast enough that the
experiment sweeps stay in seconds (the HPC guides' "profile before you
optimise" loop runs against these numbers).

Each benchmarked callable's deterministic outcome (a cost, an integral,
a count) is collected and written to ``BENCH_PERF.json`` at the end, so
the ledger sentinel can tell an optimisation that changed *speed* from
one that changed *answers*.
"""

from repro.algorithms.cdff import CDFF
from repro.algorithms.hybrid import HybridAlgorithm
from repro.core.profile import load_profile
from repro.core.simulation import simulate
from repro.offline.optimal import opt_repacking
from repro.workloads.aligned import binary_input
from repro.workloads.random_general import uniform_random

_OUTCOMES: dict = {}


def test_perf_simulate_ha(benchmark):
    inst = uniform_random(2000, 256, seed=0)
    result = benchmark(lambda: simulate(HybridAlgorithm(), inst))
    _OUTCOMES["simulate_ha_cost"] = result.cost


def test_perf_simulate_cdff_binary(benchmark):
    inst = binary_input(2048)  # 4095 items
    result = benchmark(lambda: simulate(CDFF(), inst))
    _OUTCOMES["simulate_cdff_binary_cost"] = result.cost


def test_perf_load_profile(benchmark):
    inst = uniform_random(5000, 64, seed=1)
    integral = benchmark(lambda: load_profile(inst).ceil_integral())
    _OUTCOMES["load_profile_ceil_integral"] = float(integral)


def test_perf_opt_oracle(benchmark):
    inst = uniform_random(800, 64, seed=2)
    opt = benchmark(lambda: opt_repacking(inst, max_exact=16))
    _OUTCOMES["opt_oracle_lower"] = opt.lower
    _OUTCOMES["opt_oracle_upper"] = opt.upper


def test_perf_binary_enumeration(benchmark):
    from repro.analysis.binary_strings import max_zero_run_all

    runs = benchmark(lambda: max_zero_run_all(20))
    _OUTCOMES["binary_enumeration_n"] = len(runs)


def test_zz_emit_bench_json(benchmark, output_dir):
    # runs last (zz): freeze every collected outcome as a run record.
    # Uses the benchmark fixture so --benchmark-only does not skip it.
    from conftest import bench_json

    assert _OUTCOMES, "perf benchmarks collected no outcomes"
    benchmark.pedantic(
        lambda: bench_json(output_dir, "PERF", dict(sorted(_OUTCOMES.items())),
                           algorithm="mixed", generator="hot-paths"),
        rounds=1, iterations=1,
    )
