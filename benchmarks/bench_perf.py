"""Performance regression benchmarks for the hot paths.

Not a paper artifact — these keep the substrate fast enough that the
experiment sweeps stay in seconds (the HPC guides' "profile before you
optimise" loop runs against these numbers).
"""

import numpy as np

from repro.algorithms.cdff import CDFF
from repro.algorithms.hybrid import HybridAlgorithm
from repro.core.profile import load_profile
from repro.core.simulation import simulate
from repro.offline.optimal import opt_repacking
from repro.workloads.aligned import binary_input
from repro.workloads.random_general import uniform_random


def test_perf_simulate_ha(benchmark):
    inst = uniform_random(2000, 256, seed=0)
    benchmark(lambda: simulate(HybridAlgorithm(), inst))


def test_perf_simulate_cdff_binary(benchmark):
    inst = binary_input(2048)  # 4095 items
    benchmark(lambda: simulate(CDFF(), inst))


def test_perf_load_profile(benchmark):
    inst = uniform_random(5000, 64, seed=1)
    benchmark(lambda: load_profile(inst).ceil_integral())


def test_perf_opt_oracle(benchmark):
    inst = uniform_random(800, 64, seed=2)
    benchmark(lambda: opt_repacking(inst, max_exact=16))


def test_perf_binary_enumeration(benchmark):
    from repro.analysis.binary_strings import max_zero_run_all

    benchmark(lambda: max_zero_run_all(20))
