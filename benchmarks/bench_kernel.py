"""KERNEL — columnar data plane vs boxed items, indexed vs linear scan.

Not a paper artifact.  This benchmark backs two kernel contracts:

* the **columnar data plane** (struct-of-arrays :class:`ItemStore`
  threaded through loaders → ``simulate()`` → the streaming engine) must
  beat the boxed per-:class:`Item` path it replaced by ≥1.25× on
  ``simulate()`` throughput at 1e5 items, and hold a 1e6-item instance
  in ≥30% less peak RSS than a list of boxed items;
* the residual-sorted **open-bin index** (O(log n) candidate queries
  instead of scanning every open bin per placement) must stay ≥1.2×
  over the linear scan — the index survived the columnar refactor.

The ``boxed`` cell reproduces the pre-columnar pipeline faithfully:
parse each JSONL line into a validated :class:`Item`, sort, rebuild
items with sequential uids (the old ``Instance`` did exactly this), and
release them one by one.  The ``columnar`` cell is the shipping path:
``load_jsonl`` fills columns and ``simulate()`` drains the store; the
``replay`` cell streams the same file through the engine in bounded
column chunks.  All cells must agree on cost bit-for-bit — the data
plane changes representation, never decisions.

Each cell runs in a fresh subprocess so timings (and the RSS peaks) are
not contaminated by earlier cells' heap state.

Run directly (``python benchmarks/bench_kernel.py``) or via pytest; both
write ``benchmarks/output/KERNEL.txt`` and ``BENCH_KERNEL.json``.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import tempfile

SIZES = (10_000, 100_000)
RSS_ITEMS = 1_000_000
#: ``--smoke``: the reduced scale CI runs per push (the full suite is a
#: multi-minute job); gates move to ``scripts/bench_report.py`` at a
#: noise-tolerant floor instead of the in-process acceptance bars
SMOKE_SIZES = (20_000,)
SMOKE_RSS_ITEMS = 200_000
RATE = 40.0  # arrivals per unit time -> ~100+ concurrent items
MU = 16.0

#: acceptance bars (also asserted in render())
SPEEDUP_TARGET = 1.25   # columnar vs boxed simulate() at SIZES[-1]
INDEX_TARGET = 1.2      # indexed vs linear simulate() at SIZES[-1]
RSS_TARGET = 0.30       # peak-RSS reduction for a 1e6-item instance


def generate_trace(path: pathlib.Path, n_items: int, seed: int = 0) -> None:
    """Stream a uniform-size Poisson-arrival trace to JSONL."""
    import random

    rng = random.Random(seed)
    t = 0.0
    log_mu = math.log(MU)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(n_items):
            t += rng.expovariate(RATE)
            length = math.exp(rng.uniform(0.0, log_mu))
            obj = {
                "arrival": t,
                "departure": t + length,
                "size": rng.uniform(0.02, 1.0),
            }
            fh.write(json.dumps(obj) + "\n")


def _load_boxed(trace: str):
    """The pre-columnar loader, reproduced step for step: decode each
    line's fields, build one validated Item per line, sort, rebuild
    every item with a sequential uid (the old ``Instance`` constructor
    did exactly this), then run the old instance validation scan."""
    from repro.core.item import Item

    items = []
    with open(trace, "r", encoding="utf-8") as fh:
        for line in fh:
            obj = json.loads(line)
            arrival = float(obj["arrival"])
            departure = obj.get("departure")
            if departure is not None:
                departure = float(departure)
            size = float(obj["size"])
            items.append(Item(arrival, departure, size))
    items.sort(key=lambda it: it.arrival)
    items = [
        Item(it.arrival, it.departure, it.size, uid=i)
        for i, it in enumerate(items)
    ]
    # the old Instance._validate pass: known departures, sorted
    # arrivals, unique uids
    last = float("-inf")
    seen = set()
    for it in items:
        assert it.departure is not None
        assert it.arrival >= last
        last = it.arrival
        assert it.uid not in seen
        seen.add(it.uid)
    return items


def _child(mode: str, trace: str) -> None:
    """Measured body: one cell, one fresh interpreter."""
    import time

    from repro.algorithms import BestFit

    start = time.perf_counter()
    if mode == "boxed":  # pre-columnar path: boxed parse + per-item release
        from repro.core.kernel import PlacementKernel

        items = _load_boxed(trace)
        kernel = PlacementKernel(BestFit(), record=True, indexed=True)
        release = kernel.release
        for item in items:
            release(item)
        result = kernel.finish()
        items_n, cost = len(result.items), result.cost
    elif mode in ("columnar", "linear"):  # shipping path
        from repro.core.simulation import simulate
        from repro.workloads import load_jsonl

        result = simulate(
            BestFit(), load_jsonl(trace), indexed=mode == "columnar"
        )
        items_n, cost = len(result.items), result.cost
    elif mode == "replay":  # streaming engine over bounded column chunks
        from repro.engine import Engine, open_trace_stores

        summary = Engine(BestFit(), indexed=True).run(
            open_trace_stores(trace)
        )
        items_n, cost = summary.items, summary.cost
    else:  # pragma: no cover - driver bug
        raise SystemExit(f"unknown mode {mode!r}")
    elapsed = time.perf_counter() - start
    print(json.dumps({"items": items_n, "cost": cost, "seconds": elapsed}))


def _rss_child(mode: str, n_items: str) -> None:
    """Measured body: peak RSS holding an n-item instance, fresh child."""
    import random
    import resource

    n = int(n_items)
    rng = random.Random(7)
    log_mu = math.log(MU)

    def rows():
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(RATE)
            yield t, t + math.exp(rng.uniform(0.0, log_mu)), rng.uniform(
                0.02, 1.0
            )

    if mode == "rss-boxed":  # what the old Instance retained
        from repro.core.item import Item

        held = [
            Item(a, d, s, uid=i) for i, (a, d, s) in enumerate(rows())
        ]
    elif mode == "rss-columnar":  # the struct-of-arrays representation
        from repro.core.instance import Instance

        held = Instance.from_tuples(rows())
    else:  # pragma: no cover - driver bug
        raise SystemExit(f"unknown mode {mode!r}")
    assert len(held) == n
    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({"items": n, "maxrss_kb": maxrss_kb}))


#: fresh-interpreter repetitions per timed cell; best-of wins (the min is
#: the least noise-contaminated estimate of the true cost)
REPS = 2


def _run_child(*argv: str) -> dict:
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src"
    out = subprocess.run(
        [sys.executable, __file__, "--child", *argv],
        check=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_root)},
    )
    return json.loads(out.stdout)


def run_suite(sizes=SIZES, rss_items: int = RSS_ITEMS, gate: bool = True):
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            trace = pathlib.Path(tmp) / f"trace_{n}.jsonl"
            generate_trace(trace, n)
            cell = {"n": n}
            # interleave repetitions across modes so best-of picks runs
            # from comparable machine conditions (load drifts over time)
            modes = ("boxed", "columnar", "linear", "replay")
            for rep in range(REPS):
                for mode in modes:
                    r = _run_child(mode, str(trace))
                    best = cell.get(mode)
                    if best is not None:
                        assert r["cost"] == best["cost"]
                        r = min(best, r, key=lambda c: c["seconds"])
                    cell[mode] = r
            for mode in modes:
                assert cell[mode]["items"] == n
                # representation must never change decisions
                assert cell[mode]["cost"] == cell["boxed"]["cost"]
            rows.append(cell)
            trace.unlink()
    rss = {
        "boxed": _run_child("rss-boxed", str(rss_items)),
        "columnar": _run_child("rss-columnar", str(rss_items)),
        "items": rss_items,
    }
    return render(rows, rss, gate=gate), bench_metrics(rows, rss)


def bench_metrics(rows, rss) -> dict:
    """Deterministic outcomes (+ timings, ungated) for BENCH_KERNEL.json.

    ``speedup`` / ``index_speedup`` / ``rss_reduction`` are the gated
    headline numbers; ``scripts/bench_report.py`` (and the CI perf-smoke
    step) read them from here via BENCH_SUMMARY.json.
    """
    metrics: dict = {"costs": {}, "timings": {}}
    for cell in rows:
        n = cell["n"]
        metrics["costs"][str(n)] = cell["columnar"]["cost"]
        metrics["timings"][str(n)] = {
            mode: cell[mode]["seconds"]
            for mode in ("boxed", "columnar", "linear", "replay")
        }
    last = rows[-1]
    metrics["speedup"] = (
        last["boxed"]["seconds"] / last["columnar"]["seconds"]
    )
    metrics["index_speedup"] = (
        last["linear"]["seconds"] / last["columnar"]["seconds"]
    )
    metrics["rss"] = {
        "items": rss["items"],
        "boxed_kb": rss["boxed"]["maxrss_kb"],
        "columnar_kb": rss["columnar"]["maxrss_kb"],
    }
    metrics["rss_reduction"] = 1.0 - (
        rss["columnar"]["maxrss_kb"] / rss["boxed"]["maxrss_kb"]
    )
    return metrics


def render(rows, rss, gate: bool = True) -> str:
    lines = [
        "KERNEL — columnar data plane vs boxed items (BestFit, uniform "
        f"sizes, Poisson rate={RATE:g}, mu={MU:g})",
        "",
        f"{'items':>10} | {'boxed it/s':>11} {'columnar it/s':>13} "
        f"{'speedup':>8} | {'linear it/s':>11} {'idx speedup':>11} | "
        f"{'replay it/s':>11}",
        "-" * 92,
    ]
    for cell in rows:
        n = cell["n"]
        bx = n / cell["boxed"]["seconds"]
        co = n / cell["columnar"]["seconds"]
        li = n / cell["linear"]["seconds"]
        re = n / cell["replay"]["seconds"]
        lines.append(
            f"{n:>10,} | {bx:>11,.0f} {co:>13,.0f} {co / bx:>7.2f}x | "
            f"{li:>11,.0f} {co / li:>10.2f}x | {re:>11,.0f}"
        )
    last = rows[-1]
    speedup = last["boxed"]["seconds"] / last["columnar"]["seconds"]
    index_speedup = last["linear"]["seconds"] / last["columnar"]["seconds"]
    boxed_kb = rss["boxed"]["maxrss_kb"]
    col_kb = rss["columnar"]["maxrss_kb"]
    reduction = 1.0 - col_kb / boxed_kb
    lines += [
        "",
        f"simulate() throughput at {last['n']:,} items: {speedup:.2f}x "
        f"columnar over boxed (target >= {SPEEDUP_TARGET:g}x); the "
        f"open-bin index adds {index_speedup:.2f}x over a linear scan "
        f"(target >= {INDEX_TARGET:g}x).",
        f"peak RSS holding {rss['items']:,} items: boxed "
        f"{boxed_kb / 1024:,.0f} MiB vs columnar {col_kb / 1024:,.0f} MiB "
        f"({reduction:.0%} reduction, target >= {RSS_TARGET:.0%}).",
        "boxed, columnar, linear and replay cells agree on cost "
        "bit-for-bit at every size.",
        "",
    ]
    text = "\n".join(lines)
    # the refactor's acceptance bars (skipped at --smoke scale, where
    # scripts/bench_report.py gates the summary instead)
    if gate:
        assert speedup >= SPEEDUP_TARGET, text
        assert index_speedup >= INDEX_TARGET, text
        assert reduction >= RSS_TARGET, text
    return text


def test_bench_kernel(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "KERNEL.txt").write_text(text)
    bench_json(output_dir, "KERNEL", metrics, algorithm="BestFit",
               generator="poisson-jsonl", config={"sizes": list(SIZES)})


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        if sys.argv[2].startswith("rss-"):
            _rss_child(sys.argv[2], sys.argv[3])
        else:
            _child(sys.argv[2], sys.argv[3])
    else:
        from conftest import bench_json

        args = sys.argv[1:]
        smoke = "--smoke" in args
        if smoke:
            args.remove("--smoke")
        sizes = tuple(int(a) for a in args) or (
            SMOKE_SIZES if smoke else SIZES
        )
        rss_items = SMOKE_RSS_ITEMS if smoke else RSS_ITEMS
        output, metrics = run_suite(sizes, rss_items, gate=not smoke)
        out_dir = pathlib.Path(__file__).parent / "output"
        out_dir.mkdir(exist_ok=True)
        (out_dir / "KERNEL.txt").write_text(output)
        bench_json(out_dir, "KERNEL", metrics, algorithm="BestFit",
                   generator="poisson-jsonl", config={"sizes": list(sizes)})
        print(output)
