"""KERNEL — indexed open-bin structure vs linear-scan placement.

Not a paper artifact.  This benchmark backs the placement-kernel
contract from the unification refactor: giving the kernel a
residual-sorted open-bin index (O(log n) first/best/worst/last-fit
candidate queries instead of scanning every open bin per placement) must
speed up the hot path of ``simulate()`` AND the streaming ``replay``
together — both frontends run the same kernel — with a target of ≥1.2×
``simulate()`` throughput on 1e5-item uniform traces.

Each (mode, size) cell runs in a fresh subprocess so timings are not
contaminated by earlier cells' heap state.  Traces are uniform-size
Poisson-arrival JSONL files generated streamingly; the arrival rate is
high enough that tens of bins are open at once, which is where the
linear candidate scan hurts.

Run directly (``python benchmarks/bench_kernel.py``) or via pytest; both
write ``benchmarks/output/KERNEL.txt``.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys
import tempfile

SIZES = (10_000, 100_000)
RATE = 40.0  # arrivals per unit time -> ~100+ concurrent items
MU = 16.0


def generate_trace(path: pathlib.Path, n_items: int, seed: int = 0) -> None:
    """Stream a uniform-size Poisson-arrival trace to JSONL."""
    import random

    rng = random.Random(seed)
    t = 0.0
    log_mu = math.log(MU)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(n_items):
            t += rng.expovariate(RATE)
            length = math.exp(rng.uniform(0.0, log_mu))
            obj = {
                "arrival": t,
                "departure": t + length,
                "size": rng.uniform(0.02, 1.0),
            }
            fh.write(json.dumps(obj) + "\n")


def _child(frontend: str, variant: str, trace: str) -> None:
    """Measured body: one run of one frontend/variant cell."""
    import time

    from repro.algorithms import BestFit

    indexed = variant == "indexed"
    start = time.perf_counter()
    if frontend == "simulate":
        from repro.core.simulation import simulate
        from repro.workloads import load_jsonl

        result = simulate(BestFit(), load_jsonl(trace), indexed=indexed)
        items, cost = len(result.items), result.cost
    elif frontend == "replay":
        from repro.engine import Engine
        from repro.workloads import iter_jsonl

        summary = Engine(BestFit(), indexed=indexed).run(iter_jsonl(trace))
        items, cost = summary.items, summary.cost
    else:  # pragma: no cover - driver bug
        raise SystemExit(f"unknown frontend {frontend!r}")
    elapsed = time.perf_counter() - start
    print(json.dumps({"items": items, "cost": cost, "seconds": elapsed}))


def _run_cell(frontend: str, variant: str, trace: pathlib.Path) -> dict:
    src_root = pathlib.Path(__file__).resolve().parent.parent / "src"
    out = subprocess.run(
        [sys.executable, __file__, "--child", frontend, variant, str(trace)],
        check=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_root)},
    )
    return json.loads(out.stdout)


def run_suite(sizes=SIZES) -> str:
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            trace = pathlib.Path(tmp) / f"trace_{n}.jsonl"
            generate_trace(trace, n)
            cell = {"n": n}
            for frontend in ("simulate", "replay"):
                for variant in ("linear", "indexed"):
                    r = _run_cell(frontend, variant, trace)
                    cell[f"{frontend}_{variant}"] = r
                    assert r["items"] == n
                # the index must not change behaviour, only speed
                assert (
                    cell[f"{frontend}_linear"]["cost"]
                    == cell[f"{frontend}_indexed"]["cost"]
                )
            rows.append(cell)
            trace.unlink()
    return render(rows), bench_metrics(rows)


def bench_metrics(rows) -> dict:
    """Deterministic outcomes (+ timings, ungated) for BENCH_KERNEL.json."""
    metrics: dict = {"costs": {}, "timings": {}}
    for cell in rows:
        n = cell["n"]
        metrics["costs"][str(n)] = cell["simulate_indexed"]["cost"]
        metrics["timings"][str(n)] = {
            key: cell[key]["seconds"]
            for key in ("simulate_linear", "simulate_indexed",
                        "replay_linear", "replay_indexed")
        }
    return metrics


def render(rows) -> str:
    lines = [
        "KERNEL — indexed open-bin structure vs linear scan (BestFit, "
        f"uniform sizes, Poisson rate={RATE:g}, mu={MU:g})",
        "",
        f"{'items':>10} | {'sim lin it/s':>12} {'sim idx it/s':>12} "
        f"{'speedup':>8} | {'rep lin it/s':>12} {'rep idx it/s':>12} "
        f"{'speedup':>8}",
        "-" * 88,
    ]
    for cell in rows:
        n = cell["n"]
        sl = n / cell["simulate_linear"]["seconds"]
        si = n / cell["simulate_indexed"]["seconds"]
        rl = n / cell["replay_linear"]["seconds"]
        ri = n / cell["replay_indexed"]["seconds"]
        lines.append(
            f"{n:>10,} | {sl:>12,.0f} {si:>12,.0f} {si / sl:>7.2f}x | "
            f"{rl:>12,.0f} {ri:>12,.0f} {ri / rl:>7.2f}x"
        )
    last = rows[-1]
    speedup = (
        last["simulate_linear"]["seconds"]
        / last["simulate_indexed"]["seconds"]
    )
    lines += [
        "",
        f"simulate() throughput at {last['n']:,} items: {speedup:.2f}x "
        "from the indexed open-bin structure (target >= 1.2x).",
        "indexed and linear variants agree on cost bit-for-bit at every "
        "size and on both frontends.",
        "",
    ]
    text = "\n".join(lines)
    # the refactor's acceptance bar: >= 1.2x simulate() throughput at 1e5
    assert speedup >= 1.2, text
    return text


def test_bench_kernel(benchmark, output_dir):
    from conftest import bench_json

    text, metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (output_dir / "KERNEL.txt").write_text(text)
    bench_json(output_dir, "KERNEL", metrics, algorithm="BestFit",
               generator="poisson-jsonl", config={"sizes": list(SIZES)})


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2], sys.argv[3], sys.argv[4])
    else:
        from conftest import bench_json

        sizes = tuple(int(a) for a in sys.argv[1:]) or SIZES
        output, metrics = run_suite(sizes)
        out_dir = pathlib.Path(__file__).parent / "output"
        out_dir.mkdir(exist_ok=True)
        (out_dir / "KERNEL.txt").write_text(output)
        bench_json(out_dir, "KERNEL", metrics, algorithm="BestFit",
                   generator="poisson-jsonl", config={"sizes": list(sizes)})
        print(output)
