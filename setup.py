"""Legacy setup shim — metadata lives in pyproject.toml.

Kept for maximal compatibility with legacy tooling; modern pip uses the
pyproject.toml [build-system] table directly.
"""

from setuptools import setup

setup()
