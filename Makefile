# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench report figures table1 curves docs clean all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report -o REPORT.md

figures:
	$(PYTHON) -m repro figures

table1:
	$(PYTHON) -m repro table1

curves:
	$(PYTHON) -m repro curves

docs:
	$(PYTHON) scripts/gen_api_docs.py

all: install test bench report

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
