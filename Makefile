# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-report flame report figures table1 curves docs regress sweep serve-smoke chaos clean all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Aggregate benchmarks/output/BENCH_*.json into BENCH_SUMMARY.{json,md}.
bench-report:
	$(PYTHON) scripts/bench_report.py

# Profile the baseline replay under the 97 Hz stack sampler and render
# the flamegraph views (top-functions table + collapsed + speedscope
# under benchmarks/output/).
flame:
	$(PYTHON) -m repro replay examples/traces/uniform_1k.jsonl \
	  -a HybridAlgorithm --sample-hz 997 \
	  --profile-out benchmarks/output/replay.prof.json --no-ledger
	$(PYTHON) -m repro obs flame benchmarks/output/replay.prof.json \
	  --collapsed benchmarks/output/replay.collapsed.txt \
	  --speedscope benchmarks/output/replay.speedscope.json

report:
	$(PYTHON) -m repro report -o REPORT.md

figures:
	$(PYTHON) -m repro figures

table1:
	$(PYTHON) -m repro table1

curves:
	$(PYTHON) -m repro curves

docs:
	$(PYTHON) scripts/gen_api_docs.py

# Re-run the baseline workloads and gate the fresh ledger records
# against the frozen .ledger/baseline.json (exit 1 on cost drift or
# new invariant violations).
regress:
	$(PYTHON) -m repro replay examples/traces/uniform_1k.jsonl -a FirstFit --invariants
	$(PYTHON) -m repro replay examples/traces/uniform_1k.jsonl -a HybridAlgorithm --invariants
	$(PYTHON) -m repro obs regress

# Every algorithm x workload family with the theory-invariant monitors
# attached; fails on any violation.
sweep:
	$(PYTHON) scripts/invariant_sweep.py

# Boot a placement server, round-trip 1k requests through the load
# generator, SIGTERM-drain it, then prove service/batch parity for
# every registered algorithm.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py
	$(PYTHON) -m repro.serve.parity

# Deterministic fault-injection sweep: 25 seeded schedules of network
# faults, shard crashes, and checkpoint/restore cycles on a virtual
# clock; exactly-once + decision-parity oracles must pass on each.
# Failing plans are shrunk to replayable artifacts under .ledger/chaos/.
chaos:
	$(PYTHON) -m repro chaos --schedules 25 --minimize

all: install test bench report

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
