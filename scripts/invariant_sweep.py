#!/usr/bin/env python
"""CI invariant sweep: every algorithm × every workload family, monitored.

Runs each general-input algorithm over each general generator, and each
aligned-input algorithm over each aligned generator, with an
:class:`~repro.obs.invariants.InvariantMonitor` attached, then fails
(exit 1) if ANY invariant violation was recorded anywhere.  This is the
"zero violations across the sweep" acceptance gate: the theory bounds
from the paper hold online on every run, or CI goes red.

Usage::

    PYTHONPATH=src python scripts/invariant_sweep.py [--n-items N] [-v]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    CDFF,
    BestFit,
    ClassifyByDuration,
    FirstFit,
    HybridAlgorithm,
    LastFit,
    NextFit,
    RenTang,
    StaticRowsCDFF,
    WorstFit,
    aligned_random,
    batch_jobs,
    binary_input,
    cloud_gaming,
    poisson_random,
    simulate,
    staircase,
    uniform_random,
)
from repro.obs.invariants import InvariantMonitor  # noqa: E402

#: any-fit algorithms accept arbitrary positive lengths
ANYFIT_ALGORITHMS = [
    ("FirstFit", FirstFit),
    ("BestFit", BestFit),
    ("WorstFit", WorstFit),
    ("LastFit", LastFit),
    ("NextFit", NextFit),
]

#: duration-classifying algorithms declare a [1, μ] length range
GENERAL_ALGORITHMS = ANYFIT_ALGORITHMS + [
    ("ClassifyByDuration", ClassifyByDuration),
    ("RenTang", lambda: RenTang(64.0)),
    ("HybridAlgorithm", HybridAlgorithm),
]

ALIGNED_ALGORITHMS = [
    ("CDFF", CDFF),
    ("StaticRowsCDFF", StaticRowsCDFF),
    ("FirstFit", FirstFit),
    ("HybridAlgorithm", HybridAlgorithm),
]


def general_generators(n_items: int):
    """(name, instance) pairs with lengths normalised to [1, μ]."""
    return [
        ("uniform_random", uniform_random(n_items, 64, seed=0)),
        ("poisson_random", poisson_random(8.0, 16.0, n_items / 8.0, seed=1)),
        ("staircase", staircase(64.0)),
        ("batch_jobs", batch_jobs(6, max(2, n_items // 12), seed=3)),
    ]


def anyfit_generators(n_items: int):
    """Workloads with raw (possibly sub-unit) lengths — any-fit only."""
    return [
        ("cloud_gaming", cloud_gaming(24.0, seed=2)),
    ]


def aligned_generators(n_items: int):
    return [
        ("binary_input", binary_input(64)),
        ("aligned_random", aligned_random(16, n_items, seed=4)),
    ]


def sweep(n_items: int = 300, verbose: bool = False) -> int:
    failures = 0
    runs = 0
    plans = [
        (GENERAL_ALGORITHMS, general_generators(n_items)),
        (ANYFIT_ALGORITHMS, anyfit_generators(n_items)),
        (ALIGNED_ALGORITHMS, aligned_generators(n_items)),
    ]
    for algorithms, generators in plans:
        for gen_name, instance in generators:
            for alg_name, factory in algorithms:
                monitor = InvariantMonitor(algorithm=alg_name)
                result = simulate(factory(), instance, listener=monitor)
                monitor.finalize()
                runs += 1
                status = "ok"
                if not monitor.ok:
                    failures += 1
                    status = f"{len(monitor.violations)} VIOLATION(S)"
                    for v in monitor.violations:
                        print(
                            f"  {alg_name} on {gen_name}: {v.invariant}: "
                            f"{v.message}",
                            file=sys.stderr,
                        )
                if verbose or not monitor.ok:
                    print(
                        f"{alg_name:>20s} x {gen_name:<16s} "
                        f"cost={result.cost:10.2f} "
                        f"checks={monitor.checks:6d} -> {status}"
                    )
    print(
        f"invariant sweep: {runs} runs, "
        + ("all clean" if not failures else f"{failures} run(s) violated")
    )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-items", type=int, default=300)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()
    return sweep(args.n_items, verbose=args.verbose)


if __name__ == "__main__":
    raise SystemExit(main())
