#!/usr/bin/env python3
"""End-to-end placement-service smoke test: serve, load, drain.

Boots ``repro-dbp serve`` as a real subprocess, round-trips 1,000
requests through the open-loop load generator, then SIGTERMs the server
and checks the drain summary.  CI runs this followed by
``python -m repro.serve.parity`` as the serving smoke step;
``make serve-smoke`` does the same locally.

Run:  python scripts/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import re
import signal
import subprocess
import sys

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"

N_ITEMS = 1_000
RATE = 5_000.0
SHARDS = 2


def main() -> int:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(SRC_ROOT))
    from repro.serve.loadgen import make_workload, run_loadgen

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "-a", "HybridAlgorithm", "--shards", str(SHARDS), "--no-ledger"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r" on [\w.]+:(\d+) ", banner)
    if not match:
        proc.kill()
        print(f"server failed to start: {banner!r}", file=sys.stderr)
        print(proc.stderr.read(), file=sys.stderr)
        return 1
    port = int(match.group(1))
    print(banner.rstrip())
    try:
        report = asyncio.run(
            run_loadgen(
                "127.0.0.1", port,
                instance=make_workload("uniform", N_ITEMS, seed=0),
                rate=RATE,
                connections=SHARDS,
                workload="uniform",
            )
        )
    except BaseException:
        proc.kill()
        raise
    print(report.render())
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=30)
    print(out.rstrip())
    if proc.returncode != 0:
        print(f"server exited {proc.returncode}: {err}", file=sys.stderr)
        return 1
    if report.ok != N_ITEMS or report.errors != 0:
        print(
            f"expected {N_ITEMS} ok / 0 errors, got {report.ok} ok / "
            f"{report.errors} errors {report.error_codes}",
            file=sys.stderr,
        )
        return 1
    if "drained:" not in out:
        print("no drain summary in server output", file=sys.stderr)
        return 1
    print(f"serve smoke ok: {N_ITEMS} requests round-tripped, clean drain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
