#!/usr/bin/env python3
"""Aggregate benchmarks/output/BENCH_*.json into one summary artifact.

Each benchmark run (bench_kernel, bench_engine, bench_obs, ...) freezes
its result as a ledger RunRecord under ``benchmarks/output/``.  This
script collects every ``BENCH_*.json`` into a single
``BENCH_SUMMARY.json`` plus a markdown table, surfacing the scalar
headline metrics (the kernel's columnar ``speedup`` in particular) so
CI can gate on one file instead of re-parsing each record.

Run:  python scripts/bench_report.py [--output-dir DIR] [--min-speedup X]

``--min-speedup`` makes the script exit non-zero when the kernel
benchmark's ``speedup`` metric is missing or below the floor — that is
the perf-smoke gate in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "output"

SUMMARY_JSON = "BENCH_SUMMARY.json"
SUMMARY_MD = "BENCH_SUMMARY.md"

#: Metrics hoisted into the summary's top-level ``headline`` mapping,
#: keyed by ``(bench name, metric name)``.
HEADLINE_METRICS = (
    ("KERNEL", "speedup"),
    ("KERNEL", "index_speedup"),
    ("KERNEL", "rss_reduction"),
    ("SERVE", "telemetry_off_ratio"),
    ("SERVE", "telemetry_on_ratio"),
    ("PROFILER", "profiler_on_ratio"),
)


def _scalar_metrics(metrics: dict) -> dict:
    """The flat (non-nested) numeric metrics of one record."""
    return {
        key: value
        for key, value in sorted(metrics.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def collect(output_dir: pathlib.Path) -> dict:
    """Build the summary mapping from every BENCH_*.json in ``output_dir``."""
    benches: dict[str, dict] = {}
    for path in sorted(output_dir.glob("BENCH_*.json")):
        if path.name == SUMMARY_JSON:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            record = json.loads(path.read_text())
        except ValueError as exc:
            raise SystemExit(f"bench_report: {path.name} is not valid JSON: {exc}")
        metrics = record.get("metrics") or {}
        benches[name] = {
            "file": path.name,
            "algorithm": record.get("algorithm"),
            "generator": record.get("generator"),
            "run_id": record.get("run_id"),
            "git": record.get("git"),
            "metrics": _scalar_metrics(metrics),
            "metric_groups": sorted(
                key for key, value in metrics.items() if isinstance(value, dict)
            ),
        }
    headline = {}
    for bench, metric in HEADLINE_METRICS:
        value = benches.get(bench, {}).get("metrics", {}).get(metric)
        if value is not None:
            headline[f"{bench.lower()}_{metric}"] = value
    return {"schema": 1, "benches": benches, "headline": headline}


def render_markdown(summary: dict) -> str:
    lines = [
        "# Benchmark summary",
        "",
        "Aggregated from `benchmarks/output/BENCH_*.json` by"
        " `scripts/bench_report.py` (`make bench-report`).",
        "",
        "| bench | algorithm | generator | headline metrics |",
        "|---|---|---|---|",
    ]
    for name, info in summary["benches"].items():
        metrics = info["metrics"]
        if metrics:
            shown = ", ".join(f"{k}={v:.4g}" for k, v in metrics.items())
        else:
            groups = ", ".join(info["metric_groups"]) or "none"
            shown = f"(nested: {groups})"
        lines.append(
            f"| {name} | {info['algorithm']} | {info['generator']} | {shown} |"
        )
    lines.append("")
    headline = summary["headline"]
    if headline:
        lines.append("Headline: " + ", ".join(
            f"{key} = {value:.4g}" for key, value in headline.items()
        ))
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="directory holding BENCH_*.json (default: benchmarks/output)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless the kernel columnar speedup is >= X",
    )
    parser.add_argument(
        "--min-serve-ratio", type=float, default=None, metavar="X",
        help="exit 1 unless the serve bench's telemetry-off throughput "
        "is >= X of its frozen baseline (the <5%% overhead gate is 0.95)",
    )
    parser.add_argument(
        "--min-profiler-ratio", type=float, default=None, metavar="X",
        help="exit 1 unless the stack-sampler-on replay throughput is "
        ">= X of sampler-off (the <5%% overhead gate is 0.95)",
    )
    args = parser.parse_args(argv)

    if not args.output_dir.is_dir():
        print(f"bench_report: no such directory: {args.output_dir}", file=sys.stderr)
        return 1
    summary = collect(args.output_dir)
    if not summary["benches"]:
        print(f"bench_report: no BENCH_*.json under {args.output_dir}", file=sys.stderr)
        return 1

    json_path = args.output_dir / SUMMARY_JSON
    json_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    md_path = args.output_dir / SUMMARY_MD
    md_path.write_text(render_markdown(summary))
    print(f"wrote {json_path} and {md_path} "
          f"({len(summary['benches'])} benchmark records)")

    if args.min_speedup is not None:
        speedup = summary["headline"].get("kernel_speedup")
        if speedup is None:
            print("bench_report: kernel speedup metric missing "
                  "(run benchmarks/bench_kernel.py first)", file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print(f"bench_report: kernel speedup {speedup:.3f}x is below "
                  f"the {args.min_speedup:.2f}x floor", file=sys.stderr)
            return 1
        print(f"kernel speedup {speedup:.3f}x >= {args.min_speedup:.2f}x floor")

    if args.min_serve_ratio is not None:
        ratio = summary["headline"].get("serve_telemetry_off_ratio")
        if ratio is None:
            print("bench_report: serve telemetry_off_ratio metric missing "
                  "(run benchmarks/bench_serve.py first)", file=sys.stderr)
            return 1
        if ratio < args.min_serve_ratio:
            print(f"bench_report: telemetry-off throughput is "
                  f"{ratio:.3f}x the frozen serve baseline, below the "
                  f"{args.min_serve_ratio:.2f}x floor — the telemetry "
                  f"off-path has grown a tax", file=sys.stderr)
            return 1
        print(f"serve telemetry-off ratio {ratio:.3f}x >= "
              f"{args.min_serve_ratio:.2f}x floor")

    if args.min_profiler_ratio is not None:
        ratio = summary["headline"].get("profiler_profiler_on_ratio")
        if ratio is None:
            print("bench_report: profiler_on_ratio metric missing "
                  "(run benchmarks/bench_profiler.py first)", file=sys.stderr)
            return 1
        if ratio < args.min_profiler_ratio:
            print(f"bench_report: sampler-on replay throughput is "
                  f"{ratio:.3f}x sampler-off, below the "
                  f"{args.min_profiler_ratio:.2f}x floor — the stack "
                  f"sampler has started taxing the hot path", file=sys.stderr)
            return 1
        print(f"profiler sampler-on ratio {ratio:.3f}x >= "
              f"{args.min_profiler_ratio:.2f}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
