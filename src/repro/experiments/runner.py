"""Experiment harness: tables, CSV emission, and the experiment registry.

Every paper artifact (DESIGN.md §3) maps to one function in this package
returning an :class:`ExperimentResult` — a named table plus free-form
notes.  The CLI and the benchmark suite both render these; EXPERIMENTS.md
records a frozen copy of the measured numbers next to the paper's claims.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "register",
    "run_experiment",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with right-aligned numeric columns."""

    def cell(x: Any) -> str:
        if isinstance(x, float):
            return f"{x:.3f}"
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[k]) for r in str_rows)) if str_rows else len(h)
        for k, h in enumerate(headers)
    ]
    out = []
    out.append("  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    out.append("  ".join("-" * widths[k] for k in range(len(headers))))
    for r in str_rows:
        out.append("  ".join(r[k].rjust(widths[k]) for k in range(len(headers))))
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """One experiment's outcome: a table plus conclusions."""

    experiment_id: str  #: e.g. "T1.GEN.UB" — matches DESIGN.md §3
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: List[str] = field(default_factory=list)
    passed: bool = True  #: whether every checked bound held

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = [f"== {self.experiment_id}: {self.title} [{status}] =="]
        parts.append(self.table())
        for n in self.notes:
            parts.append(f"  note: {n}")
        return "\n".join(parts) + "\n"

    def to_csv(self) -> str:
        """RFC-4180 CSV of the table (``\\n`` line ends on every platform).

        Cells containing commas, quotes or newlines are quoted/escaped by
        the ``csv`` module, so the output round-trips through any
        standard CSV reader.
        """
        buf = io.StringIO()
        w = csv.writer(buf, lineterminator="\n", quoting=csv.QUOTE_MINIMAL)
        w.writerow(self.headers)
        w.writerows(self.rows)
        return buf.getvalue()


#: experiment id -> zero-argument callable producing an ExperimentResult
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding an experiment to the registry under its DESIGN id."""

    def deco(fn: Callable[..., ExperimentResult]):
        EXPERIMENTS[experiment_id] = fn
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        return fn

    return deco


def run_experiment(
    experiment_id: str,
    *,
    profile: bool = False,
    profile_dir: Optional[Union[str, pathlib.Path]] = None,
    ledger_dir: Optional[Union[str, pathlib.Path]] = None,
    profile_info: Optional[Dict[str, Any]] = None,
) -> Tuple[ExperimentResult, Optional["object"]]:
    """Run one registered experiment, optionally under the profiler.

    Returns ``(result, report)``; ``report`` is ``None`` unless
    ``profile=True``, in which case it is a
    :class:`~repro.obs.profile.ProfileReport` covering the experiment as
    one phase (wall time, peak RSS, allocation delta/peak via
    ``tracemalloc``).  With ``profile_dir`` set, the report is also
    written as ``<id>.profile.json`` next to the experiment's other
    output — this is what gives every experiment ID a timing/memory
    record alongside its table.

    With ``ledger_dir`` set, a ``kind="experiment"`` run record (the
    table plus pass/fail, see :mod:`repro.obs.ledger`) is written there;
    ``None`` (the default) keeps library callers write-free.

    ``profile_info`` merges extra entries (e.g. stack-sampler stats and
    the profile artifact path from ``repro-dbp run --sample-hz``) into
    the record's ``profile`` section — a never-gated field, so sampler
    jitter cannot trip ``obs regress``.
    """
    fn = EXPERIMENTS.get(experiment_id)
    if fn is None:
        raise KeyError(f"unknown experiment id: {experiment_id}")
    report = None
    if profile:
        from ..obs.profile import PhaseProfiler

        prof = PhaseProfiler(trace_malloc=True, top_allocations=3)
        with prof.phase(experiment_id):
            result = fn()
        report = prof.report()
        if profile_dir is not None:
            out_dir = pathlib.Path(profile_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"{experiment_id}.profile.json"
            path.write_text(json.dumps(report.to_dict(), indent=2))
    else:
        result = fn()
    if ledger_dir is not None:
        from ..obs.ledger import RunRecord, git_sha

        profile_section = report.to_dict() if report is not None else None
        if profile_info:
            profile_section = dict(profile_section or {})
            profile_section.update(profile_info)
        record = RunRecord(
            kind="experiment",
            algorithm=experiment_id,
            generator="registry",
            config={"experiment_id": experiment_id},
            metrics={
                "passed": result.passed,
                "rows": len(result.rows),
                "columns": len(result.headers),
            },
            profile=profile_section,
            wall_s=report.total_wall_s if report is not None else None,
            git=git_sha(),
        )
        record.write(ledger_dir)
    return result, report
