"""Binary-input experiments (Section 5.1): COR5.8, LEM5.9, PROP5.3."""

from __future__ import annotations

import math
from typing import List, Sequence

from ..algorithms.cdff import CDFF
from ..analysis.binary_strings import (
    expected_max_zero_run,
    lemma59_bound,
    max_zero_run,
    sum_max_zero_run,
)
from ..analysis.theory import cdff_binary_upper_bound
from ..core.simulation import simulate
from ..core.validate import audit
from ..workloads.aligned import binary_input
from .runner import ExperimentResult, register

__all__ = ["cor58_experiment", "lemma59_experiment", "prop53_experiment"]


@register("COR5.8")
def cor58_experiment(
    mus: Sequence[int] = (2, 4, 8, 16, 64, 256, 1024),
) -> ExperimentResult:
    """Corollary 5.8: ``CDFF_{t⁺}(σ_μ) = max_0(binary(t)) + 1`` for every t.

    The strongest check in the suite — an exact pointwise identity between
    the simulated algorithm and the combinatorial formula.
    """
    headers = ["mu", "timesteps", "mismatches", "CDFF(σ_μ)", "μ+Σmax₀", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        inst = binary_input(mu)
        res = simulate(CDFF(), inst)
        audit(res)
        prof = res.open_bins_profile()
        n = int(math.log2(mu))
        mismatches = 0
        for t in range(mu):
            expected = max_zero_run(t, n) + 1 if n > 0 else 1
            if int(prof(float(t))) != expected:
                mismatches += 1
        total_expected = mu + sum_max_zero_run(mu)
        ok = mismatches == 0 and abs(res.cost - total_expected) < 1e-9
        passed = passed and ok
        rows.append([mu, mu, mismatches, res.cost, total_expected, ok])
    notes = [
        "uses the corrected σ_μ load 1/(log μ + 1) — see the binary_input "
        "docstring for the off-by-one in Definition 5.2",
    ]
    return ExperimentResult(
        "COR5.8",
        "Corollary 5.8 — CDFF on σ_μ equals the longest-zero-run formula, exactly",
        headers,
        rows,
        notes,
        passed,
    )


@register("LEM5.9")
def lemma59_experiment(ns: Sequence[int] = (2, 4, 8, 12, 16, 20)) -> ExperimentResult:
    """Lemma 5.9: ``E[max_0(b)] ≤ 2 log n`` for n i.i.d. fair bits —
    verified by exact enumeration of all 2^n strings."""
    headers = ["n", "E[max_0] (exact)", "bound 2log₂n", "ok"]
    rows: List[List[object]] = []
    passed = True
    for n in ns:
        e = expected_max_zero_run(n)
        bound = lemma59_bound(n)
        ok = e <= bound + 1e-12
        passed = passed and ok
        rows.append([n, e, bound, ok])
    return ExperimentResult(
        "LEM5.9",
        "Lemma 5.9 — expected longest zero run ≤ 2 log n (exact enumeration)",
        headers,
        rows,
        [],
        passed,
    )


@register("PROP5.3")
def prop53_experiment(
    mus: Sequence[int] = (4, 16, 64, 256, 1024, 4096),
) -> ExperimentResult:
    """Proposition 5.3: ``CDFF(σ_μ) ≤ (2 log log μ + 1)·OPT_R(σ_μ)``.

    On σ_μ the total load is exactly 1 at all times, so OPT_R(σ_μ) = μ
    exactly; the measured ratio is CDFF(σ_μ)/μ.
    """
    headers = ["mu", "CDFF(σ_μ)", "OPT_R=μ", "ratio", "bound 2loglogμ+1", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        inst = binary_input(mu)
        res = simulate(CDFF(), inst)
        ratio = res.cost / mu
        bound = cdff_binary_upper_bound(mu)
        ok = ratio <= bound + 1e-9
        passed = passed and ok
        rows.append([mu, res.cost, mu, ratio, bound, ok])
    return ExperimentResult(
        "PROP5.3",
        "Proposition 5.3 — CDFF(σ_μ) ≤ (2 log log μ + 1)·OPT_R(σ_μ)",
        headers,
        rows,
        [],
        passed,
    )
