"""EXT.AUGMENT — resource augmentation for MinUsageTime DBP.

Chan, Wong & Yung [3] analyse classical dynamic bin packing under
*resource augmentation*: the online algorithm gets bins of capacity
``1 + ε`` while OPT packs into unit bins.  The paper under reproduction
doesn't pursue this for MinUsageTime — which makes it a natural
"other families of inputs / models" extension (Conclusions) that our
simulator supports with a single parameter.

The experiment measures how much augmentation defuses the First-Fit trap:
the trap relies on blocks filling pinned bins *exactly* to 1, so capacity
``1 + ε ≥ 1 + pin`` lets new pins ride along in old bins and the Ω(μ)
blow-up collapses to O(1).  On random inputs augmentation buys little
(First-Fit is already near-optimal there).  HA's ratio barely moves —
its guarantee never depended on exact fills.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

from ..algorithms.anyfit import FirstFit
from ..algorithms.hybrid import HybridAlgorithm
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.optimal import opt_reference
from ..workloads.adversarial import ff_trap
from ..workloads.random_general import uniform_random
from .runner import ExperimentResult, register

__all__ = ["augmentation_experiment"]


@register("EXT.AUGMENT")
def augmentation_experiment(
    epsilons: Sequence[float] = (0.0, 0.05, 0.25, 1.0),
    *,
    mu: int = 256,
    pairs: int = 100,
    seeds: Sequence[int] = (0, 1),
    n_items: int = 250,
) -> ExperimentResult:
    """FF and HA with capacity 1+ε vs unit-capacity OPT_R."""
    headers = ["ε", "FF on ff-trap", "HA on ff-trap", "FF random", "HA random"]
    rows: List[List[object]] = []
    passed = True

    trap = ff_trap(mu, pairs=pairs, eps=0.01)
    trap_opt = opt_reference(trap, max_exact=10)  # OPT at capacity 1
    rand_instances = [uniform_random(n_items, mu, seed=s) for s in seeds]
    rand_opts = [opt_reference(inst, max_exact=16) for inst in rand_instances]

    trap_ff_by_eps = {}
    for eps in epsilons:
        cap = 1.0 + eps
        ff_trap_res = simulate(FirstFit(), trap, capacity=cap)
        ha_trap_res = simulate(HybridAlgorithm(), trap, capacity=cap)
        audit(ff_trap_res)
        audit(ha_trap_res)
        ff_trap_ratio = ff_trap_res.cost / trap_opt.lower
        ha_trap_ratio = ha_trap_res.cost / trap_opt.lower
        trap_ff_by_eps[eps] = ff_trap_ratio

        ff_rand, ha_rand = [], []
        for inst, opt in zip(rand_instances, rand_opts):
            ff_rand.append(
                simulate(FirstFit(), inst, capacity=cap).cost / opt.lower
            )
            ha_rand.append(
                simulate(HybridAlgorithm(), inst, capacity=cap).cost / opt.lower
            )
        rows.append(
            [eps, ff_trap_ratio, ha_trap_ratio,
             statistics.mean(ff_rand), statistics.mean(ha_rand)]
        )

    # some ε > 0 must collapse the trap (augmentation helps) — but note the
    # collapse is NOT monotone: ε = 1.0 makes pairs fill capacity-2 bins
    # exactly again and partially re-arms the trap (the classical First-Fit
    # capacity anomaly, also pinned by the simulator property tests)
    eps_pos = [e for e in epsilons if e > 0]
    if eps_pos:
        best = min(trap_ff_by_eps[e] for e in eps_pos)
        if best > 0.2 * trap_ff_by_eps[min(epsilons)]:
            passed = False
    notes = [
        "denominators are the *unit-capacity* OPT_R lower bound — the "
        "resource-augmentation convention of [3]",
        "FF's Ω(μ) trap depends on exact fills: ε past the pin size lets FF "
        "consolidate and the ratio collapses; HA never needed the slack",
        "the collapse is non-monotone in ε — at ε = 1.0 two (pin, block) "
        "pairs fill a capacity-2 bin exactly and the trap re-arms: capacity "
        "is not a monotone resource for First-Fit",
    ]
    return ExperimentResult(
        "EXT.AUGMENT",
        "Extension — resource augmentation (capacity 1+ε) defuses the FF trap",
        headers,
        rows,
        notes,
        passed,
    )
