"""User-facing sweep utility: algorithms × μ × seeds → ratio table with CIs.

This is the building block a downstream user reaches for first: "how do
these policies compare on *my* workload as μ grows?"  It combines the
workload generators, the certified-ratio machinery, bootstrap confidence
intervals and (optionally) the process-pool helper.

Example::

    from repro.experiments.sweep import ratio_sweep
    table = ratio_sweep(
        ["FirstFit", "HybridAlgorithm"],
        lambda mu, seed: uniform_random(300, mu, seed=seed),
        mus=(16, 64, 256),
        seeds=range(5),
        workers=4,
    )
    print(table.render())
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from ..analysis.statistics import summarize
from ..core.instance import Instance
from ..parallel import parallel_map, ratio_task
from .runner import ExperimentResult

__all__ = ["ratio_sweep"]

WorkloadFactory = Callable[[int, int], Instance]  # (mu, seed) -> Instance


def ratio_sweep(
    algorithms: Sequence[str],
    workload: WorkloadFactory,
    *,
    mus: Sequence[int],
    seeds: Iterable[int] = (0, 1, 2),
    workers: int = 1,
    title: str = "ratio sweep",
) -> ExperimentResult:
    """Certified-ratio sweep over (algorithm, μ, seed) cells.

    ``algorithms`` are registry names (see
    :data:`repro.parallel.ALGORITHM_REGISTRY`).  Each table cell shows the
    mean certified ratio over seeds with a bootstrap 95% CI.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("need at least one seed")
    cells = []
    index = []
    for mu in mus:
        for seed in seed_list:
            inst = workload(mu, seed)
            for name in algorithms:
                cells.append((name, inst))
                index.append((mu, seed, name))
    ratios = parallel_map(ratio_task, cells, workers=workers)

    rows: List[List[object]] = []
    for mu in mus:
        row: List[object] = [mu]
        for name in algorithms:
            vals = [
                r
                for r, (m, _, a) in zip(ratios, index)
                if m == mu and a == name
            ]
            row.append(str(summarize(vals)))
        rows.append(row)
    headers = ["mu", *algorithms]
    notes = [
        f"{len(seed_list)} seeds per cell; mean with bootstrap 95% CI; "
        "ratios are certified upper estimates (ALG / OPT_R lower bound)",
    ]
    return ExperimentResult("SWEEP", title, headers, rows, notes, True)
