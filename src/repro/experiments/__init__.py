"""Experiment harness: one function per paper table/figure/lemma.

Importing this package populates :data:`repro.experiments.EXPERIMENTS`
(the registry keyed by DESIGN.md experiment ids).
"""

from . import (  # noqa: F401
    ablations,
    augmentation,
    binary,
    extensions,
    figures_exp,
    gaps,
    growth,
    lemmas,
    lemmas5,
    objectives,
    randomized,
    table1,
)
from .ablations import anyfit_ablation, rows_ablation, threshold_ablation
from .augmentation import augmentation_experiment
from .extensions import (
    greedy_experiment,
    open_aligned_experiment,
    open_general_experiment,
    shalom_experiment,
)
from .gaps import adaptivity_experiment, nr_gap_experiment
from .growth import growth_experiment
from .lemmas5 import lemma35_experiment, lemma55_experiment, lemma512_experiment
from .objectives import objectives_experiment
from .randomized import randomized_experiment
from .binary import cor58_experiment, lemma59_experiment, prop53_experiment
from .figures_exp import (
    figure1_experiment,
    figure2_experiment,
    figure3_experiment,
)
from .lemmas import (
    cor34_experiment,
    dc_experiment,
    lemma31_experiment,
    lemma33_experiment,
)
from .report import generate_report, run_experiments
from .runner import EXPERIMENTS, ExperimentResult, format_table, register
from .sweep import ratio_sweep
from .table1 import (
    aligned_experiment,
    general_lower_experiment,
    general_upper_experiment,
    nonclairvoyant_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "register",
    "generate_report",
    "run_experiments",
    "ratio_sweep",
    "general_upper_experiment",
    "general_lower_experiment",
    "aligned_experiment",
    "nonclairvoyant_experiment",
    "lemma31_experiment",
    "lemma33_experiment",
    "cor34_experiment",
    "dc_experiment",
    "cor58_experiment",
    "lemma59_experiment",
    "prop53_experiment",
    "threshold_ablation",
    "anyfit_ablation",
    "rows_ablation",
    "augmentation_experiment",
    "nr_gap_experiment",
    "adaptivity_experiment",
    "growth_experiment",
    "lemma35_experiment",
    "lemma55_experiment",
    "lemma512_experiment",
    "objectives_experiment",
    "randomized_experiment",
    "greedy_experiment",
    "shalom_experiment",
    "open_aligned_experiment",
    "open_general_experiment",
    "figure1_experiment",
    "figure2_experiment",
    "figure3_experiment",
]
