"""Full-report generation: run every experiment, emit one Markdown file.

``repro-dbp report [-o REPORT.md]`` runs the whole registry (or a subset)
and writes a self-contained Markdown report: a verdict table up front,
then each experiment's rendered output.  Benchmarks freeze their own
copies under ``benchmarks/output/``; this is the human-readable roll-up.
"""

from __future__ import annotations

import pathlib
import time
from typing import Iterable, Optional, Sequence

from .runner import EXPERIMENTS, ExperimentResult

__all__ = ["generate_report", "run_experiments"]


def run_experiments(
    ids: Optional[Sequence[str]] = None,
) -> list[ExperimentResult]:
    """Run the given experiment ids (default: the full registry, sorted)."""
    chosen = sorted(EXPERIMENTS) if ids is None else list(ids)
    results = []
    for eid in chosen:
        fn = EXPERIMENTS.get(eid)
        if fn is None:
            raise KeyError(f"unknown experiment id: {eid}")
        results.append(fn())
    return results


def generate_report(
    ids: Optional[Sequence[str]] = None,
    *,
    out_path: Optional[str | pathlib.Path] = None,
    title: str = "Reproduction report — Tight Bounds for Clairvoyant "
    "Dynamic Bin Packing (SPAA 2017)",
) -> str:
    """Run experiments and return (and optionally write) the Markdown report."""
    started = time.time()
    results = run_experiments(ids)
    elapsed = time.time() - started

    lines: list[str] = [f"# {title}", ""]
    n_pass = sum(1 for r in results if r.passed)
    lines.append(
        f"{n_pass}/{len(results)} experiments passed "
        f"(wall time {elapsed:.1f}s).  Ids map to DESIGN.md §3; "
        "paper-vs-measured commentary lives in EXPERIMENTS.md."
    )
    lines.append("")
    lines.append("| experiment | title | status |")
    lines.append("|---|---|---|")
    for r in results:
        status = "PASS" if r.passed else "**FAIL**"
        lines.append(f"| {r.experiment_id} | {r.title} | {status} |")
    lines.append("")

    for r in results:
        lines.append(f"## {r.experiment_id} — {r.title}")
        lines.append("")
        lines.append("```")
        lines.append(r.table())
        lines.append("```")
        for note in r.notes:
            # figure experiments carry the rendered figure in their notes
            if "\n" in note:
                lines.append("")
                lines.append("```")
                lines.append(note.rstrip())
                lines.append("```")
            else:
                lines.append(f"- {note}")
        lines.append("")

    text = "\n".join(lines)
    if out_path is not None:
        pathlib.Path(out_path).write_text(text)
    return text
