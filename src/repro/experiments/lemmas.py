"""Validation experiments for the paper's quantitative lemmas (Section 3)
and the cited Dual-Coloring guarantee.

LEM3.1, LEM3.3, COR3.4 and THM4.2 in DESIGN.md §3.
"""

from __future__ import annotations

import math
import statistics
from typing import List, Sequence

import numpy as np

from ..algorithms.hybrid import GN_TAG, HybridAlgorithm
from ..analysis.theory import ha_gn_bound
from ..core.profile import LoadProfile, load_profile
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.bounds import (
    ceil_load_bound,
    lemma31_ceil_upper,
    lemma31_demand_span_upper,
)
from ..offline.dual_coloring import dual_coloring
from ..offline.optimal import opt_reference
from ..offline.waterfill import waterfill
from ..reductions.alignment import align_departures
from ..workloads.adversarial import full_adversary_schedule
from ..workloads.random_general import uniform_random
from .runner import ExperimentResult, register

__all__ = [
    "lemma31_experiment",
    "lemma33_experiment",
    "cor34_experiment",
    "dc_experiment",
]


@register("LEM3.1")
def lemma31_experiment(
    mus: Sequence[int] = (4, 16, 64),
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 200,
) -> ExperimentResult:
    """Lemma 3.1: the constructive repacking (waterfill) realises
    ``OPT_R ≤ ∫2⌈S⌉`` and ``OPT_R ≤ 2d + 2span`` — checked pointwise and in
    aggregate on random instances."""
    headers = ["mu", "seed", "waterfill", "∫2⌈S⌉", "2d+2span", "OPT_R≥", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed)
            wf = waterfill(inst)
            ub1 = lemma31_ceil_upper(inst)
            ub2 = lemma31_demand_span_upper(inst)
            lb = ceil_load_bound(inst)
            # pointwise: open bins ≤ 2⌈S_t⌉ at every breakpoint
            prof = load_profile(inst)
            ok_point = _pointwise_le(wf.profile, prof)
            ok = (
                wf.cost <= ub1 + 1e-6
                and wf.cost <= ub2 + 1e-6
                and wf.cost >= lb - 1e-6
                and ok_point
            )
            passed = passed and ok
            rows.append([mu, seed, wf.cost, ub1, ub2, lb, ok])
    notes = [
        "'ok' includes the pointwise check: waterfill keeps ≤ 2⌈S_t⌉ bins "
        "open at every moment (the Lemma 3.1 invariant)",
    ]
    return ExperimentResult(
        "LEM3.1",
        "Lemma 3.1 — constructive OPT_R upper bounds",
        headers,
        rows,
        notes,
        passed,
    )


def _pointwise_le(count_profile: LoadProfile, load: LoadProfile) -> bool:
    """Whether count(t) ≤ 2⌈S(t)⌉ for all t."""
    checkpoints = np.union1d(count_profile.breakpoints, load.breakpoints)
    for t in checkpoints[:-1]:
        if count_profile(t) > 2 * math.ceil(load(t) - 1e-9) + 1e-9:
            return False
    return True


@register("LEM3.3")
def lemma33_experiment(
    mus: Sequence[int] = (4, 16, 64, 256, 1024),
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 600,
) -> ExperimentResult:
    """Lemma 3.3: HA never has more than ``2 + 4√log μ`` GN bins open —
    measured on random inputs and on the dense adversarial schedule."""
    headers = ["mu", "workload", "max GN open", "bound 2+4√logμ", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        bound = ha_gn_bound(mu)
        worst = 0
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed)
            ha = HybridAlgorithm()
            res = simulate(ha, inst)
            audit(res)
            worst = max(worst, ha.max_gn_open)
        ok = worst <= bound + 1e-9
        passed = passed and ok
        rows.append([mu, "uniform-random", worst, bound, ok])

        inst = full_adversary_schedule(min(mu, 256))
        ha = HybridAlgorithm()
        res = simulate(ha, inst)
        ok = ha.max_gn_open <= bound + 1e-9
        passed = passed and ok
        rows.append([mu, "dense σ* schedule", ha.max_gn_open, bound, ok])
    return ExperimentResult(
        "LEM3.3",
        "Lemma 3.3 — HA's GN bins are bounded by 2 + 4√log μ",
        headers,
        rows,
        [],
        passed,
    )


@register("COR3.4")
def cor34_experiment(
    mus: Sequence[int] = (4, 16, 64),
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 150,
) -> ExperimentResult:
    """Corollary 3.4: the departure-alignment reduction costs OPT at most a
    factor 16 (on continuously-active inputs)."""
    headers = ["mu", "seed", "OPT_R(σ)≥", "OPT_R(σ')≤", "factor≤", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed, horizon=2.0 * mu)
            reduced = align_departures(inst)
            opt = opt_reference(inst, max_exact=18)
            opt_red = opt_reference(reduced, max_exact=18)
            factor = opt_red.upper / opt.lower
            ok = factor <= 16.0 + 1e-9
            passed = passed and ok
            rows.append([mu, seed, opt.lower, opt_red.upper, factor, ok])
    notes = [
        "factor≤ is the certified worst case OPT_R(σ')-upper / OPT_R(σ)-lower;"
        " Corollary 3.4 guarantees ≤ 16",
    ]
    return ExperimentResult(
        "COR3.4",
        "Corollary 3.4 — the reduction loses at most a factor 16 on OPT_R",
        headers,
        rows,
        notes,
        passed,
    )


@register("THM4.2")
def dc_experiment(
    mus: Sequence[int] = (4, 16, 64, 256),
    *,
    seeds: Sequence[int] = (0, 1, 2, 3),
    n_items: int = 250,
) -> ExperimentResult:
    """Theorem 4.2 (cited): the Dual-Coloring stand-in stays within 4·OPT_R
    on the workload families used by the lower-bound experiments."""
    headers = ["mu", "workload", "mean DC/OPT_R", "max DC/OPT_R", "ok(≤4)"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        ratios = []
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed)
            dc = dual_coloring(inst)
            dc.audit()
            opt = opt_reference(inst, max_exact=18)
            ratios.append(dc.cost / opt.lower)
        ok = max(ratios) <= 4.0 + 1e-9
        passed = passed and ok
        rows.append([mu, "uniform-random", statistics.mean(ratios), max(ratios), ok])

        inst = full_adversary_schedule(min(mu, 128))
        dc = dual_coloring(inst)
        dc.audit()
        opt = opt_reference(inst, max_exact=18)
        ratio = dc.cost / opt.lower
        ok = ratio <= 4.0 + 1e-9
        passed = passed and ok
        rows.append([mu, "dense σ* schedule", ratio, ratio, ok])
    notes = [
        "DESIGN.md §4: the DC construction of [10] is substituted; this "
        "experiment validates the 4× guarantee empirically on the families "
        "the lower bound uses",
    ]
    return ExperimentResult(
        "THM4.2",
        "Theorem 4.2 (cited) — Dual-Coloring stand-in ≤ 4·OPT_R",
        headers,
        rows,
        notes,
        passed,
    )
