"""EXT.RANDOM — does randomisation evade the Section 4 adversary?

Table 1 is stated for *deterministic* algorithms, and the Theorem 4.3
adversary is adaptive.  A natural question: would a randomised packing
rule dodge the forcing?  No — the adversary's stopping condition counts
*open bins*, and the forcing argument is purely load-based (a full σ*_t
carries more than √log μ total load), so it applies to any packing rule,
random or not.  This experiment plays the adversary against RandomFit
over many seeds and shows the forced cost floor ``μ·⌈√log μ⌉`` and the
certified ratio floor hold for every seed, with tiny variance — the lower
bound's robustness to (this kind of) randomisation, measured.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

from ..adversary.sqrt_log import SqrtLogAdversary
from ..algorithms.anyfit import FirstFit, RandomFit
from ..analysis.theory import lower_bound_sqrt_log
from ..offline.optimal import opt_reference
from .runner import ExperimentResult, register

__all__ = ["randomized_experiment"]


@register("EXT.RANDOM")
def randomized_experiment(
    mus: Sequence[int] = (16, 64, 256),
    *,
    seeds: Sequence[int] = tuple(range(8)),
) -> ExperimentResult:
    """Play the Theorem 4.3 adversary against RandomFit across seeds."""
    headers = ["mu", "RandomFit ratio (mean over seeds)", "min", "max",
               "FirstFit", "floor √logμ/8", "cost floor held"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        ratios = []
        floor_held = True
        for seed in seeds:
            adv = SqrtLogAdversary(mu)
            out = adv.run(RandomFit(seed=seed))
            if out.online_cost < mu * adv.target_bins - 1e-9:
                floor_held = False
            opt = opt_reference(out.instance, max_exact=14)
            ratios.append(out.online_cost / opt.upper)
        adv = SqrtLogAdversary(mu)
        out_ff = adv.run(FirstFit())
        ff_ratio = out_ff.online_cost / opt_reference(
            out_ff.instance, max_exact=14
        ).upper
        floor = lower_bound_sqrt_log(mu)
        ok = floor_held and min(ratios) >= floor - 1e-9
        passed = passed and ok
        rows.append(
            [mu, statistics.mean(ratios), min(ratios), max(ratios),
             ff_ratio, floor, floor_held]
        )
    notes = [
        "every seed of RandomFit is forced to the same μ·⌈√log μ⌉ cost "
        "floor: the adversary's stopping rule counts open bins and its "
        "forcing is load-based, independent of the packing rule",
        "(a lower bound against all randomised algorithms would need an "
        "oblivious-adversary/Yao argument — this measures the adaptive "
        "case the paper's model uses)",
    ]
    return ExperimentResult(
        "EXT.RANDOM",
        "Extension — the adversary's forcing is robust to randomised packing",
        headers,
        rows,
        notes,
        passed,
    )
