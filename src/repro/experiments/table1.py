"""Experiments regenerating Table 1 of the paper (one per row).

Table 1 summarises competitive-ratio bounds; each experiment below turns
one row into measurements whose *shape* (ordering of algorithms, growth
with μ, respect of the proved constants) reproduces the row.  See
DESIGN.md §3 for the artifact index and EXPERIMENTS.md for the recorded
paper-vs-measured outcomes.
"""

from __future__ import annotations

import math
import statistics
from typing import Callable, List, Sequence

from ..adversary.nonclairvoyant import NonClairvoyantAdversary
from ..adversary.sqrt_log import SqrtLogAdversary
from ..algorithms.anyfit import BestFit, FirstFit
from ..algorithms.cdff import CDFF, StaticRowsCDFF
from ..algorithms.classify import ClassifyByDuration, RenTang
from ..algorithms.hybrid import HybridAlgorithm
from ..analysis.theory import (
    cdff_aligned_upper_bound,
    ff_nonclairvoyant_upper_bound,
    ha_upper_bound,
    loglog_mu,
    lower_bound_sqrt_log,
    sqrt_log_mu,
)
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.bounds import opt_sandwich
from ..offline.dual_coloring import dual_coloring
from ..offline.optimal import opt_reference
from ..workloads.aligned import aligned_random, binary_input
from ..workloads.random_general import uniform_random
from .runner import ExperimentResult, register

__all__ = [
    "general_upper_experiment",
    "general_lower_experiment",
    "aligned_experiment",
    "nonclairvoyant_experiment",
]

DEFAULT_MUS = (4, 16, 64, 256, 1024)


def _ratio_upper(algorithm_factory: Callable[[], object], instance, *,
                 max_exact: int = 20) -> float:
    """Certified upper estimate of ALG/OPT_R (denominator = OPT lower bound)."""
    result = simulate(algorithm_factory(), instance)
    audit(result)
    opt = opt_reference(instance, max_exact=max_exact)
    return result.cost / opt.lower if opt.lower > 0 else math.inf


@register("T1.GEN.UB")
def general_upper_experiment(
    mus: Sequence[int] = DEFAULT_MUS,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 400,
) -> ExperimentResult:
    """Table 1, row 1 (upper): HA vs the baselines on general inputs.

    Three workload families:

    - ``uniform-random`` — everything is near-constant (benign inputs);
    - ``ff-trap`` — the Techniques section's Ω(μ) failure mode of
      First-Fit: HA and CBD must stay O(1)-ish while FF grows with μ;
    - ``cbd-trap`` — the Ω(log μ) failure mode of static
      classify-by-duration: HA and FF stay small while CBD grows.

    Expected shape: HA respects Theorem 3.2's constant everywhere and is
    the only algorithm small on *all three* families — the paper's reason
    for hybridising.
    """
    headers = [
        "workload", "mu", "HA", "FirstFit", "CBD(2)", "RenTang",
        "HA bound 16(2+8√logμ)",
    ]
    rows: List[List[object]] = []
    passed = True

    def record(workload: str, mu: int, instances) -> None:
        nonlocal passed
        per_alg = {k: [] for k in ("ha", "ff", "cbd", "rt")}
        for inst in instances:
            inst_mu = max(inst.mu, 1.0)
            per_alg["ha"].append(_ratio_upper(HybridAlgorithm, inst))
            per_alg["ff"].append(_ratio_upper(FirstFit, inst))
            per_alg["cbd"].append(_ratio_upper(ClassifyByDuration, inst))
            per_alg["rt"].append(
                _ratio_upper(lambda: RenTang(inst_mu), inst)
            )
        means = {k: statistics.mean(v) for k, v in per_alg.items()}
        bound = ha_upper_bound(mu)
        if means["ha"] > bound:
            passed = False
        rows.append(
            [workload, mu, means["ha"], means["ff"], means["cbd"],
             means["rt"], bound]
        )

    from ..workloads.adversarial import cbd_trap, ff_trap

    for mu in mus:
        record(
            "uniform-random",
            mu,
            (uniform_random(n_items, mu, seed=s) for s in seeds),
        )
        record("ff-trap", mu, [ff_trap(mu, pairs=min(100, mu))])
        record("cbd-trap", mu, [cbd_trap(mu)])
    notes = [
        "ratios are certified upper estimates: ALG / (OPT_R lower bound)",
        "PASS requires the measured HA ratio to respect Theorem 3.2's "
        "explicit constant at every μ and workload",
        "the traps reproduce the Techniques discussion: FF is Ω(μ) "
        "(ff-trap column), static classification is Ω(log μ) (cbd-trap), "
        "HA alone stays bounded on both",
    ]
    return ExperimentResult(
        "T1.GEN.UB",
        "Clairvoyant, general inputs — upper bound O(√log μ) (Theorem 3.2)",
        headers,
        rows,
        notes,
        passed,
    )


@register("T1.GEN.LB")
def general_lower_experiment(
    mus: Sequence[int] = (4, 16, 64, 256),
    *,
    algorithms: Sequence[tuple[str, Callable[[], object]]] = (
        ("FirstFit", FirstFit),
        ("BestFit", BestFit),
        ("CBD(2)", ClassifyByDuration),
        ("HA", HybridAlgorithm),
    ),
) -> ExperimentResult:
    """Table 1, row 1 (lower): the Theorem 4.3 adversary vs every algorithm.

    Expected shape: for every algorithm the certified ratio
    ``ON / OPT_R-upper`` stays above Theorem 4.3's floor ``√log μ / 8``,
    and the proof's certified cost floor ``ON ≥ μ·⌈√log μ⌉`` holds.
    """
    headers = ["mu", "algorithm", "ON", "OPT_R≤", "ratio≥", "floor √logμ/8",
               "ON floor μ·⌈√logμ⌉"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        for name, factory in algorithms:
            adv = SqrtLogAdversary(mu)
            out = adv.run(factory())
            opt = opt_reference(out.instance, max_exact=16)
            dc = dual_coloring(out.instance)
            dc.audit()
            opt_upper = min(opt.upper, dc.cost)
            ratio = out.online_cost / opt_upper
            floor = lower_bound_sqrt_log(mu)
            on_floor = mu * max(1, math.ceil(sqrt_log_mu(mu)))
            ok = ratio >= floor - 1e-9 and out.online_cost >= on_floor - 1e-9
            passed = passed and ok
            rows.append(
                [mu, name, out.online_cost, opt_upper, ratio, floor, on_floor]
            )
    notes = [
        "OPT_R≤ is the best certified upper bound (exact oracle ∩ DC stand-in)",
        "every ratio must exceed Theorem 4.3's √log μ / 8 floor",
    ]
    return ExperimentResult(
        "T1.GEN.LB",
        "Clairvoyant, general inputs — lower bound Ω(√log μ) (Theorem 4.3)",
        headers,
        rows,
        notes,
        passed,
    )


@register("T1.ALIGN.UB")
def aligned_experiment(
    mus: Sequence[int] = (4, 16, 64, 256, 1024),
    *,
    seeds: Sequence[int] = (0, 1),
    n_items: int = 300,
) -> ExperimentResult:
    """Table 1, row 2: CDFF on aligned inputs — O(log log μ) (Theorem 5.1).

    Runs CDFF, the static-row strawman, HA and FF on both σ_μ and random
    aligned inputs.  Expected shape: CDFF respects Theorem 5.1's constant,
    beats the static-row variant on σ_μ, and its growth is consistent with
    log log μ.
    """
    headers = [
        "mu", "input", "CDFF", "StaticRows", "HA", "FirstFit",
        "CDFF bound 8+16loglogμ",
    ]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        # σ_μ: OPT_R is exactly μ (unit total load at all times)
        binary = binary_input(mu)
        r_cdff = simulate(CDFF(), binary)
        audit(r_cdff)
        r_static = simulate(StaticRowsCDFF(), binary)
        r_ha = simulate(HybridAlgorithm(), binary)
        r_ff = simulate(FirstFit(), binary)
        opt_bin = float(mu)
        bound = cdff_aligned_upper_bound(mu)
        vals = [
            r_cdff.cost / opt_bin,
            r_static.cost / opt_bin,
            r_ha.cost / opt_bin,
            r_ff.cost / opt_bin,
        ]
        if vals[0] > bound:
            passed = False
        rows.append([mu, "sigma_mu", *vals, bound])

        ratios = {k: [] for k in ("cdff", "static", "ha", "ff")}
        for seed in seeds:
            inst = aligned_random(mu, n_items, seed=seed)
            opt = opt_reference(inst, max_exact=18)
            for key, factory in (
                ("cdff", CDFF),
                ("static", StaticRowsCDFF),
                ("ha", HybridAlgorithm),
                ("ff", FirstFit),
            ):
                res = simulate(factory(), inst)
                audit(res)
                ratios[key].append(res.cost / opt.lower)
        m = {k: statistics.mean(v) for k, v in ratios.items()}
        if m["cdff"] > bound:
            passed = False
        rows.append(
            [mu, "aligned-rand", m["cdff"], m["static"], m["ha"], m["ff"], bound]
        )
    notes = [
        "σ_μ rows divide by the exact OPT_R(σ_μ) = μ; random rows divide by "
        "the OPT_R lower bound (certified upper estimates)",
        "PASS requires CDFF ≤ Theorem 5.1's explicit (8+16 log log μ) bound",
    ]
    return ExperimentResult(
        "T1.ALIGN.UB",
        "Clairvoyant, aligned inputs — upper bound O(log log μ) (Theorem 5.1)",
        headers,
        rows,
        notes,
        passed,
    )


@register("T1.NC")
def nonclairvoyant_experiment(
    gs: Sequence[int] = (4, 8, 16, 32),
    *,
    random_mus: Sequence[int] = (4, 16, 64),
    seeds: Sequence[int] = (0, 1),
    n_items: int = 300,
) -> ExperimentResult:
    """Table 1, row 3: non-clairvoyant FF is Θ(μ).

    (a) the adaptive adversary (g = μ) forces FirstFit and BestFit into a
    ratio growing linearly in μ (certified lower estimates);
    (b) on random inputs FF stays below the (μ+4) upper bound of [13].
    """
    headers = ["setting", "mu", "algorithm", "ratio", "reference"]
    rows: List[List[object]] = []
    passed = True
    prev_ff: float | None = None
    for g in gs:
        mu = float(g)
        for name, factory in (
            ("FirstFit", lambda: FirstFit(clairvoyant=False)),
            ("BestFit", lambda: BestFit(clairvoyant=False)),
        ):
            adv = NonClairvoyantAdversary(g, mu)
            out = adv.run(factory())
            opt = opt_reference(out.instance, max_exact=12)
            ratio = out.online_cost / opt.upper
            rows.append(
                ["adversary", int(mu), name, ratio, f"forced ≥ ~μ/2={mu/2:g}"]
            )
            if name == "FirstFit":
                if prev_ff is not None and ratio <= prev_ff:
                    passed = False  # must grow with μ
                prev_ff = ratio
    for mu in random_mus:
        vals = []
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed)
            res = simulate(FirstFit(clairvoyant=False), inst)
            audit(res)
            opt = opt_reference(inst, max_exact=18)
            vals.append(res.cost / opt.lower)
        mean_ratio = statistics.mean(vals)
        bound = ff_nonclairvoyant_upper_bound(mu)
        if mean_ratio > bound:
            passed = False
        rows.append(["random", mu, "FirstFit", mean_ratio, f"≤ μ+4={bound:g}"])
    notes = [
        "adversary rows: certified lower estimates (ON / OPT upper bound); "
        "ratio must increase with μ",
        "random rows: certified upper estimates; must respect μ+4 [13]",
    ]
    return ExperimentResult(
        "T1.NC",
        "Non-clairvoyant — Θ(μ): lower by adaptive adversary [7], upper μ+4 [13]",
        headers,
        rows,
        notes,
        passed,
    )
