"""Growth-curve charts: the Table 1 story as pictures (ASCII).

``repro-dbp curves`` renders three charts:

1. σ_μ ratios: CDFF (log log μ) vs static rows (log μ);
2. trap ratios: FF on the ff-trap (linear) vs HA (bounded), CBD on the
   cbd-trap (log) vs HA;
3. the non-clairvoyant wall: FF vs the adaptive adversary (linear in μ).
"""

from __future__ import annotations

from typing import Sequence

from ..adversary.nonclairvoyant import NonClairvoyantAdversary
from ..algorithms.anyfit import FirstFit
from ..algorithms.cdff import CDFF, StaticRowsCDFF
from ..algorithms.classify import ClassifyByDuration
from ..algorithms.hybrid import HybridAlgorithm
from ..core.simulation import simulate
from ..offline.optimal import opt_reference
from ..viz.plots import ascii_chart
from ..workloads.adversarial import cbd_trap, ff_trap
from ..workloads.aligned import binary_input

__all__ = ["growth_charts"]


def growth_charts(
    mus: Sequence[int] = (4, 16, 64, 256, 1024),
    *,
    nc_mus: Sequence[int] = (4, 8, 16, 32),
) -> str:
    """All three charts as one text block."""
    charts = []

    cdff = [simulate(CDFF(), binary_input(m)).cost / m for m in mus]
    static = [simulate(StaticRowsCDFF(), binary_input(m)).cost / m for m in mus]
    charts.append(
        ascii_chart(
            list(map(float, mus)),
            {"CDFF (~2·loglog μ)": cdff, "StaticRows (= log μ + 1)": static},
            title="Aligned inputs: ratio to OPT_R on σ_μ  (Theorem 5.1 / ABL.ROWS)",
        )
    )

    ff_ratios, ha_ff, cbd_ratios, ha_cbd = [], [], [], []
    for m in mus:
        trap = ff_trap(m, pairs=min(100, m))
        opt = opt_reference(trap, max_exact=8)
        ff_ratios.append(simulate(FirstFit(), trap).cost / opt.lower)
        ha_ff.append(simulate(HybridAlgorithm(), trap).cost / opt.lower)
        trap2 = cbd_trap(m)
        opt2 = opt_reference(trap2, max_exact=8)
        cbd_ratios.append(simulate(ClassifyByDuration(), trap2).cost / opt2.lower)
        ha_cbd.append(simulate(HybridAlgorithm(), trap2).cost / opt2.lower)
    charts.append(
        ascii_chart(
            list(map(float, mus)),
            {
                "FF on ff-trap (~min(μ,100)/2)": ff_ratios,
                "CBD on cbd-trap (~log μ / 2)": cbd_ratios,
                "HA on ff-trap": ha_ff,
                "HA on cbd-trap": ha_cbd,
            },
            title="General inputs: the Techniques-section traps  (T1.GEN.UB)",
        )
    )

    nc = []
    for g in nc_mus:
        adv = NonClairvoyantAdversary(g, float(g))
        out = adv.run(FirstFit(clairvoyant=False))
        opt = opt_reference(out.instance, max_exact=8)
        nc.append(out.online_cost / opt.upper)
    charts.append(
        ascii_chart(
            list(map(float, nc_mus)),
            {"non-clairvoyant FF (~μ/2)": nc},
            title="Non-clairvoyant wall: adaptive adversary  (T1.NC)",
        )
    )
    return "\n".join(charts)
