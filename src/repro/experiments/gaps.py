"""EXT.NRGAP and EXT.ADAPT — two fidelity experiments on the model itself.

- **EXT.NRGAP** — the repacking/non-repacking gap.  The paper works with
  two optima: OPT_R (Section 3's comparator; its own upper bound allows
  it) and OPT_NR (Section 4's, the stronger adversary baseline).
  Theorem 4.2 bridges them: DC is non-repacking and ≤ 4·OPT_R, hence
  ``OPT_NR ≤ 4·OPT_R`` always.  On small instances both optima are exactly
  computable; this experiment measures the realised gap distribution —
  every sample must respect the 4× bridge, and the worst observed gap
  shows how loose it is in practice.
- **EXT.ADAPT** — "HA does not need advance knowledge of μ, but rather
  adapts as μ increases" (Section 3).  We feed HA a phased stream whose
  maximum length doubles each phase and check, after every phase, that
  the cumulative competitive ratio respects Theorem 3.2's bound *for the
  μ revealed so far* — the quantitative content of the adaptivity remark.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..algorithms.hybrid import HybridAlgorithm
from ..analysis.theory import ha_upper_bound
from ..core.instance import Instance
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.optimal import opt_nonrepacking, opt_reference, opt_repacking
from .runner import ExperimentResult, register

__all__ = ["nr_gap_experiment", "adaptivity_experiment"]


@register("EXT.NRGAP")
def nr_gap_experiment(
    *,
    n_instances: int = 60,
    n_items: int = 7,
    seed: int = 0,
) -> ExperimentResult:
    """Exact OPT_NR / OPT_R on random tiny instances."""
    rng = np.random.default_rng(seed)
    gaps = []
    for _ in range(n_instances):
        triples = []
        for _ in range(n_items):
            a = float(rng.uniform(0, 6))
            triples.append(
                (a, a + float(rng.uniform(0.5, 5)), float(rng.uniform(0.2, 1.0)))
            )
        inst = Instance.from_tuples(triples)
        r = opt_repacking(inst)
        if not r.exact or r.lower <= 0:
            continue
        nr = opt_nonrepacking(inst, max_items=n_items)
        gaps.append(nr / r.lower)
    gaps_arr = np.asarray(gaps)
    passed = bool(
        np.all(gaps_arr >= 1.0 - 1e-9) and np.all(gaps_arr <= 4.0 + 1e-9)
    )
    headers = ["samples", "mean gap", "p95 gap", "max gap", "bridge (Thm 4.2)"]
    rows: List[List[object]] = [
        [len(gaps), float(gaps_arr.mean()), float(np.quantile(gaps_arr, 0.95)),
         float(gaps_arr.max()), 4.0]
    ]
    notes = [
        "gap = exact OPT_NR / exact OPT_R; 1 ≤ gap ≤ 4 must hold (the DC "
        "bridge); the measured worst case shows how loose 4× is at this "
        "scale",
    ]
    return ExperimentResult(
        "EXT.NRGAP",
        "Extension — the exact repacking/non-repacking optimum gap",
        headers,
        rows,
        notes,
        passed,
    )


def _phased_stream(
    phases: int, per_phase: int, seed: int
) -> tuple[Instance, list[tuple[float, float]]]:
    """Arrivals in phases; phase p uses lengths up to 2^p.

    Returns the instance and, per phase, (phase end time, μ seen so far).
    """
    rng = np.random.default_rng(seed)
    triples: list[tuple[float, float, float]] = []
    markers: list[tuple[float, float]] = []
    t0 = 0.0
    for p in range(phases):
        max_len = float(2**p)
        span = 3.0 * max_len
        # anchor the phase's μ
        triples.append((t0, t0 + max_len, float(rng.uniform(0.2, 0.8))))
        for _ in range(per_phase - 1):
            a = t0 + float(rng.uniform(0, span))
            length = float(np.exp(rng.uniform(0.0, math.log(max_len))) if max_len > 1 else 1.0)
            triples.append((a, a + length, float(rng.uniform(0.05, 0.9))))
        t0 += span
        markers.append((t0 + max_len, 2.0**p))
    triples.append((0.0, 1.0, 0.1))  # global min-length anchor
    triples.sort(key=lambda x: x[0])
    return Instance.from_tuples(triples), markers


@register("EXT.ADAPT")
def adaptivity_experiment(
    *,
    phases: int = 8,
    per_phase: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """HA's cumulative ratio respects the bound for the μ seen so far."""
    inst, markers = _phased_stream(phases, per_phase, seed)
    result = simulate(HybridAlgorithm(), inst)
    audit(result)
    profile = result.open_bins_profile()

    headers = ["phase", "μ so far", "HA cost so far", "OPT_R≥ so far",
               "ratio≤", "bound(μ so far)", "ok"]
    rows: List[List[object]] = []
    passed = True
    for p, (t_end, mu_seen) in enumerate(markers):
        cost_prefix = profile.restricted(
            float(profile.breakpoints[0]), t_end
        ).integral()
        prefix_items = [it for it in inst if it.arrival < t_end]
        clipped = Instance.from_tuples(
            [
                (it.arrival, min(it.departure, t_end), it.size)  # type: ignore[type-var]
                for it in prefix_items
                if it.arrival < t_end
            ]
        )
        opt = opt_reference(clipped, max_exact=14)
        ratio = cost_prefix / opt.lower if opt.lower > 0 else math.inf
        bound = ha_upper_bound(mu_seen)
        ok = ratio <= bound + 1e-9
        passed = passed and ok
        rows.append([p, mu_seen, cost_prefix, opt.lower, ratio, bound, ok])
    notes = [
        "phase p introduces lengths up to 2^p; HA is never told μ — its "
        "classification adapts, and after every phase the prefix ratio sits "
        "under Theorem 3.2's bound for the μ revealed so far",
        "prefix costs clip both HA's profile and OPT's instance at the "
        "phase end, so both sides measure the same window",
    ]
    return ExperimentResult(
        "EXT.ADAPT",
        "Extension — HA adapts as μ grows (no advance knowledge needed)",
        headers,
        rows,
        notes,
        passed,
    )
