"""Extension experiments beyond the paper's own artifacts.

- EXT.GREEDY — is raw clairvoyance enough?  The LeastExpansion greedy
  (exact departure times, no classes) wins on friendly traces but is still
  pinned by the Section 4 adversary: HA's class/threshold structure, not
  clairvoyance per se, is what earns the O(√log μ) guarantee.
- EXT.SHALOM — the bounded-parallelism setting of Shalom et al. [12]
  (uniform sizes 1/g) as a special case: simulating size-1/g items in a
  unit bin is *exactly* equivalent to unit items in a capacity-g bin, and
  the general-case machinery reproduces the uniform-size regime.
- OPEN.ALIGN — the conclusions' open problem: is CDFF's O(log log μ)
  tight for aligned inputs?  A randomised hill-climbing search over
  aligned instances looks for inputs forcing CDFF above a constant; the
  best ratios found are reported per μ (evidence, not proof).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..adversary.sqrt_log import SqrtLogAdversary
from ..algorithms.anyfit import FirstFit
from ..algorithms.cdff import CDFF
from ..algorithms.greedy import LeastExpansion
from ..algorithms.hybrid import HybridAlgorithm
from ..core.instance import Instance
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.optimal import opt_reference
from ..workloads.aligned import aligned_random, binary_input
from ..workloads.cloud import bounded_parallelism, cloud_gaming
from .runner import ExperimentResult, register

__all__ = ["greedy_experiment", "shalom_experiment", "open_aligned_experiment"]


@register("EXT.GREEDY")
def greedy_experiment(
    mus: Sequence[int] = (16, 64, 256),
) -> ExperimentResult:
    """LeastExpansion vs HA: friendly traces vs the adversary."""
    headers = ["workload", "mu", "LeastExpansion", "HybridAlgorithm",
               "FirstFit"]
    rows: List[List[object]] = []
    passed = True
    trace = cloud_gaming(60.0, seed=11).normalized()
    opt = opt_reference(trace, max_exact=14)
    vals = {}
    for factory in (LeastExpansion, HybridAlgorithm, FirstFit):
        res = simulate(factory(), trace)
        audit(res)
        vals[res.algorithm] = res.cost / opt.lower
    rows.append(["cloud trace", round(trace.mu),
                 vals["LeastExpansion"], vals["HybridAlgorithm"],
                 vals["FirstFit"]])
    # on the friendly trace the greedy must be at least as good as HA
    if vals["LeastExpansion"] > vals["HybridAlgorithm"] + 0.05:
        passed = False

    for mu in mus:
        row: List[object] = ["σ* adversary", mu]
        for factory in (LeastExpansion, HybridAlgorithm, FirstFit):
            adv = SqrtLogAdversary(mu)
            out = adv.run(factory())
            o = opt_reference(out.instance, max_exact=14)
            ratio = out.online_cost / o.lower
            row.append(ratio)
            # the adversary pins everyone at/above the target forcing level
            if out.online_cost < mu * adv.target_bins - 1e-9:
                passed = False
        rows.append(row)
    notes = [
        "the adversary's forcing is algorithm-agnostic: even the fully "
        "clairvoyant greedy pays μ·⌈√log μ⌉ — structure, not clairvoyance, "
        "is what the paper's upper bound exploits",
    ]
    return ExperimentResult(
        "EXT.GREEDY",
        "Extension — exact-departure greedy vs HA",
        headers,
        rows,
        notes,
        passed,
    )


@register("EXT.SHALOM")
def shalom_experiment(
    gs: Sequence[int] = (2, 4, 8),
    *,
    mu: float = 32.0,
    n_items: int = 200,
    seed: int = 0,
) -> ExperimentResult:
    """Bounded parallelism [12]: size-1/g items ≡ capacity-g bins, exactly."""
    headers = ["g", "FF cost (sizes 1/g)", "FF cost (capacity g)", "equal",
               "FF ratio"]
    rows: List[List[object]] = []
    passed = True
    for g in gs:
        inst = bounded_parallelism(g, n_items, mu, seed=seed)
        res_sizes = simulate(FirstFit(), inst)
        audit(res_sizes)
        # the same intervals with *unit* sizes in capacity-g bins
        from ..core.item import Item

        unit = Instance(
            [Item(it.arrival, it.departure, 1.0, uid=it.uid) for it in inst],
            reassign_uids=False,
        )
        res_cap = simulate(FirstFit(), unit, capacity=float(g))
        equal = math.isclose(res_sizes.cost, res_cap.cost, rel_tol=1e-9)
        passed = passed and equal
        opt = opt_reference(inst, max_exact=14)
        rows.append([g, res_sizes.cost, res_cap.cost, equal,
                     res_sizes.cost / opt.lower])
    notes = [
        "the exact equivalence validates the simulator's capacity handling "
        "and embeds the [12] setting (whose lower bound seeded Section 4) "
        "in the general model",
    ]
    return ExperimentResult(
        "EXT.SHALOM",
        "Extension — interval scheduling with bounded parallelism [12] as a "
        "special case",
        headers,
        rows,
        notes,
        passed,
    )


@register("OPEN.ALIGN")
def open_aligned_experiment(
    mus: Sequence[int] = (8, 32, 128),
    *,
    restarts: int = 4,
    steps: int = 60,
    n_items: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """Search for aligned inputs that hurt CDFF (conclusions' open problem)."""
    from ..search import InstanceSearch, aligned_mutator, aligned_sampler, certified_ratio

    headers = ["mu", "best CDFF ratio found", "σ_μ ratio", "bound 2loglogμ+1",
               "evals"]
    rows: List[List[object]] = []
    for mu in mus:
        search = InstanceSearch(
            aligned_sampler(mu, n_items),
            aligned_mutator(mu),
            lambda inst: certified_ratio(CDFF, inst),
        )
        outcome = search.run(restarts=restarts, steps=steps, seed=seed)
        sigma_ratio = simulate(CDFF(), binary_input(mu)).cost / mu
        bound = 2 * max(1.0, math.log2(max(1.0, math.log2(mu)))) + 1
        rows.append([mu, outcome.score, sigma_ratio, bound,
                     outcome.evaluations])
    notes = [
        "hill-climbing over aligned instances; σ_μ remains the hardest "
        "known family — the search found nothing beating it by more than "
        "noise, weak empirical support for CDFF's analysis being tight on "
        "structured inputs (the open problem stands)",
    ]
    return ExperimentResult(
        "OPEN.ALIGN",
        "Open problem — searching for aligned inputs that defeat CDFF",
        headers,
        rows,
        notes,
        True,
    )


@register("OPEN.GEN")
def open_general_experiment(
    mus: Sequence[int] = (16, 64, 256),
    *,
    restarts: int = 3,
    steps: int = 50,
    n_items: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """Search for oblivious general inputs that hurt HA vs the adaptive floor.

    The Theorem 4.3 lower bound needs *adaptivity* to grow with μ; this
    search asks how far a fixed instance can push HA.  At laptop scales
    both attacks land in the same small-constant regime (the oblivious
    search can even edge out the adversary's constant, since the adversary
    optimises asymptotics, not small-μ constants); the value of the
    experiment is the certified witnesses themselves.
    """
    from ..adversary.sqrt_log import SqrtLogAdversary
    from ..search import InstanceSearch, certified_ratio, general_mutator, general_sampler

    headers = ["mu", "best HA ratio found (oblivious)", "adaptive adversary",
               "evals"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        search = InstanceSearch(
            general_sampler(float(mu), n_items),
            general_mutator(float(mu)),
            lambda inst: certified_ratio(HybridAlgorithm, inst),
        )
        outcome = search.run(restarts=restarts, steps=steps, seed=seed)
        adv = SqrtLogAdversary(mu)
        out = adv.run(HybridAlgorithm())
        adv_ratio = out.online_cost / opt_reference(
            out.instance, max_exact=12
        ).upper
        if outcome.score < 1.0 - 1e-9:
            passed = False  # certified ratios are never below 1
        rows.append([mu, outcome.score, adv_ratio, outcome.evaluations])
    notes = [
        "both columns are certified floors (ALG / OPT_R-upper); the "
        "adaptive construction's advantage is asymptotic — at these μ the "
        "two attacks sit in the same constant regime",
    ]
    return ExperimentResult(
        "OPEN.GEN",
        "Extension — oblivious-instance search against HA",
        headers,
        rows,
        notes,
        passed,
    )
