"""Figure-regeneration experiments (FIG1–FIG3 in DESIGN.md §3).

These wrap :mod:`repro.viz.figures` in the experiment interface so the CLI
and benchmarks treat figures uniformly with tables; the "rows" hold the
rendered text's structural statistics, the notes hold the figure itself.
"""

from __future__ import annotations

from ..viz.figures import figure1, figure2, figure3
from ..workloads.aligned import binary_input
from .runner import ExperimentResult, register

__all__ = ["figure1_experiment", "figure2_experiment", "figure3_experiment"]


@register("FIG1")
def figure1_experiment(*, mu: int = 16, n_items: int = 60, seed: int = 7
                       ) -> ExperimentResult:
    """Regenerate Figure 1: CDFF's rows of bins at the busiest moment."""
    text = figure1(mu=mu, n_items=n_items, seed=seed)
    n_rows = sum(1 for line in text.splitlines() if line.startswith("row"))
    return ExperimentResult(
        "FIG1",
        "Figure 1 — CDFF's rows of bins at a moment in time",
        ["property", "value"],
        [["rows rendered", n_rows], ["figure", "(see notes)"]],
        [text],
        n_rows >= 1,
    )


@register("FIG2")
def figure2_experiment(*, mu: int = 8) -> ExperimentResult:
    """Regenerate Figure 2: the binary input σ_μ as an item diagram."""
    text = figure2(mu=mu)
    inst = binary_input(mu)
    return ExperimentResult(
        "FIG2",
        f"Figure 2 — the binary input σ_{mu}",
        ["property", "value"],
        [["items", len(inst)], ["expected (2μ−1)", 2 * mu - 1]],
        [text],
        len(inst) == 2 * mu - 1,
    )


@register("FIG3")
def figure3_experiment(*, mu: int = 8) -> ExperimentResult:
    """Regenerate Figure 3: CDFF's per-bin packing of σ_μ."""
    text = figure3(mu=mu)
    n_bins = sum(1 for line in text.splitlines() if line.startswith("bin"))
    return ExperimentResult(
        "FIG3",
        f"Figure 3 — CDFF's packing of σ_{mu}",
        ["property", "value"],
        [["bins rendered", n_bins]],
        [text],
        n_bins >= 1,
    )
