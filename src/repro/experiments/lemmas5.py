"""Deep-instrumentation lemma validations: LEM3.5, LEM5.5, LEM5.12.

These three lemmas talk about *internal* state of the algorithms at every
moment — HA's count of CD bins, CDFF's exact item→bin mapping, CDFF's
per-row load.  The experiments here step the incremental simulator one
release at a time and check the lemma's inequality (or identity) at each
step, against the σ′-reduced instance where the lemma requires it.

- **Lemma 3.5**: after the reduction, ``OPT_R^t(σ′) ≥ max(1, k_t/4√log μ)``
  where ``k_t`` is HA's open CD-bin count.
- **Lemma 5.5**: on σ_μ, the item whose length-bit of ``b_t = 1‖binary(t)``
  is 1 sits in bin ``b₀¹``; an item whose bit is 0 with a zero run of
  ``s`` toward the MSB sits in ``b_{s+1}¹`` — checked for every item at
  every time step (this is the exact mapping Figure 3 draws).
- **Lemma 5.12**: for every CDFF row with ``k`` open bins at ``t⁺``, the
  σ′-active load ever packed into that row is ≥ ``(k−1)/2``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..algorithms.base import item_type, type_departure_deadline
from ..algorithms.cdff import CDFF, aligned_class
from ..algorithms.hybrid import HybridAlgorithm
from ..analysis.binary_strings import binary
from ..core.instance import Instance
from ..core.objectives import optimal_bins_profile
from ..core.simulation import IncrementalSimulation
from ..reductions.alignment import align_departures
from ..workloads.aligned import aligned_random, binary_input
from ..workloads.random_general import uniform_random
from .runner import ExperimentResult, register

__all__ = ["lemma35_experiment", "lemma55_experiment", "lemma512_experiment"]


@register("LEM3.5")
def lemma35_experiment(
    mus: Sequence[int] = (4, 16, 64),
    *,
    seeds: Sequence[int] = (0, 1),
    n_items: int = 150,
) -> ExperimentResult:
    """Lemma 3.5: OPT_R^t(σ′) ≥ max(1, k_t / 4√log μ), sampled at arrivals."""
    headers = ["mu", "seed", "max k_t", "min slack", "violations", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed, horizon=2.0 * mu)
            reduced = align_departures(inst)
            opt_profile = optimal_bins_profile(reduced, max_exact=18)
            alg = HybridAlgorithm()
            sim = IncrementalSimulation(alg)
            sqrt_log = math.sqrt(max(1.0, math.log2(mu)))
            max_k = 0
            min_slack = math.inf
            violations = 0
            for item in inst:
                sim.release(item)
                k_t = alg.cd_open()
                max_k = max(max_k, k_t)
                required = max(1.0, k_t / (4.0 * sqrt_log))
                available = opt_profile(item.arrival)
                min_slack = min(min_slack, available - required)
                if available < required - 1e-9:
                    violations += 1
            sim.finish()
            ok = violations == 0
            passed = passed and ok
            rows.append([mu, seed, max_k, min_slack, violations, ok])
    notes = [
        "sampled at every arrival (k_t only grows at arrivals); "
        "OPT_R^t(σ′) from the exact per-moment bin-packing oracle",
    ]
    return ExperimentResult(
        "LEM3.5",
        "Lemma 3.5 — the reduced OPT covers HA's CD bins at every moment",
        headers,
        rows,
        notes,
        passed,
    )


def _expected_row(t: int, j: int, n: int) -> int:
    """Lemma 5.5: the row index of the active length-2^j item at time t.

    ``b_t = 1‖binary(t)`` over ``n+1`` bits; bit j == 1 → row 0; otherwise
    row = (zero run from bit j toward the MSB, excluding bit j) + 1.
    """
    b_t = "1" + (binary(t, n) if n > 0 else "")
    # b_t is MSB-first; bit j is at string index (n - j)
    idx = n - j
    if b_t[idx] == "1":
        return 0
    s = 0
    k = idx - 1
    while k >= 0 and b_t[k] == "0":
        s += 1
        k -= 1
    return s + 1


@register("LEM5.5")
def lemma55_experiment(mus: Sequence[int] = (4, 16, 64, 256)) -> ExperimentResult:
    """Lemma 5.5: CDFF's exact item→bin mapping on σ_μ, at every time step."""
    headers = ["mu", "checks", "mismatches", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        n = int(math.log2(mu))
        inst = binary_input(mu)
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        items = list(inst)
        checks = mismatches = 0
        pos = 0
        while pos < len(items):
            t = items[pos].arrival
            while pos < len(items) and items[pos].arrival == t:
                sim.release(items[pos])
                pos += 1
            # after the t⁺ batch: every active item must sit in the first
            # bin of its Lemma 5.5 row
            rows_now = alg.rows_snapshot()
            for uid, item in enumerate(items[:pos]):
                if not (item.arrival <= t < item.departure):  # type: ignore[operator]
                    continue
                j = aligned_class(item.length)
                expected_row = _expected_row(int(t), j, n)
                checks += 1
                bins = rows_now.get(expected_row, [])
                if not bins or uid not in bins[0]:
                    mismatches += 1
        sim.finish()
        ok = mismatches == 0
        passed = passed and ok
        rows.append([mu, checks, mismatches, ok])
    notes = [
        "every active item of σ_μ, at every integer time, is found in the "
        "first bin of exactly the row Lemma 5.5's bit formula names",
    ]
    return ExperimentResult(
        "LEM5.5",
        "Lemma 5.5 — CDFF's packing of σ_μ equals the binary-string mapping",
        headers,
        rows,
        notes,
        passed,
    )


@register("LEM5.12")
def lemma512_experiment(
    mus: Sequence[int] = (16, 64, 256),
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 150,
) -> ExperimentResult:
    """Lemma 5.12: every CDFF row with k bins carries σ′-load ≥ (k−1)/2."""
    headers = ["mu", "seed", "max row bins", "min slack", "violations", "ok"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        for seed in seeds:
            # near-capacity sizes so rows actually open several bins
            inst = aligned_random(mu, n_items, seed=seed, size_low=0.4)
            deadline: dict[int, float] = {}
            for it in inst:
                T = item_type(it, min_class=0)
                deadline[it.uid] = type_departure_deadline(T)
            alg = CDFF()
            sim = IncrementalSimulation(alg)
            max_bins = 0
            min_slack = math.inf
            violations = 0
            for item in inst:
                sim.release(item)
                t = item.arrival
                for row, bins in alg.rows_snapshot().items():
                    k = len(bins)
                    if k == 0:
                        continue
                    max_bins = max(max_bins, k)
                    d_row = sum(
                        it.size
                        for it in inst
                        if it.uid in alg._placed_row
                        and alg.row_of_item(it.uid) == row
                        and it.arrival <= t
                        and deadline[it.uid] > t
                    )
                    slack = d_row - (k - 1) / 2.0
                    min_slack = min(min_slack, slack)
                    if slack < -1e-9:
                        violations += 1
            sim.finish()
            ok = violations == 0
            passed = passed and ok
            rows.append([mu, seed, max_bins, min_slack, violations, ok])
    notes = [
        "d_r^{t⁺}(σ′) computed from all items ever routed to the row whose "
        "reduced departure is still ahead — exactly Definition 5.11",
    ]
    return ExperimentResult(
        "LEM5.12",
        "Lemma 5.12 — CDFF rows with k bins carry reduced load ≥ (k−1)/2",
        headers,
        rows,
        notes,
        passed,
    )
