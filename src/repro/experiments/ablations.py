"""Ablations of the paper's design choices (DESIGN.md §3: ABL.*).

- ABL.THRESH — HA's GN-admission threshold shape.  The paper picks
  ``1/(2√i)`` to balance the GN load sum (Lemma 3.3) against the CD-bin
  charging (Lemma 3.5); we compare it with constant, ``1/(2i)`` and
  all-CD / all-GN extremes.
- ABL.ANYFIT — footnote 1: the Any-Fit rule inside HA is interchangeable.
- ABL.ROWS — CDFF's dynamic rows vs a static class→row mapping; the paper
  attributes the exponential improvement to the dynamism.
"""

from __future__ import annotations

import math
import statistics
from typing import Callable, List, Sequence

from ..adversary.sqrt_log import SqrtLogAdversary
from ..algorithms.anyfit import BEST_FIT, FIRST_FIT, WORST_FIT
from ..algorithms.cdff import CDFF, StaticRowsCDFF
from ..algorithms.hybrid import HybridAlgorithm, sqrt_threshold
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.optimal import opt_reference
from ..workloads.aligned import binary_input
from ..workloads.random_general import uniform_random
from .runner import ExperimentResult, register

__all__ = ["threshold_ablation", "anyfit_ablation", "rows_ablation"]


def _mean_ratio(
    factory: Callable[[], object],
    mus: Sequence[int],
    seeds: Sequence[int],
    n_items: int,
) -> dict[int, float]:
    out: dict[int, float] = {}
    for mu in mus:
        vals = []
        for seed in seeds:
            inst = uniform_random(n_items, mu, seed=seed)
            res = simulate(factory(), inst)
            audit(res)
            opt = opt_reference(inst, max_exact=18)
            vals.append(res.cost / opt.lower)
        out[mu] = statistics.mean(vals)
    return out


@register("ABL.THRESH")
def threshold_ablation(
    mus: Sequence[int] = (16, 256, 1024),
    *,
    seeds: Sequence[int] = (0, 1),
    n_items: int = 300,
) -> ExperimentResult:
    """HA threshold shapes on random inputs and under the adversary."""
    variants: list[tuple[str, Callable[[int], float]]] = [
        ("paper 1/(2√i)", sqrt_threshold),
        ("const 1/2", lambda i: 0.5),
        ("harmonic 1/(2i)", lambda i: 1.0 / (2.0 * i)),
        ("all-GN (∞)", lambda i: math.inf),
        ("all-CD (0)", lambda i: 0.0),
    ]
    headers = [
        "variant", *[f"μ={m} rand" for m in mus],
        "μ=256 adversary", "μ=256 ff-trap",
    ]
    rows: List[List[object]] = []
    from ..workloads.adversarial import ff_trap

    trap = ff_trap(256, pairs=100)
    trap_opt = opt_reference(trap, max_exact=10)
    for name, thr in variants:
        factory = lambda thr=thr, name=name: HybridAlgorithm(
            threshold=thr, name=f"HA[{name}]"
        )
        means = _mean_ratio(factory, mus, seeds, n_items)
        adv = SqrtLogAdversary(256)
        out = adv.run(factory())
        opt = opt_reference(out.instance, max_exact=16)
        adv_ratio = out.online_cost / opt.lower
        trap_res = simulate(factory(), trap)
        audit(trap_res)
        trap_ratio = trap_res.cost / trap_opt.lower
        rows.append([name, *[means[m] for m in mus], adv_ratio, trap_ratio])
    notes = [
        "all ratios are certified upper estimates (den = OPT_R lower bound)",
        "the paper's threshold must be competitive across all columns; "
        "all-GN degenerates to FirstFit (and dies on the ff-trap), all-CD "
        "to pure classify-by-type",
    ]
    return ExperimentResult(
        "ABL.THRESH",
        "Ablation — HA's GN admission threshold 1/(2√i)",
        headers,
        rows,
        notes,
    )


@register("ABL.ANYFIT")
def anyfit_ablation(
    mus: Sequence[int] = (16, 256),
    *,
    seeds: Sequence[int] = (0, 1, 2),
    n_items: int = 300,
) -> ExperimentResult:
    """Footnote 1: HA under First/Best/Worst-Fit inner rules."""
    rules = [("FirstFit", FIRST_FIT), ("BestFit", BEST_FIT), ("WorstFit", WORST_FIT)]
    headers = ["inner rule", *[f"μ={m} rand" for m in mus]]
    rows: List[List[object]] = []
    spreads: list[float] = []
    col: dict[int, list[float]] = {m: [] for m in mus}
    for name, rule in rules:
        factory = lambda rule=rule, name=name: HybridAlgorithm(
            rule=rule, name=f"HA[{name}]"
        )
        means = _mean_ratio(factory, mus, seeds, n_items)
        for m in mus:
            col[m].append(means[m])
        rows.append([name, *[means[m] for m in mus]])
    for m in mus:
        spreads.append(max(col[m]) - min(col[m]))
    notes = [
        f"max spread across rules: {max(spreads):.3f} — footnote 1 predicts "
        "all Any-Fit rules behave comparably",
    ]
    return ExperimentResult(
        "ABL.ANYFIT",
        "Ablation — Any-Fit rule inside HA (footnote 1)",
        headers,
        rows,
        notes,
    )


@register("ABL.ROWS")
def rows_ablation(
    mus: Sequence[int] = (16, 64, 256, 1024, 4096),
) -> ExperimentResult:
    """CDFF's dynamic rows vs the static class→row mapping on σ_μ.

    On σ_μ, static rows keep one bin per active class open (Θ(log μ) bins
    at all times ⇒ cost ≈ μ·log μ), while dynamic CDFF pays
    μ·(E[max_0]+1) ≈ μ·2 log log μ — the exponential gap the paper's
    Techniques section highlights.
    """
    headers = ["mu", "CDFF/μ", "StaticRows/μ", "log₂μ+1", "gap factor"]
    rows: List[List[object]] = []
    passed = True
    for mu in mus:
        inst = binary_input(mu)
        r_dyn = simulate(CDFF(), inst)
        r_static = simulate(StaticRowsCDFF(), inst)
        dyn, stat = r_dyn.cost / mu, r_static.cost / mu
        if dyn > stat + 1e-9:
            passed = False
        rows.append([mu, dyn, stat, math.log2(mu) + 1, stat / dyn])
    notes = [
        "on σ_μ: StaticRows ≈ (log μ + 1)·OPT while CDFF ≈ (E[max₀]+1)·OPT — "
        "the dynamism is what buys the exponential improvement",
    ]
    return ExperimentResult(
        "ABL.ROWS",
        "Ablation — CDFF dynamic rows vs static classify-by-duration rows",
        headers,
        rows,
        notes,
        passed,
    )
