"""OBJ.MOTIVATION — why MinUsageTime (Section 1's motivating contrast).

The introduction argues that both the classical max-bins objective and the
momentary-ratio objective "fail to distinguish between the case where the
online algorithm's cost function is high throughout the entire process and
the case where [it] is only momentarily high".

This experiment constructs exactly that pair of scenarios — the pinned-bin
First-Fit trap with *short* pins (the k-fold waste lasts one time unit,
then everything is optimal) versus the same trap with *long* pins (the
waste persists for ~μ) — and evaluates all three objectives on each:

- **max-bins** scores both k: identical;
- **momentary ratio** scores both k (the short trap's spike counts fully):
  identical;
- **MinUsageTime** scores ~2 vs ~k: only it separates a brief stumble from
  a persistent one — the paper's justification for the objective.
"""

from __future__ import annotations

from typing import List

from ..algorithms.anyfit import FirstFit
from ..core.instance import Instance
from ..core.objectives import max_bins, momentary_ratio, usage_time
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.optimal import opt_reference
from ..workloads.adversarial import ff_trap
from .runner import ExperimentResult, register

__all__ = ["objectives_experiment"]


def _short_pin_trap(k: int) -> Instance:
    """The ff_trap shape but with pins of length 2: First-Fit still opens
    k pinned bins, but the waste lasts only one time unit after the blocks
    depart — momentarily bad, then optimal."""
    triples: list[tuple[float, float, float]] = []
    for _ in range(k):
        triples.append((0.0, 2.0, 0.01))   # short pin
        triples.append((0.0, 1.0, 0.99))   # block filling the bin
    return Instance.from_tuples(triples)


@register("OBJ.MOTIVATION")
def objectives_experiment(mu: int = 64, k: int = 12) -> ExperimentResult:
    """Score the short-pin vs long-pin traps under all three objectives."""
    spike = _short_pin_trap(k)
    trap = ff_trap(mu, pairs=k)

    rows: List[List[object]] = []
    measurements = {}
    for name, inst in (("momentarily bad", spike), ("persistently bad", trap)):
        res = simulate(FirstFit(), inst)
        audit(res)
        opt = opt_reference(inst, max_exact=10)
        m = {
            "max_bins": max_bins(res),
            "momentary": momentary_ratio(res, inst, max_exact=10),
            "usage_ratio": res.cost / opt.lower,
        }
        measurements[name] = m
        rows.append(
            [name, m["max_bins"], m["momentary"], res.cost, m["usage_ratio"]]
        )

    spike_m, trap_m = measurements["momentarily bad"], measurements["persistently bad"]
    # the classical objectives cannot tell the scenarios apart...
    indistinguishable = (
        abs(spike_m["max_bins"] - trap_m["max_bins"]) <= 1
        and abs(trap_m["momentary"] - spike_m["momentary"]) <= 1.0
    )
    # ...while MinUsageTime separates them by a large factor (the gap grows
    # with μ; 2.5× is the conservative pass threshold for small sweeps)
    separated = trap_m["usage_ratio"] >= 2.5 * spike_m["usage_ratio"]
    passed = indistinguishable and separated

    headers = ["scenario", "max bins", "momentary ratio≥", "usage time",
               "usage ratio"]
    notes = [
        f"max-bins: {spike_m['max_bins']} vs {trap_m['max_bins']} — blind to "
        "the difference",
        f"momentary ratio: {spike_m['momentary']:.2f} vs "
        f"{trap_m['momentary']:.2f} — also (near-)blind",
        f"MinUsageTime ratio: {spike_m['usage_ratio']:.2f} vs "
        f"{trap_m['usage_ratio']:.2f} — a ~{trap_m['usage_ratio'] / spike_m['usage_ratio']:.0f}× "
        "separation: the objective the paper argues for",
    ]
    return ExperimentResult(
        "OBJ.MOTIVATION",
        "Section 1's motivation: only MinUsageTime separates momentary from "
        "persistent waste",
        headers,
        rows,
        notes,
        passed,
    )
