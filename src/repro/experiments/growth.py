"""GROWTH — growth-law discrimination across the μ sweep.

Table 1's content is ultimately about *rates*: √log μ vs log log μ vs
log μ vs μ.  This experiment measures each algorithm's ratio curve over a
μ sweep and asks which candidate law explains it best (least-squares over
``{const, log log μ, √log μ, log μ, μ}``).  The paper's predictions:

- CDFF on σ_μ              → log log μ   (Proposition 5.3)
- StaticRows on σ_μ        → log μ       (the strawman CDFF improves on)
- CBD on the cbd-trap      → log μ       (Techniques section)
- FF on the ff-trap        → μ           (Techniques section)
- non-clairvoyant FF vs
  the adaptive adversary   → μ           (Table 1, row 3)
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from ..adversary.nonclairvoyant import NonClairvoyantAdversary
from ..algorithms.anyfit import FirstFit
from ..algorithms.cdff import CDFF, StaticRowsCDFF
from ..algorithms.classify import ClassifyByDuration
from ..analysis.competitive import best_law
from ..analysis.theory import log2_safe, loglog_mu, sqrt_log_mu
from ..core.simulation import simulate
from ..offline.optimal import opt_reference
from ..workloads.adversarial import cbd_trap, ff_trap
from ..workloads.aligned import binary_input
from .runner import ExperimentResult, register

__all__ = ["growth_experiment"]

LAWS: list[tuple[str, Callable[[float], float]]] = [
    ("const", lambda mu: 1.0),
    ("loglog", loglog_mu),
    ("sqrtlog", sqrt_log_mu),
    ("log", log2_safe),
    ("linear", lambda mu: float(mu)),
]


def _cdff_sigma_ratio(mu: int) -> float:
    return simulate(CDFF(), binary_input(mu)).cost / mu


def _static_sigma_ratio(mu: int) -> float:
    return simulate(StaticRowsCDFF(), binary_input(mu)).cost / mu


def _cbd_trap_ratio(mu: int) -> float:
    inst = cbd_trap(mu)
    opt = opt_reference(inst, max_exact=8)
    return simulate(ClassifyByDuration(), inst).cost / opt.lower


def _ff_trap_ratio(mu: int) -> float:
    inst = ff_trap(mu, pairs=min(mu, 100))
    opt = opt_reference(inst, max_exact=8)
    return simulate(FirstFit(), inst).cost / opt.lower


def _nc_ff_ratio(mu: int) -> float:
    adv = NonClairvoyantAdversary(int(mu), float(mu))
    out = adv.run(FirstFit(clairvoyant=False))
    opt = opt_reference(out.instance, max_exact=8)
    return out.online_cost / opt.upper


@register("GROWTH")
def growth_experiment(
    mus: Sequence[int] = (4, 16, 64, 256, 1024),
    *,
    nc_mus: Sequence[int] = (4, 8, 16, 32),
) -> ExperimentResult:
    """Fit every measured ratio curve; the winning law must match theory."""
    curves: list[tuple[str, str, Sequence[int], Callable[[int], float]]] = [
        ("CDFF on σ_μ", "loglog", mus, _cdff_sigma_ratio),
        ("StaticRows on σ_μ", "log", mus, _static_sigma_ratio),
        ("CBD on cbd-trap", "log", mus, _cbd_trap_ratio),
        ("FF on ff-trap (μ≤100 pins)", "linear", tuple(m for m in mus if m <= 64),
         _ff_trap_ratio),
        ("non-clairvoyant FF vs adversary", "linear", nc_mus, _nc_ff_ratio),
    ]
    headers = ["curve", "predicted law", "fitted law", "fit a·g(μ)+b",
               "rms residual", "ok"]
    rows: List[List[object]] = []
    passed = True
    for name, predicted, sweep, fn in curves:
        ratios = [fn(m) for m in sweep]
        fit = best_law(list(map(float, sweep)), ratios, LAWS)
        ok = fit.law == predicted
        passed = passed and ok
        rows.append(
            [name, predicted, fit.law, f"{fit.a:.3f}·g+{fit.b:.3f}",
             fit.residual, ok]
        )
    notes = [
        "laws fitted by least squares over {const, log log μ, √log μ, "
        "log μ, μ}; 'ok' = the best-fitting law is the theoretically "
        "predicted one",
    ]
    return ExperimentResult(
        "GROWTH",
        "Growth-law discrimination: measured rates match Table 1's orders",
        headers,
        rows,
        notes,
        passed,
    )
