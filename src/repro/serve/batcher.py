"""Micro-batching: group near-simultaneous arrivals before the kernel.

The batch frontend's semantics let many items share one arrival instant
(ties processed in release order); a network service sees those same
simultaneous arrivals as a burst of separate requests.  The
:class:`MicroBatcher` sits between a connection and a shard queue and
re-creates the batch: it holds incoming work until either

- ``max_batch`` pieces are pending (**flush on size**), or
- ``max_delay`` seconds have passed since the oldest pending piece
  arrived (**flush on age**),

then hands the whole list to its ``sink`` in arrival order.  One queue
slot then carries the whole burst, so a shard pays one scheduling
round-trip per batch instead of per request.

Degenerate configurations short-circuit: ``max_batch=1`` or
``max_delay=0`` means every ``add`` flushes immediately (batching off —
the default, and what the parity harness uses).

The batcher never reorders or drops work, and :meth:`aclose` flushes the
remainder — the server's drain path calls it so a SIGTERM cannot strand
accepted-but-unflushed requests.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Flush-on-size / flush-on-age buffering in front of an async sink.

    Parameters
    ----------
    sink:
        ``async def sink(batch: list) -> None`` receiving each flushed
        batch (in submission order, never empty).
    max_batch:
        Flush as soon as this many pieces are pending (≥ 1).
    max_delay:
        Flush this many seconds after the *first* pending piece arrived,
        even if the batch is not full.  ``0`` disables batching.
    observer:
        Optional ``observer(size, cause)`` called synchronously on every
        flush with the batch size and what triggered it (``"size"``,
        ``"age"``, or ``"forced"`` for explicit :meth:`flush`/
        :meth:`aclose` calls).  The telemetry plane uses this for its
        batch-size histogram and flush-cause counters; ``None`` (the
        default) costs nothing.
    """

    def __init__(
        self,
        sink: Callable[[list], Awaitable[None]],
        *,
        max_batch: int = 1,
        max_delay: float = 0.0,
        observer: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.sink = sink
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.observer = observer
        self.batches_flushed = 0
        self.pieces = 0
        self._pending: List = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._closed = False

    def __len__(self) -> int:
        return len(self._pending)

    async def add(self, work) -> None:
        """Buffer one piece of work; may flush (and await the sink)."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        self._pending.append(work)
        self.pieces += 1
        if (
            len(self._pending) >= self.max_batch
            or self.max_delay == 0.0
        ):
            await self.flush(cause="size")
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay, self._fire)

    def _fire(self) -> None:
        """Timer callback: flush from a task (timers can't await)."""
        self._timer = None
        if self._pending and self._flush_task is None:
            self._flush_task = asyncio.get_running_loop().create_task(
                self._timed_flush()
            )

    async def _timed_flush(self) -> None:
        try:
            await self.flush(cause="age")
        finally:
            self._flush_task = None

    async def flush(self, *, cause: str = "forced") -> None:
        """Hand everything pending to the sink now (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches_flushed += 1
        if self.observer is not None:
            self.observer(len(batch), cause)
        await self.sink(batch)

    async def aclose(self) -> None:
        """Flush the remainder and refuse further work."""
        self._closed = True
        if self._flush_task is not None:
            await self._flush_task
        await self.flush()
