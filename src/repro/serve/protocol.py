"""The wire protocol of the placement service: JSONL over TCP, v1.

One request per line, one JSON object per request; one JSON object per
reply.  The protocol is deliberately boring — newline-delimited JSON is
greppable, replayable with ``nc``, and needs no dependency — and
deliberately strict: every malformed line gets a **structured error
reply** (``{"ok": false, "error": "<code>", ...}``) and the connection
stays open.  A bad client can never crash a server, and a good client
can always tell *why* a request was refused.

Requests
--------
::

    {"op": "arrive", "id": 7, "arrival": 0.0, "departure": 4.0,
     "size": 0.5, "tenant": "acme", "seq": 1}
    {"op": "depart", "id": 7, "time": 3.0}      # adaptive items only
    {"op": "advance", "time": 10.0}             # move every shard's clock
    {"op": "stats"}                             # service-wide snapshot
    {"op": "telemetry"}                         # RED/tracing snapshot
    {"op": "profile"}                           # live profiling snapshot
    {"op": "ping"}

``seq`` is an optional client-chosen correlation token echoed verbatim
in the reply; pipelined clients need it because replies from different
shards may interleave.  ``trace`` is an optional client-chosen trace id
(string or int): when telemetry is enabled the server records a span
tree under that id and echoes it in the reply.  ``tenant`` (falling back to ``id``) is the
consistent-hash **routing key** — requests sharing a key always land on
the same shard, which is what keeps per-shard decision streams
deterministic.  ``v`` optionally pins the protocol version.

Replies
-------
Successful placement::

    {"ok": true, "op": "arrive", "seq": 1, "id": 7, "bin": 3,
     "opened": false, "shard": 0, "latency_us": 38.4}

Errors carry a machine-readable code (see :data:`ERROR_CODES`) plus a
human message; ``overloaded`` replies additionally carry
``retry_after`` (seconds), the service's explicit backpressure signal::

    {"ok": false, "error": "overloaded", "retry_after": 0.05, "seq": 1}

Timestamps are the *paper's* logical clock (the ``arrival``/
``departure`` coordinates of the trace), not wall time; the kernel
advances when requests say so, exactly as in the batch simulator.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional, Union

from ..core.errors import InvalidItemError
from ..core.item import Item
from ..core.store import validate_item_values

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "ProtocolError",
    "Request",
    "parse_request",
    "ok_reply",
    "error_reply",
    "encode",
    "decode",
]

#: bumped on incompatible request/reply schema changes
PROTOCOL_VERSION = 1

#: operations a client may request
OPS = ("arrive", "depart", "advance", "stats", "ping", "telemetry", "profile")

#: machine-readable error codes a reply's ``error`` field may carry
ERROR_CODES = (
    "bad-json",      # line is not a JSON object
    "bad-version",   # client pinned an unsupported protocol version
    "bad-request",   # missing/mistyped field, unknown op
    "bad-item",      # arrive payload violates item semantics
    "out-of-order",  # arrival/advance behind the shard's clock
    "unknown-item",  # depart for an id this shard does not hold
    "duplicate-id",  # adaptive arrive reusing a live id
    "overloaded",    # shard queue full — back off and retry
    "unavailable",   # shard crashed/restarting — back off and retry
    "draining",      # server is shutting down, no new work
    "internal",      # unexpected server-side failure
)

#: error codes a well-behaved client may retry (with backoff); all other
#: codes describe the request itself and will fail identically on resend
RETRYABLE_ERROR_CODES = frozenset({"overloaded", "unavailable"})


class ProtocolError(Exception):
    """A request that must be answered with a structured error reply."""

    def __init__(self, code: str, message: str, *, seq=None, **fields):
        super().__init__(message)
        self.code = code
        self.message = message
        self.seq = seq
        self.fields = fields

    def reply(self) -> dict:
        return error_reply(
            self.code, self.message, seq=self.seq, **self.fields
        )


@dataclass(frozen=True, slots=True)
class Request:
    """One validated client request (the parsed form of a wire line)."""

    op: str
    seq: Optional[Union[int, str]] = None
    id: Optional[str] = None
    tenant: Optional[str] = None
    arrival: Optional[float] = None
    departure: Optional[float] = None
    size: Optional[float] = None
    time: Optional[float] = None
    #: stable client identity for at-most-once retry dedup: an
    #: ``arrive``/``depart`` carrying both ``client`` and ``seq`` is
    #: applied exactly once per ``(client, seq)`` — a resend of an
    #: already-applied request returns the original reply verbatim
    client: Optional[str] = None
    #: optional client-chosen trace id, echoed in the reply and used by
    #: the telemetry plane to label this request's span tree; when
    #: absent the server derives one (``client:seq`` or a local counter)
    trace: Optional[str] = None

    @property
    def dedup_key(self) -> Optional[tuple]:
        """The idempotency key, or ``None`` when dedup is not requested."""
        if self.client is None or self.seq is None:
            return None
        return (self.client, self.seq)

    @property
    def routing_key(self) -> str:
        """Consistent-hash key: the tenant when given, else the item id."""
        return self.tenant if self.tenant is not None else (self.id or "")

    def to_item(self, uid: int) -> Item:
        """The kernel :class:`Item` this arrive request describes."""
        return Item(self.arrival, self.departure, self.size, uid=uid)


def _number(obj: dict, field: str, seq, *, required: bool = True):
    value = obj.get(field)
    if value is None:
        if required:
            raise ProtocolError(
                "bad-request", f"missing field {field!r}", seq=seq
            )
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "bad-request",
            f"field {field!r} must be a number, got {value!r}",
            seq=seq,
        )
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(
            "bad-request", f"field {field!r} must be finite", seq=seq
        )
    return value


def _ident(obj: dict, field: str, seq, *, required: bool):
    value = obj.get(field)
    if value is None:
        if required:
            raise ProtocolError(
                "bad-request", f"missing field {field!r}", seq=seq
            )
        return None
    if not isinstance(value, (str, int)):
        raise ProtocolError(
            "bad-request",
            f"field {field!r} must be a string or integer, got {value!r}",
            seq=seq,
        )
    return str(value)


def parse_request(line: Union[str, bytes]) -> Request:
    """Validate one wire line into a :class:`Request`.

    Raises :class:`ProtocolError` — never a raw ``json`` or item
    exception — so the server can always turn a bad line into a reply
    instead of a dropped connection.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-json", f"not UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-json", f"expected a JSON object, got {type(obj).__name__}"
        )
    seq = obj.get("seq")
    if seq is not None and not isinstance(seq, (int, str)):
        raise ProtocolError(
            "bad-request", f"field 'seq' must be int or string, got {seq!r}"
        )
    version = obj.get("v")
    if version is not None and version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version",
            f"protocol v{version!r} unsupported (server speaks "
            f"v{PROTOCOL_VERSION})",
            seq=seq,
        )
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            "bad-request", f"unknown op {op!r} (expected one of {OPS})",
            seq=seq,
        )
    tenant = _ident(obj, "tenant", seq, required=False)
    client = _ident(obj, "client", seq, required=False)
    trace = _ident(obj, "trace", seq, required=False)
    if op == "arrive":
        req = Request(
            op=op,
            seq=seq,
            id=_ident(obj, "id", seq, required=True),
            tenant=tenant,
            arrival=_number(obj, "arrival", seq),
            departure=_number(obj, "departure", seq, required=False),
            size=_number(obj, "size", seq),
            client=client,
            trace=trace,
        )
        try:  # full item semantics (size in (0,1], departure > arrival, …)
            # columnar validation: same checks and messages as Item,
            # without allocating a throwaway dataclass per request
            validate_item_values(req.arrival, req.departure, req.size)
        except InvalidItemError as exc:
            raise ProtocolError("bad-item", str(exc), seq=seq) from exc
        return req
    if op == "depart":
        return Request(
            op=op,
            seq=seq,
            id=_ident(obj, "id", seq, required=True),
            tenant=tenant,
            time=_number(obj, "time", seq),
            client=client,
            trace=trace,
        )
    if op == "advance":
        return Request(
            op=op, seq=seq, time=_number(obj, "time", seq), trace=trace
        )
    # stats / ping / telemetry / profile
    return Request(op=op, seq=seq, trace=trace)


def ok_reply(op: str, *, seq=None, **fields) -> dict:
    """A successful reply envelope (``seq`` echoed only when present)."""
    reply = {"ok": True, "op": op}
    if seq is not None:
        reply["seq"] = seq
    reply.update(fields)
    return reply


def error_reply(code: str, message: str, *, seq=None, **fields) -> dict:
    """A structured error reply (``code`` must be in :data:`ERROR_CODES`)."""
    reply = {"ok": False, "error": code, "message": message}
    if seq is not None:
        reply["seq"] = seq
    reply.update(fields)
    return reply


def encode(obj: dict) -> bytes:
    """One reply/request as a wire line (compact JSON + newline)."""
    return (
        json.dumps(obj, separators=(",", ":"), default=float) + "\n"
    ).encode("utf-8")


def decode(line: Union[str, bytes]) -> dict:
    """Parse one reply line into a dict (client-side counterpart)."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError(f"expected a JSON object reply, got {obj!r}")
    return obj
