"""Service/batch parity: the serving layer's correctness anchor.

A single-shard :class:`~repro.serve.server.PlacementServer` fed an
arrival-ordered trace must make **bit-identical decisions** to batch
:func:`~repro.core.simulation.simulate` on the same
:class:`~repro.core.instance.Instance` — same item→bin assignment (as a
decision sequence in submission order), same set of freshly-opened bins,
same final cost, same ``max_open``.  This holds by construction (both
paths drive one :class:`~repro.core.kernel.PlacementKernel`), and this
module keeps the construction honest across the extra serving machinery
— protocol parsing, micro-batching, the bounded queue, the shard worker
— none of which may perturb a decision.

:func:`check_service_parity` runs one (algorithm, instance) cell through
a real localhost TCP round-trip: it starts an in-process server,
replays the instance over a pipelined client, ``advance``s the service
clock past the last departure, then compares against a fresh batch run.
:func:`service_parity_suite` sweeps the full registry the same way the
engine parity sweep does (general algorithms on general workloads,
aligned-only CDFF variants on aligned inputs).  CI runs it as an
explicit step: ``python -m repro.serve.parity``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.simulation import simulate
from ..engine.parity import (
    ALIGNED_ALGORITHMS,
    COST_TOL,
    GENERAL_ALGORITHMS,
    _aligned_workloads,
    _general_workloads,
)
from .client import PlacementClient
from .server import PlacementServer, ServeConfig

__all__ = [
    "ServiceParityReport",
    "check_service_parity",
    "service_parity_suite",
    "default_service_cells",
]


@dataclass(frozen=True)
class ServiceParityReport:
    """One served run compared against its batch twin."""

    algorithm: str
    workload: str
    n_items: int
    batch_cost: float
    serve_cost: float
    max_open_batch: int
    max_open_serve: int
    bins_opened_batch: int
    bins_opened_serve: int
    decisions_equal: bool
    opened_equal: bool
    errors: int  #: error replies seen while replaying (must be 0)

    @property
    def cost_delta(self) -> float:
        return abs(self.serve_cost - self.batch_cost)

    @property
    def ok(self) -> bool:
        return (
            self.cost_delta <= COST_TOL
            and self.max_open_batch == self.max_open_serve
            and self.bins_opened_batch == self.bins_opened_serve
            and self.decisions_equal
            and self.opened_equal
            and self.errors == 0
        )

    def __str__(self) -> str:
        flag = "ok" if self.ok else "MISMATCH"
        return (
            f"[{flag}] {self.algorithm:20s} on {self.workload:24s} "
            f"n={self.n_items:5d}  cost {self.batch_cost:.6g} vs "
            f"{self.serve_cost:.6g} (Δ={self.cost_delta:.3g})  "
            f"max_open {self.max_open_batch} vs {self.max_open_serve}  "
            f"errors={self.errors}"
        )


async def _serve_instance(
    algorithm: str,
    instance: Instance,
    *,
    capacity: float,
    batch_max: int,
    batch_delay: float,
) -> Tuple[List[dict], dict]:
    """Replay ``instance`` through a fresh single-shard server.

    Returns the arrive replies in submission order plus the final stats
    reply (taken after advancing past the last departure, so every
    scheduled departure has been processed and the cost is final).
    """
    server = PlacementServer(
        ServeConfig(
            shards=1,
            algorithm=algorithm,
            capacity=capacity,
            batch_max=batch_max,
            batch_delay=batch_delay,
        )
    )
    await server.start()
    try:
        client = await PlacementClient.connect("127.0.0.1", server.port)
        try:
            futures = [
                client.submit(
                    {
                        "op": "arrive",
                        "id": item.uid,
                        "arrival": item.arrival,
                        "departure": item.departure,
                        "size": item.size,
                    }
                )
                for item in instance
            ]
            await client.drain_writes()
            replies = list(await asyncio.gather(*futures))
            horizon = max(
                (it.departure for it in instance), default=0.0
            )
            await client.advance(horizon)
            stats = await client.stats()
        finally:
            await client.aclose()
    finally:
        await server.drain()
    return replies, stats


def check_service_parity(
    algorithm: str,
    instance: Instance,
    *,
    capacity: float = 1.0,
    workload: str = "instance",
    batch_max: int = 1,
    batch_delay: float = 0.0,
) -> ServiceParityReport:
    """Serve ``instance`` over TCP and compare against ``simulate()``."""
    from ..parallel import _registry

    replies, stats = asyncio.run(
        _serve_instance(
            algorithm,
            instance,
            capacity=capacity,
            batch_max=batch_max,
            batch_delay=batch_delay,
        )
    )
    batch = simulate(_registry()[algorithm](), instance, capacity=capacity)

    errors = sum(1 for r in replies if not r.get("ok"))
    decisions = [r.get("bin") for r in replies]
    # instance iteration order is uid order (0..n-1), which is also the
    # order the single shard assigned uids — compare decision streams
    expected = [batch.assignment.get(item.uid) for item in instance]
    opened = [bool(r.get("opened")) for r in replies]
    # batch twin: an item "opened" its bin iff it is the bin's first member
    first_member = {
        rec.uid: rec.item_uids[0] for rec in batch.bins if rec.item_uids
    }
    expected_opened = [
        first_member.get(batch.assignment.get(item.uid)) == item.uid
        for item in instance
    ]
    totals = stats.get("totals", {})
    return ServiceParityReport(
        algorithm=algorithm,
        workload=workload,
        n_items=len(instance),
        batch_cost=batch.cost,
        serve_cost=float(totals.get("cost", float("nan"))),
        max_open_batch=batch.max_open,
        max_open_serve=int(totals.get("max_open", -1)),
        bins_opened_batch=len(batch.bins),
        bins_opened_serve=int(totals.get("bins_opened", -1)),
        decisions_equal=decisions == expected,
        opened_equal=opened == expected_opened,
        errors=errors,
    )


def default_service_cells(
    seed: int = 0,
) -> List[Tuple[str, str, Instance]]:
    """``(algorithm, workload, instance)`` cells of the default sweep.

    Same registry × generator-family grid as the engine parity sweep —
    the two harnesses guard the same contract at different layers.
    """
    cells: List[Tuple[str, str, Instance]] = []
    for name in GENERAL_ALGORITHMS:
        for wname, inst in _general_workloads(seed):
            cells.append((name, wname, inst))
    for name in ALIGNED_ALGORITHMS:
        for wname, inst in _aligned_workloads(seed):
            cells.append((name, wname, inst))
    return cells


def service_parity_suite(
    cells: Optional[Iterable[Tuple[str, str, Instance]]] = None,
    *,
    seed: int = 0,
    batch_max: int = 1,
    batch_delay: float = 0.0,
) -> List[ServiceParityReport]:
    """Run the service parity sweep; one report per cell.

    ``batch_max``/``batch_delay`` let the sweep also exercise the
    micro-batched path (decisions must not depend on batching).
    """
    if cells is None:
        cells = default_service_cells(seed)
    return [
        check_service_parity(
            name,
            inst,
            workload=wname,
            batch_max=batch_max,
            batch_delay=batch_delay,
        )
        for name, wname, inst in cells
    ]


def _main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.serve.parity`` — the CI service-parity gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.parity",
        description="Replay every parity cell through a single-shard "
        "placement server and exit non-zero on any mismatch with batch "
        "simulate().",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-max", type=int, default=1,
        help="micro-batch size to serve with (1 = batching off)",
    )
    parser.add_argument(
        "--batch-delay", type=float, default=0.0,
        help="micro-batch age bound in seconds (0 = batching off)",
    )
    args = parser.parse_args(argv)
    reports = service_parity_suite(
        seed=args.seed,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
    )
    failures = 0
    for report in reports:
        print(report)
        failures += 0 if report.ok else 1
    print(
        f"service parity sweep: {len(reports) - failures}/{len(reports)} "
        "cells ok"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(_main())
