"""Transport seam: how the placement service reaches its byte streams.

The server and client never call :func:`asyncio.start_server` /
:func:`asyncio.open_connection` directly any more — they go through a
*transport* object so the whole stack can run either over real TCP
sockets (:class:`TcpTransport`, the default, behaviour-identical to the
direct calls it replaced) or over an in-process simulated network
(:class:`repro.testkit.simnet.SimNet`) with injected faults and a
virtual clock.  The seam is deliberately tiny:

- ``await transport.start_server(handler, host, port)`` returns a
  :class:`ServerHandle` (``port`` / ``close()`` / ``wait_closed()``);
- ``await transport.open_connection(host, port)`` returns the usual
  ``(StreamReader, writer)`` pair, where the writer only needs the
  stream-writer subset the service uses (``write``/``drain``/``close``/
  ``wait_closed``).

Anything satisfying this protocol can host the service; the chaos
harness (:mod:`repro.testkit`) is the reason it exists.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Protocol, Tuple

__all__ = ["ConnectionHandler", "ServerHandle", "Transport", "TcpTransport"]

#: the server-side accept callback: one coroutine per connection
ConnectionHandler = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]
]


class ServerHandle(Protocol):
    """A started listener: enough surface for the server's lifecycle."""

    @property
    def port(self) -> int:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...

    async def wait_closed(self) -> None:  # pragma: no cover - protocol
        ...


class Transport(Protocol):
    """Opens listeners and connections (TCP or simulated)."""

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> ServerHandle:  # pragma: no cover - protocol
        ...

    async def open_connection(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        ...  # pragma: no cover - protocol


class _TcpServerHandle:
    """Wrap :class:`asyncio.base_events.Server` in the handle protocol."""

    def __init__(self, server: asyncio.base_events.Server) -> None:
        self._server = server

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    def close(self) -> None:
        self._server.close()

    async def wait_closed(self) -> None:
        await self._server.wait_closed()


class TcpTransport:
    """The production transport: plain asyncio TCP streams."""

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> _TcpServerHandle:
        return _TcpServerHandle(
            await asyncio.start_server(handler, host, port)
        )

    async def open_connection(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(host, port)

    def __repr__(self) -> str:
        return "TcpTransport()"
