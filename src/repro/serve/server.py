"""The placement daemon: asyncio JSONL-over-TCP server over sharded kernels.

Request path
------------
``connection reader → parse → consistent-hash route → per-shard
micro-batcher → bounded shard queue → shard worker (kernel) → reply``

Every stage is explicit about overload and failure:

- a malformed line produces a structured error reply on the same
  connection (the reader never raises out of a bad line);
- a **full shard queue** produces an immediate
  ``{"error": "overloaded", "retry_after": ...}`` reply instead of
  unbounded buffering — the client is told to back off, the server's
  memory stays bounded by ``shards × max_queue × batch_max`` requests;
- a **draining** server refuses new work with ``{"error": "draining"}``
  while still answering ``stats``/``ping``.

Replies are written by one writer coroutine per connection and carry the
request's ``seq``, so pipelined clients see interleaved (cross-shard)
replies and can still correlate them.

Lifecycle
---------
:meth:`PlacementServer.run` serves until SIGTERM/SIGINT, then
**drains**: stop accepting, flush every micro-batcher, let each shard
work its queue dry, write one checkpoint per shard (restartable with
``resume=True`` / ``repro-dbp serve --resume``), emit one ledger
:class:`~repro.obs.ledger.RunRecord` for the session, and close
connections.  A drain after ``k`` accepted arrivals loses none of them:
the checkpoints carry the kernels mid-stream, open bins and all.
"""

from __future__ import annotations

import asyncio
import pathlib
import signal
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..engine.metrics import EngineMetrics
from ..obs.metrics import LATENCY_EDGES, Histogram
from .batcher import MicroBatcher
from .transport import ServerHandle, TcpTransport, Transport
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    error_reply,
    ok_reply,
    parse_request,
)
from .shard import HashRing, PlacementShard

__all__ = ["ServeConfig", "PlacementServer"]


@dataclass
class ServeConfig:
    """Everything a placement server needs to come up."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = pick a free port (read it back from ``.port``)
    shards: int = 1
    algorithm: str = "HybridAlgorithm"
    capacity: float = 1.0
    indexed: bool = True
    max_queue: int = 1024  #: per-shard queue bound, in micro-batches
    batch_max: int = 1  #: micro-batch size (1 = batching off)
    batch_delay: float = 0.0  #: micro-batch age bound, seconds (0 = off)
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None
    resume: bool = False  #: restore shards from ``checkpoint_dir``
    metrics: bool = True  #: per-shard EngineMetrics (merged in stats)
    ledger_dir: Optional[Union[str, pathlib.Path]] = None  #: None = no ledger
    generator: str = "live"  #: workload identity stamped on ledger records
    telemetry: bool = False  #: request-scoped tracing + RED metrics
    trace_sample: float = 1.0  #: head-sampling rate for span trees
    telemetry_seed: int = 0  #: salt of the deterministic sampling hash
    trace_out: Optional[Union[str, pathlib.Path]] = None  #: JSONL on drain
    sample_hz: float = 0.0  #: continuous stack-sampling rate (0 = off)
    profile_out: Optional[Union[str, pathlib.Path]] = None  #: JSON on drain

    def shard_checkpoint(self, shard_id: int) -> pathlib.Path:
        if self.checkpoint_dir is None:
            raise ValueError("no checkpoint_dir configured")
        return pathlib.Path(self.checkpoint_dir) / f"shard-{shard_id}.ckpt"


@dataclass(eq=False)
class _Connection:
    """Book-keeping for one client connection."""

    writer: asyncio.StreamWriter
    out: asyncio.Queue = field(default_factory=asyncio.Queue)
    pending: set = field(default_factory=set)


class PlacementServer:
    """The asyncio placement service (see module docstring).

    Construct with a :class:`ServeConfig`, then either ``await start()``
    and drive it from tests (``await drain()`` when done), or call
    :meth:`run` to serve until a termination signal.

    ``transport`` and ``clock`` are the simulation seams: the default
    (:class:`~repro.serve.transport.TcpTransport`,
    :func:`time.perf_counter`) is production behaviour; the chaos
    harness substitutes an in-process fault-injecting network and the
    virtual loop clock so whole failure schedules replay byte-for-byte.
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        registry=None,
        transport: Optional[Transport] = None,
        clock: Optional[Callable[[], float]] = None,
        telemetry=None,
        sampler=None,
    ) -> None:
        self.config = config
        self.transport = transport if transport is not None else TcpTransport()
        self._now = clock if clock is not None else _time.perf_counter
        self._shard_clock = clock
        # the telemetry plane: an injected ServiceTelemetry (the chaos
        # harness shares one across graceful restarts so RED counters
        # survive the crash cycle), one built from config, or None —
        # and None keeps every hot-path hook a single attribute check
        if telemetry is not None:
            self.telemetry = telemetry
        elif config.telemetry:
            from .telemetry import ServiceTelemetry

            self.telemetry = ServiceTelemetry(
                config.shards,
                clock=self._now,
                sample=config.trace_sample,
                seed=config.telemetry_seed,
                trace_path=config.trace_out,
            )
        else:
            self.telemetry = None
        # the profiling plane mirrors the telemetry injection contract:
        # an injected StackSampler (the chaos harness shares one across
        # graceful restarts, so the aggregate spans crash cycles and the
        # harness owns start/stop), one built from config.sample_hz, or
        # None.  Only an owned sampler is stopped and flushed at drain.
        if sampler is not None:
            self.sampler = sampler
            self._sampler_owned = False
        elif config.sample_hz > 0:
            from ..obs.prof import StackSampler

            self.sampler = StackSampler(config.sample_hz)
            self._sampler_owned = True
        else:
            self.sampler = None
            self._sampler_owned = False
        self.profile_path: Optional[pathlib.Path] = None
        if registry is None:
            from ..parallel import _registry

            registry = _registry()
        if config.algorithm not in registry:
            raise ValueError(
                f"unknown algorithm {config.algorithm!r}; options: "
                + ", ".join(sorted(registry))
            )
        self._algorithm_factory = registry[config.algorithm]
        self.shards: List[PlacementShard] = []
        self.ring = HashRing(config.shards)
        self.batchers: List[MicroBatcher] = []
        self.requests = 0  #: wire lines parsed into requests
        self.errors = 0  #: error replies sent (any code)
        self.error_codes: Dict[str, int] = {}
        self.draining = False
        self.drained = asyncio.Event()
        self.started_at: Optional[float] = None
        self._server: Optional[ServerHandle] = None
        self._connections: set[_Connection] = set()
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _build_shards(self) -> None:
        cfg = self.config
        for k in range(cfg.shards):
            ckpt = (
                cfg.shard_checkpoint(k)
                if cfg.resume and cfg.checkpoint_dir is not None
                else None
            )
            if ckpt is not None and ckpt.exists():
                shard = PlacementShard.restore(
                    k,
                    ckpt,
                    max_queue=cfg.max_queue,
                    metrics=cfg.metrics,
                    indexed=cfg.indexed,
                    clock=self._shard_clock,
                )
            else:
                shard = PlacementShard(
                    k,
                    self._algorithm_factory(),
                    capacity=cfg.capacity,
                    indexed=cfg.indexed,
                    max_queue=cfg.max_queue,
                    metrics=cfg.metrics,
                    clock=self._shard_clock,
                )
            self.shards.append(shard)
            observer = None
            if self.telemetry is not None:
                from .telemetry import GatedNarrator

                shard.attach_telemetry(
                    self.telemetry.shards[k],
                    GatedNarrator(self.telemetry.tracer),
                )
                observer = self._make_batch_observer(k)
            self.batchers.append(
                MicroBatcher(
                    self._make_sink(shard),
                    max_batch=cfg.batch_max,
                    max_delay=cfg.batch_delay,
                    observer=observer,
                )
            )

    def _make_batch_observer(self, shard_id: int):
        telemetry = self.telemetry

        def observer(size: int, cause: str) -> None:
            telemetry.batch_flushed(shard_id, size, cause)

        return observer

    def _make_sink(self, shard: PlacementShard):
        telemetry = self.telemetry

        async def sink(batch: list) -> None:
            # simultaneous arrivals: stable sort by arrival inside the
            # micro-batch mirrors Instance order (ties keep submit order)
            batch.sort(key=lambda job: job[0].arrival)
            if shard.crashed:
                # the shard fail-stopped while this batch aged in the
                # batcher: nobody will drain the queue, so answer here
                for req, future, _ in batch:
                    shard._fail_future(req, future)
                return
            if telemetry is not None:
                t_queued = self._now()
                for job in batch:
                    ctx = job[2]
                    if ctx is not None and type(ctx) is not float:
                        ctx.t_queued = t_queued
            await shard.queue.put(batch)

        return sink

    async def start(self) -> None:
        """Bind the listening socket and start the shard workers."""
        if not self.shards:
            self._build_shards()
        for shard in self.shards:
            shard.start()
        if self.sampler is not None and self._sampler_owned:
            self.sampler.start()
        self._server = await self.transport.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.started_at = self._now()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.port

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain — the CLI entry point."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await self.drained.wait()

    def _request_drain(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    async def drain(self) -> None:
        """Graceful shutdown: flush, work queues dry, checkpoint, ledger."""
        if self.draining:
            await self.drained.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for batcher in self.batchers:
            await batcher.aclose()
        for shard in self.shards:
            if shard.crashed:
                # no worker to drain this queue — fail it so join() and
                # in-flight futures resolve instead of hanging the drain
                shard._fail_queue()
        for shard in self.shards:
            await shard.queue.join()
        for shard in self.shards:
            await shard.stop()
        if self.config.checkpoint_dir is not None:
            pathlib.Path(self.config.checkpoint_dir).mkdir(
                parents=True, exist_ok=True
            )
            for shard in self.shards:
                shard.checkpoint(
                    self.config.shard_checkpoint(shard.shard_id)
                )
        # stop the owned sampler before the ledger record is written so
        # the record can point at the flushed profile artifact; a shared
        # (injected) sampler keeps running — its owner flushes it
        if self.sampler is not None and self._sampler_owned:
            profile = self.sampler.stop()
            if self.config.profile_out is not None:
                self.profile_path = profile.write(self.config.profile_out)
        if self.config.ledger_dir is not None:
            self._write_ledger()
        if (
            self.telemetry is not None
            and self.telemetry.trace_path is not None
        ):
            self.telemetry.write_trace()
        for conn in list(self._connections):
            conn.out.put_nowait(None)  # writer sentinel → close
        self.drained.set()

    def _write_ledger(self) -> None:
        from ..obs.ledger import LedgerSink

        cfg = self.config
        wall = (
            self._now() - self.started_at
            if self.started_at is not None
            else None
        )
        sink = LedgerSink(
            kind="serve",
            algorithm=cfg.algorithm,
            generator=cfg.generator,
            config={
                "shards": cfg.shards,
                "capacity": cfg.capacity,
                "indexed": cfg.indexed,
                "batch_max": cfg.batch_max,
                "batch_delay": cfg.batch_delay,
                "max_queue": cfg.max_queue,
                "resumed": cfg.resume,
            },
            ledger_dir=cfg.ledger_dir,
            wall_s=wall,
            profile_info=self._profile_info(),
        )
        sink.emit(self._metrics_snapshot())
        self.ledger_path = sink.last_path

    def _profile_info(self) -> Optional[dict]:
        """Sampler stats + artifact pointer for the ledger (never gated)."""
        if self.sampler is None:
            return None
        profile = (
            self.sampler.profile
            if self.sampler.profile is not None
            else self.sampler.snapshot()
        )
        info = {"sampler": profile.stats()}
        if self.profile_path is not None:
            info["artifact"] = str(self.profile_path)
        return info

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer=writer)
        self._connections.add(conn)
        writer_task = asyncio.get_running_loop().create_task(
            self._write_replies(conn)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # oversized line or reset: answer if we can, then close
                    conn.out.put_nowait(
                        error_reply("bad-request", "line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, conn)
        finally:
            if conn.pending:
                await asyncio.gather(*conn.pending, return_exceptions=True)
            conn.out.put_nowait(None)
            await writer_task
            self._connections.discard(conn)

    async def _write_replies(self, conn: _Connection) -> None:
        writer = conn.writer
        done = False
        try:
            while not done:
                # coalesce: everything queued right now goes out in one
                # write + one drain, not one syscall round-trip per reply
                reply = await conn.out.get()
                chunks = []
                finished = None  # telemetry contexts riding with replies
                while reply is not None:
                    if type(reply) is tuple:
                        reply, ctx = reply
                        if finished is None:
                            finished = []
                        finished.append(ctx)
                    chunks.append(encode(reply))
                    try:
                        reply = conn.out.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    done = True
                if chunks:
                    writer.write(b"".join(chunks))
                    await writer.drain()
                    if finished is not None:
                        # one timestamp for the coalesced chunk: the
                        # write phase ends when the bytes are flushed
                        t_written = self._now()
                        for ctx in finished:
                            self.telemetry.finish(ctx, t_written)
        except (ConnectionError, RuntimeError):
            pass  # peer went away mid-write; nothing left to tell it
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop shutdown race
                pass

    async def _dispatch(self, line: bytes, conn: _Connection) -> None:
        t_recv = self._now()
        telemetry = self.telemetry
        try:
            req = parse_request(line)
        except ProtocolError as exc:
            self._count_error(exc.code)
            if telemetry is not None:
                telemetry.parse_error(exc.code)
            conn.out.put_nowait(exc.reply())
            return
        self.requests += 1
        if req.op == "ping":
            conn.out.put_nowait(
                ok_reply("ping", seq=req.seq, v=PROTOCOL_VERSION)
            )
            return
        if req.op == "stats":
            conn.out.put_nowait(self._stats_reply(req))
            return
        if req.op == "telemetry":
            # admin plane — answered even while draining, like stats
            conn.out.put_nowait(self._telemetry_reply(req))
            return
        if req.op == "profile":
            conn.out.put_nowait(self._profile_reply(req))
            return
        if self.draining:
            self._count_error("draining")
            if telemetry is not None:
                telemetry.refused(None, "draining")
            conn.out.put_nowait(
                error_reply(
                    "draining", "server is draining; no new work",
                    seq=req.seq,
                )
            )
            return
        if req.op == "advance":
            await self._broadcast_advance(req, conn)
            return
        shard_id = self.ring.shard_for(req.routing_key)
        shard = self.shards[shard_id]
        if shard.crashed:
            self._count_error("unavailable")
            if telemetry is not None:
                telemetry.refused(shard_id, "unavailable")
            conn.out.put_nowait(
                error_reply(
                    "unavailable",
                    f"shard {shard_id} is down — retry after recovery",
                    seq=req.seq,
                    retry_after=self._retry_after(shard),
                )
            )
            return
        if shard.queue.full():
            self._count_error("overloaded")
            if telemetry is not None:
                telemetry.refused(shard_id, "overloaded")
            conn.out.put_nowait(
                error_reply(
                    "overloaded",
                    f"shard {shard_id} queue is full",
                    seq=req.seq,
                    retry_after=self._retry_after(shard),
                )
            )
            return
        future = asyncio.get_running_loop().create_future()
        # with telemetry off the job's third slot is the bare t_recv
        # float (the pre-telemetry wire format, zero extra allocation);
        # with it on, a RequestContext carrying the same t_recv
        ctx = t_recv
        if telemetry is not None:
            ctx = telemetry.begin(req, shard_id, t_recv)
            telemetry.shards[shard_id].queue_depth.set(shard.queue.qsize())
        shard.inflight += 1
        self._track(future, conn, shard, ctx)
        if req.op == "depart":
            # ordering: a depart must see every arrival submitted before
            # it, so the shard's pending micro-batch flushes first
            await self.batchers[shard_id].flush()
            if telemetry is not None:
                ctx.t_enqueued = ctx.t_queued = self._now()
            await shard.queue.put([(req, future, ctx)])
        else:
            if telemetry is not None:
                ctx.t_enqueued = self._now()
            await self.batchers[shard_id].add((req, future, ctx))

    def _track(
        self,
        future: asyncio.Future,
        conn: _Connection,
        shard: PlacementShard,
        ctx,
    ) -> None:
        conn.pending.add(future)

        def _done(fut: asyncio.Future) -> None:
            conn.pending.discard(fut)
            shard.inflight -= 1
            reply = fut.result()
            if reply.get("ok") is False:
                self._count_error(reply.get("error", "internal"))
            if type(ctx) is float:
                conn.out.put_nowait(reply)
            else:
                ctx.t_done = self._now()
                ctx.status = (
                    "ok" if reply.get("ok")
                    else reply.get("error", "internal")
                )
                reply["trace"] = ctx.trace
                conn.out.put_nowait((reply, ctx))

        future.add_done_callback(_done)

    async def _broadcast_advance(
        self, req: Request, conn: _Connection
    ) -> None:
        """Advance every shard's clock; reply once all have moved."""
        down = [s.shard_id for s in self.shards if s.crashed]
        if down:
            # advance is all-or-nothing: with a shard down the broadcast
            # cannot complete, so tell the client to retry after recovery
            # (advance_to is idempotent at equal time, so resends are safe)
            self._count_error("unavailable")
            conn.out.put_nowait(
                error_reply(
                    "unavailable",
                    f"shards {down} are down — retry after recovery",
                    seq=req.seq,
                )
            )
            return
        futures = []
        for shard_id, shard in enumerate(self.shards):
            await self.batchers[shard_id].flush()
            advance = Request(op="advance", seq=req.seq, time=req.time)
            fut = asyncio.get_running_loop().create_future()
            futures.append(fut)
            shard.inflight += 1

            def _untrack(f, s=shard) -> None:
                s.inflight -= 1

            fut.add_done_callback(_untrack)
            if shard.crashed:  # fail-stopped while we awaited the flush
                shard._fail_future(advance, fut)
            else:
                await shard.queue.put([(advance, fut, None)])
        replies = await asyncio.gather(*futures)
        bad = next((r for r in replies if not r.get("ok")), None)
        if bad is not None:
            self._count_error(bad.get("error", "internal"))
            conn.out.put_nowait(bad)
        else:
            conn.out.put_nowait(
                ok_reply("advance", seq=req.seq, time=req.time,
                         shards=len(self.shards))
            )

    def _retry_after(self, shard: PlacementShard) -> float:
        # one batch window plus a pessimistic per-queued-batch estimate
        return round(
            self.config.batch_delay + 0.002 * (shard.queue.qsize() + 1), 4
        )

    def _count_error(self, code: str) -> None:
        self.errors += 1
        self.error_codes[code] = self.error_codes.get(code, 0) + 1

    # ------------------------------------------------------------------ #
    # Stats / metrics
    # ------------------------------------------------------------------ #
    def merged_metrics(self) -> Optional[EngineMetrics]:
        """One fleet-wide :class:`EngineMetrics` (None when disabled)."""
        registries = [
            s.engine.metrics for s in self.shards
            if s.engine.metrics is not None
        ]
        if not registries:
            return None
        merged = EngineMetrics()
        for registry in registries:
            merged.merge(registry)
        return merged

    def merged_request_latency(self) -> Histogram:
        merged = Histogram(LATENCY_EDGES)
        for shard in self.shards:
            merged.merge(shard.request_latency)
        return merged

    def totals(self) -> dict:
        per_shard = [s.stats() for s in self.shards]
        times = [s["time"] for s in per_shard if s["time"] is not None]
        return {
            "requests": self.requests,
            "errors": self.errors,
            "error_codes": dict(sorted(self.error_codes.items())),
            "accepted": sum(s["accepted"] for s in per_shard),
            "rejected": sum(s["rejected"] for s in per_shard),
            "items": sum(s["items"] for s in per_shard),
            "departures": sum(s["departures"] for s in per_shard),
            "open_bins": sum(s["open_bins"] for s in per_shard),
            "bins_opened": sum(s["bins_opened"] for s in per_shard),
            "max_open": sum(s["max_open"] for s in per_shard),
            "cost": sum(s["cost"] for s in per_shard),
            "queue_depth": sum(s["queue_depth"] for s in per_shard),
            "inflight": sum(s["inflight"] for s in per_shard),
            "time": max(times) if times else None,
        }

    def _stats_reply(self, req: Request) -> dict:
        return ok_reply(
            "stats",
            seq=req.seq,
            v=PROTOCOL_VERSION,
            algorithm=self.config.algorithm,
            shards=len(self.shards),
            draining=self.draining,
            totals=self.totals(),
            per_shard=[s.stats() for s in self.shards],
            request_latency=self.merged_request_latency().to_dict(),
        )

    def _telemetry_reply(self, req: Request) -> dict:
        if self.telemetry is None:
            return ok_reply(
                "telemetry", seq=req.seq, v=PROTOCOL_VERSION, enabled=False
            )
        return ok_reply(
            "telemetry",
            seq=req.seq,
            v=PROTOCOL_VERSION,
            enabled=True,
            snapshot=self.telemetry.snapshot(self.shards),
        )

    def _profile_reply(self, req: Request) -> dict:
        if self.sampler is None:
            return ok_reply(
                "profile", seq=req.seq, v=PROTOCOL_VERSION, enabled=False
            )
        from ..obs.prof import top_functions

        profile = self.sampler.snapshot()
        total = profile.total_weight
        top = [
            {
                "name": frame.name,
                "file": frame.file,
                "line": frame.line,
                "self": self_w,
                "cum": cum_w,
            }
            for frame, self_w, cum_w in top_functions(profile, 15)
        ]
        return ok_reply(
            "profile",
            seq=req.seq,
            v=PROTOCOL_VERSION,
            enabled=True,
            running=self.sampler.running,
            stats=profile.stats(),
            total_weight=total,
            top=top,
        )

    def _metrics_snapshot(self) -> dict:
        merged = self.merged_metrics()
        snap = merged.snapshot() if merged is not None else {}
        snap.setdefault("timings", {})["request_latency"] = (
            self.merged_request_latency().to_dict()
        )
        snap["service"] = self.totals()
        if self.telemetry is not None:
            # excluded from sentinel gating via NONDETERMINISTIC_PREFIXES
            # ("metrics.telemetry"): durations are wall-clock noise
            snap["telemetry"] = self.telemetry.snapshot(self.shards)
        return snap

    def __repr__(self) -> str:
        state = (
            "draining" if self.draining
            else "serving" if self._server is not None
            else "new"
        )
        return (
            f"PlacementServer({self.config.algorithm!r}, "
            f"shards={self.config.shards}, {state}, "
            f"requests={self.requests})"
        )
