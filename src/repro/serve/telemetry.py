"""Request-scoped service telemetry: span trees, RED metrics, admin plane.

The serve stack measures latency from the *outside* (loadgen's
done-callbacks); this module makes the service explain its own tail from
the *inside*.  Three cooperating pieces:

**Tracing** — every request that enters the server gets a trace id
(client-supplied ``trace`` field, else ``client:seq``, else a local
counter) and a :class:`RequestContext` that rides with the request
through the pipeline, collecting timestamps at each hand-off:

.. code-block:: text

    t_recv ──parse──▶ t_parsed ──batch──▶ t_queued ──queue──▶
    t_dequeued ──kernel──▶ t_kernel1 ... t_done ──write──▶ t_written

When the reply bytes have been flushed, :meth:`ServiceTelemetry.finish`
folds the marks into per-shard RED metrics and — for **head-sampled**
requests — records one span tree into the shared bounded
:class:`~repro.obs.trace.Tracer` ring buffer: child spans
(``req.parse``, ``req.batch``, ``req.queue``, ``req.kernel``,
``req.write``) at depth 1 followed by the ``request`` root at depth 0,
the same children-precede-parent convention the tracer's context-manager
spans use, so ``repro-dbp obs summarize`` works on service traces
unchanged.  The sampling decision is ``stable_hash(seed:trace_id)``
against a threshold — a pure function of the trace id, so a chaos
replay under the :class:`~repro.testkit.clock.SimLoop` virtual clock
reproduces the sampled trace byte for byte.

**RED metrics** — each shard owns a :class:`ShardTelemetry`: request
and error counters (per error code), a duration histogram, per-phase
:class:`~repro.obs.metrics.Timing` aggregates, queue-depth/inflight
gauges, a batch-size histogram with flush-cause counters, and fault
counters fed by the chaos seams (``crash``/``stall``).  Everything is
built from :mod:`repro.obs.metrics` primitives, so shard snapshots merge
losslessly and the merged snapshot lands in the server's run-ledger
record under the (never-gated) ``telemetry`` section.

**Admin plane** — the ``{"op": "telemetry"}`` protocol verb returns
:meth:`ServiceTelemetry.snapshot` as JSON; :meth:`render_prometheus`
turns the same snapshot into Prometheus text exposition; and
``repro-dbp serve top`` polls the verb to render a live per-shard
rate/p50/p99/queue-depth view.

Telemetry is **off by default** and the off path is free: the server
holds ``telemetry=None`` and every hook site is a single ``is None``
check (enforced <5% overhead by the ``bench_serve`` telemetry cell).
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional

from ..obs.export import render_prometheus as _render_prometheus
from ..obs.metrics import (
    LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    Timing,
)
from ..obs.trace import DEFAULT_CAPACITY, Tracer, TracingListener
from .protocol import Request
from .shard import stable_hash

__all__ = [
    "RequestContext",
    "ShardTelemetry",
    "ServiceTelemetry",
    "GatedNarrator",
    "BATCH_SIZE_EDGES",
    "PHASES",
    "render_service_prometheus",
]

#: micro-batch size buckets (pieces per flush)
BATCH_SIZE_EDGES = (1, 2, 4, 8, 16, 32, 64, 128)

#: request-duration buckets: the kernel-latency edges extended up to 1s,
#: so end-to-end times (which include queueing) don't saturate at 10ms
DURATION_EDGES = LATENCY_EDGES + (3e-2, 1e-1, 3e-1, 1.0)

#: the per-request phases, in pipeline order (span names are ``req.<phase>``)
PHASES = ("parse", "batch", "queue", "kernel", "write")

_SCALE = float(1 << 64)  # sampling hash domain


class RequestContext:
    """Per-request telemetry state riding through the pipeline.

    Slots-only and mark-based: each pipeline stage stamps the clock into
    the mark it owns; missing marks (a request refused mid-flight never
    reaches the kernel) simply suppress the corresponding span.
    """

    __slots__ = (
        "trace",
        "sampled",
        "op",
        "shard",
        "status",
        "t_recv",
        "t_parsed",
        "t_enqueued",
        "t_queued",
        "t_dequeued",
        "t_kernel0",
        "t_kernel1",
        "t_done",
    )

    def __init__(
        self, trace: str, sampled: bool, op: str, shard: int, t_recv: float
    ) -> None:
        self.trace = trace
        self.sampled = sampled
        self.op = op
        self.shard = shard
        self.status: Optional[str] = None
        self.t_recv = t_recv
        self.t_parsed: Optional[float] = None
        self.t_enqueued: Optional[float] = None
        self.t_queued: Optional[float] = None
        self.t_dequeued: Optional[float] = None
        self.t_kernel0: Optional[float] = None
        self.t_kernel1: Optional[float] = None
        self.t_done: Optional[float] = None

    def __repr__(self) -> str:
        flag = "sampled" if self.sampled else "unsampled"
        return (
            f"RequestContext({self.trace!r}, {self.op}, shard="
            f"{self.shard}, {flag})"
        )


class ShardTelemetry:
    """RED metrics for one shard, built from mergeable obs primitives."""

    __slots__ = (
        "requests",
        "errors",
        "error_codes",
        "backpressure",
        "faults",
        "duration",
        "batch_size",
        "flush_causes",
        "queue_depth",
        "inflight",
        "phases",
    )

    def __init__(self) -> None:
        self.requests = Counter()
        self.errors = Counter()
        self.error_codes: Dict[str, int] = {}
        #: overloaded/unavailable refusals issued before the queue
        self.backpressure = Counter()
        #: injected faults (chaos crash/stall) observed by this shard
        self.faults = Counter()
        self.duration = Histogram(DURATION_EDGES)
        self.batch_size = Histogram(BATCH_SIZE_EDGES)
        self.flush_causes: Dict[str, int] = {}
        self.queue_depth = Gauge()
        self.inflight = Gauge()
        self.phases: Dict[str, Timing] = {p: Timing() for p in PHASES}

    def count_error(self, code: str) -> None:
        self.errors.inc()
        self.error_codes[code] = self.error_codes.get(code, 0) + 1

    def merge(self, other: "ShardTelemetry") -> None:
        self.requests.merge(other.requests)
        self.errors.merge(other.errors)
        for code, n in other.error_codes.items():
            self.error_codes[code] = self.error_codes.get(code, 0) + n
        self.backpressure.merge(other.backpressure)
        self.faults.merge(other.faults)
        self.duration.merge(other.duration)
        self.batch_size.merge(other.batch_size)
        for cause, n in other.flush_causes.items():
            self.flush_causes[cause] = self.flush_causes.get(cause, 0) + n
        self.queue_depth.merge(other.queue_depth)
        self.inflight.merge(other.inflight)
        for name, timing in other.phases.items():
            self.phases[name].merge(timing)

    def snapshot(self) -> dict:
        """This shard's metrics in the standard snapshot shape."""
        return {
            "counters": {
                "requests": self.requests.value,
                "errors": self.errors.value,
                "backpressure": self.backpressure.value,
                "faults": self.faults.value,
                **{
                    f"errors_{code}": n
                    for code, n in sorted(self.error_codes.items())
                },
                **{
                    f"flush_{cause}": n
                    for cause, n in sorted(self.flush_causes.items())
                },
            },
            "gauges": {
                "queue_depth": self.queue_depth.to_dict(),
                "inflight": self.inflight.to_dict(),
            },
            "histograms": {
                "duration": self.duration.to_dict(),
                "batch_size": self.batch_size.to_dict(),
            },
            "timings": {
                f"phase_{name}": timing.to_dict()
                for name, timing in self.phases.items()
            },
            "quantiles": {
                "p50_s": self.duration.quantile(0.50),
                "p99_s": self.duration.quantile(0.99),
            },
        }


class GatedNarrator(TracingListener):
    """A :class:`TracingListener` that narrates only while switched on.

    The service tracer stays enabled for span recording, so the kernel
    bridge needs its own gate: the shard worker flips :attr:`active`
    around sampled ``apply()`` calls, and every other kernel event costs
    one attribute check.
    """

    timed = False

    def __init__(self, tracer: Tracer) -> None:
        super().__init__(tracer)
        self.active = False

    def on_advance(self, t) -> None:
        if self.active:
            super().on_advance(t)

    def on_open(self, bin_) -> None:
        if self.active:
            super().on_open(bin_)

    def on_arrival(self, item, bin_, opened) -> None:
        if self.active:
            super().on_arrival(item, bin_, opened)

    def on_departure(self, uid, removed, bin_, t, closed, elapsed) -> None:
        if self.active:
            super().on_departure(uid, removed, bin_, t, closed, elapsed)

    def on_close(self, bin_, t, usage, peak, n_items) -> None:
        if self.active:
            super().on_close(bin_, t, usage, peak, n_items)


class ServiceTelemetry:
    """The server-wide telemetry plane: one tracer, one RED registry/shard.

    Parameters
    ----------
    n_shards:
        Shard count (one :class:`ShardTelemetry` each).
    clock:
        Monotonic-seconds source shared with the server — the chaos
        harness passes the virtual loop clock so every timestamp (and
        therefore every sampled span) is a pure function of the plan.
    sample:
        Head-sampling rate in ``[0, 1]``: the fraction of trace ids
        whose span trees are recorded.  RED metrics always count every
        request; sampling only bounds tracing volume.
    seed:
        Salt for the sampling hash — different seeds sample different
        (but equally deterministic) subsets.
    capacity:
        Tracer ring-buffer size (oldest spans evicted beyond it).
    trace_path:
        When set, the server's drain writes the retained spans there as
        JSONL (readable by ``repro-dbp obs summarize``).

    The object deliberately lives *outside* the server: the chaos
    harness constructs one and hands it to every server incarnation
    across graceful restarts, so RED counters and the span ring survive
    the crash/restart cycle they are meant to explain.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        clock: Optional[Callable[[], float]] = None,
        sample: float = 1.0,
        seed: int = 0,
        capacity: int = DEFAULT_CAPACITY,
        trace_path=None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.clock = clock if clock is not None else _time.perf_counter
        self.sample = sample
        self.seed = seed
        self.trace_path = trace_path
        self.tracer = Tracer(
            capacity,
            clock_ns=lambda: int(round(self.clock() * 1e9)),
        )
        self.shards: List[ShardTelemetry] = [
            ShardTelemetry() for _ in range(n_shards)
        ]
        self.parse_errors = Counter()
        self.refusals: Dict[str, int] = {}
        self.started_at = self.clock()
        self._trace_seq = 0
        self._threshold = int(sample * _SCALE)

    # ------------------------------------------------------------------ #
    # Request lifecycle hooks (called by the server)
    # ------------------------------------------------------------------ #
    def trace_id(self, req: Request) -> str:
        """The request's trace id (client-chosen, derived, or assigned)."""
        if req.trace is not None:
            return req.trace
        if req.client is not None and req.seq is not None:
            return f"{req.client}:{req.seq}"
        self._trace_seq += 1
        return f"t{self._trace_seq}"

    def sampled(self, trace: str) -> bool:
        """The deterministic head-sampling decision for ``trace``."""
        if self._threshold <= 0:
            return False
        return stable_hash(f"{self.seed}:{trace}") < self._threshold

    def begin(
        self, req: Request, shard: int, t_recv: float
    ) -> RequestContext:
        """Open a context for a request about to enter the pipeline."""
        trace = self.trace_id(req)
        ctx = RequestContext(
            trace, self.sampled(trace), req.op, shard, t_recv
        )
        ctx.t_parsed = self.clock()
        return ctx

    def refused(self, shard: Optional[int], code: str) -> None:
        """Count a request refused before it reached a shard queue."""
        self.refusals[code] = self.refusals.get(code, 0) + 1
        if shard is not None:
            tel = self.shards[shard]
            tel.count_error(code)
            if code in ("overloaded", "unavailable"):
                tel.backpressure.inc()

    def parse_error(self, code: str) -> None:
        self.parse_errors.inc()
        self.refusals[code] = self.refusals.get(code, 0) + 1

    def batch_flushed(self, shard: int, size: int, cause: str) -> None:
        """Record one micro-batch flush (wired as the batcher observer)."""
        tel = self.shards[shard]
        tel.batch_size.observe(size)
        tel.flush_causes[cause] = tel.flush_causes.get(cause, 0) + 1

    def finish(self, ctx: RequestContext, t_written: float) -> None:
        """Fold a completed request into RED metrics and (maybe) spans."""
        tel = self.shards[ctx.shard]
        tel.requests.inc()
        if ctx.status is not None and ctx.status != "ok":
            tel.count_error(ctx.status)
        tel.duration.observe(t_written - ctx.t_recv)
        marks = self._phase_marks(ctx, t_written)
        phases = tel.phases
        for name, (t0, t1) in marks.items():
            phases[name].observe(t1 - t0)
        if ctx.sampled:
            self._record_spans(ctx, t_written, marks)

    # ------------------------------------------------------------------ #
    # Span emission
    # ------------------------------------------------------------------ #
    def _phase_marks(self, ctx: RequestContext, t_written: float) -> dict:
        """``{phase: (t0, t1)}`` for every phase whose marks are set."""
        pairs = (
            ("parse", ctx.t_recv, ctx.t_parsed),
            ("batch", ctx.t_enqueued, ctx.t_queued),
            ("queue", ctx.t_queued, ctx.t_dequeued),
            ("kernel", ctx.t_kernel0, ctx.t_kernel1),
            ("write", ctx.t_done, t_written),
        )
        return {
            name: (t0, t1)
            for name, t0, t1 in pairs
            if t0 is not None and t1 is not None
        }

    def _ns(self, t: float) -> int:
        return int(round(t * 1e9)) - self.tracer.epoch_ns

    def _record_spans(
        self, ctx: RequestContext, t_written: float, marks: dict
    ) -> None:
        record = self.tracer.record
        for name, (t0, t1) in marks.items():
            record(
                f"req.{name}",
                t_ns=self._ns(t0),
                dur_ns=self._ns(t1) - self._ns(t0),
                depth=1,
                trace=ctx.trace,
            )
        record(
            "request",
            t_ns=self._ns(ctx.t_recv),
            dur_ns=self._ns(t_written) - self._ns(ctx.t_recv),
            depth=0,
            trace=ctx.trace,
            op=ctx.op,
            shard=ctx.shard,
            status=ctx.status or "ok",
        )

    # ------------------------------------------------------------------ #
    # Snapshots / export
    # ------------------------------------------------------------------ #
    def refresh_gauges(self, shards) -> None:
        """Stamp live queue-depth/inflight off the server's shard list."""
        for shard in shards:
            tel = self.shards[shard.shard_id]
            tel.queue_depth.set(shard.queue.qsize())
            tel.inflight.set(shard.inflight)

    def merged(self) -> ShardTelemetry:
        """All shards folded into one registry (lossless merges)."""
        out = ShardTelemetry()
        for tel in self.shards:
            out.merge(tel)
        return out

    def snapshot(self, shards=None) -> dict:
        """The full JSON-friendly telemetry snapshot (the admin verb)."""
        if shards is not None:
            self.refresh_gauges(shards)
        return {
            "uptime_s": self.clock() - self.started_at,
            "sample": self.sample,
            "seed": self.seed,
            "parse_errors": self.parse_errors.value,
            "refusals": dict(sorted(self.refusals.items())),
            "trace": {
                "recorded": self.tracer.total,
                "retained": len(self.tracer),
                "dropped": self.tracer.dropped,
            },
            "merged": self.merged().snapshot(),
            "per_shard": [tel.snapshot() for tel in self.shards],
        }

    def render_prometheus(self, snapshot: Optional[dict] = None) -> str:
        """The snapshot as one Prometheus text-exposition page."""
        snap = snapshot if snapshot is not None else self.snapshot()
        return render_service_prometheus(snap)

    def write_trace(self, path=None) -> int:
        """Export retained spans as JSONL; returns the line count."""
        target = path if path is not None else self.trace_path
        if target is None:
            raise ValueError("no trace path configured")
        return self.tracer.write_jsonl(target)


def render_service_prometheus(snapshot: dict) -> str:
    """A telemetry snapshot dict as one Prometheus text-exposition page.

    Works on the wire form of the ``{"op": "telemetry"}`` reply, so a
    scrape sidecar (or ``repro-dbp serve top --prometheus``) needs no
    handle on the server's live :class:`ServiceTelemetry`.
    """
    pages = [
        _render_prometheus(
            shard_snap, prefix="repro_serve", labels={"shard": k}
        )
        for k, shard_snap in enumerate(snapshot.get("per_shard", []))
    ]
    service = _render_prometheus(
        {
            "counters": {
                "parse_errors": snapshot.get("parse_errors", 0),
                **{
                    f"refused_{code}": n
                    for code, n in snapshot.get("refusals", {}).items()
                },
            },
            "gauges": {"uptime_seconds": snapshot.get("uptime_s", 0.0)},
        },
        prefix="repro_serve",
    )
    return "".join(pages) + service
