"""Async client for the placement service.

A :class:`PlacementClient` owns one TCP connection and supports
**pipelining**: :meth:`submit` assigns a monotone ``seq``, writes the
request line, and returns a future immediately; a background reader task
matches reply lines back to futures by their echoed ``seq``.  Replies
from different shards may interleave on the wire — correlation is by
``seq``, never by order.  The ``await``-style helpers (:meth:`arrive`,
:meth:`depart`, :meth:`advance`, :meth:`stats`, :meth:`ping`) are
``submit`` + ``await`` for the common one-at-a-time case.

Error replies are returned as dicts (``{"ok": false, ...}``), not
raised — a load generator counting ``overloaded`` replies and a parity
harness asserting on decisions both want the reply itself.  The only
exceptions raised are connection-level (:class:`ConnectionError` when
the server goes away with requests in flight).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from .protocol import PROTOCOL_VERSION, decode, encode

__all__ = ["PlacementClient"]


class PlacementClient:
    """One pipelined JSONL connection to a placement server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._seq = 0
        self._inflight: Dict[int, asyncio.Future] = {}
        self._closing = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        transport=None,
    ) -> "PlacementClient":
        """Open a connection (over ``transport``, TCP when ``None``)."""
        if transport is None:
            opening = asyncio.open_connection(host, port)
        else:
            opening = transport.open_connection(host, port)
        reader, writer = await asyncio.wait_for(opening, timeout)
        return cls(reader, writer)

    # ------------------------------------------------------------------ #
    # Pipelined core
    # ------------------------------------------------------------------ #
    def submit(self, request: dict, *, seq=None) -> "asyncio.Future[dict]":
        """Send one request now; resolve to its reply later.

        A ``seq`` is assigned automatically (any value inside
        ``request`` is overwritten — correlation bookkeeping owns that
        field).  Passing ``seq=`` pins it instead: retry loops need the
        *same* seq on every resend of a request so the server's
        ``(client, seq)`` dedup key stays stable.  A resend replaces the
        previous future for that seq; the latest one gets the reply.
        """
        if self._closing:
            raise ConnectionError("client is closed")
        if self._reader_task.done():
            # the reply stream ended (peer closed or reset); writing more
            # would dead-letter the request — fail fast so callers reconnect
            raise ConnectionError("connection closed by peer")
        if seq is None:
            self._seq += 1
            seq = self._seq
        request = dict(request, seq=seq)
        future = asyncio.get_running_loop().create_future()
        self._inflight[seq] = future
        self._writer.write(encode(request))
        return future

    async def request(self, request: dict) -> dict:
        """Send one request and await its reply."""
        future = self.submit(request)
        try:
            await self._writer.drain()
        except BaseException:
            future.cancel()  # nobody will await it; don't leak its error
            raise
        return await future

    async def _read_replies(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    reply = decode(line)
                except (ValueError, json.JSONDecodeError):
                    continue  # garbage on the wire; keep the stream alive
                future = self._inflight.pop(reply.get("seq"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            error = exc
        finally:
            for future in self._inflight.values():
                if not future.done():
                    future.set_exception(
                        error
                        or ConnectionError(
                            "connection closed with requests in flight"
                        )
                    )
            self._inflight.clear()

    # ------------------------------------------------------------------ #
    # Convenience ops
    # ------------------------------------------------------------------ #
    async def arrive(
        self,
        id,
        *,
        arrival: float,
        size: float,
        departure: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> dict:
        req = {
            "op": "arrive", "id": id, "arrival": arrival, "size": size,
            "departure": departure, "v": PROTOCOL_VERSION,
        }
        if tenant is not None:
            req["tenant"] = tenant
        return await self.request(req)

    async def depart(
        self, id, *, time: float, tenant: Optional[str] = None
    ) -> dict:
        req = {"op": "depart", "id": id, "time": time}
        if tenant is not None:
            req["tenant"] = tenant
        return await self.request(req)

    async def advance(self, time: float) -> dict:
        return await self.request({"op": "advance", "time": time})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def telemetry(self) -> dict:
        """Fetch the server's live telemetry snapshot (the admin verb)."""
        return await self.request({"op": "telemetry"})

    async def profile(self) -> dict:
        """Fetch the server's live profiling snapshot (the admin verb)."""
        return await self.request({"op": "profile"})

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def drain_writes(self) -> None:
        """Flush the socket send buffer (pairs with :meth:`submit`)."""
        await self._writer.drain()

    async def aclose(self) -> None:
        """Close the connection (pending futures get ConnectionError)."""
        self._closing = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
        await self._reader_task
