"""Worker shards: one placement kernel per shard, consistent-hash routed.

A :class:`PlacementShard` owns one streaming
:class:`~repro.engine.loop.Engine` (and therefore one
:class:`~repro.core.kernel.PlacementKernel` + algorithm instance) behind
a bounded :class:`asyncio.Queue`.  A single worker coroutine drains the
queue, so every shard processes its requests **strictly in enqueue
order** — the property that makes per-shard decision streams
deterministic and lets the parity harness compare a single-shard server
bit-for-bit against batch ``simulate()``.

Routing uses a **consistent-hash ring** (:class:`HashRing`) over the
request's routing key (tenant, falling back to item id), built on
SHA-256 rather than Python's per-process-salted ``hash()`` so placement
of keys onto shards is stable across runs and machines.  Requests
sharing a key always reach the same shard; a key's sub-stream is
therefore processed in submission order.

Checkpointing writes the engine's **v2 checkpoint**
(:mod:`repro.engine.checkpoint` — the joint kernel+algorithm pickle)
plus a small JSON sidecar holding the shard's service-level state (the
live adaptive-item id map).  :meth:`PlacementShard.restore` rebuilds a
shard that continues the decision stream exactly where the snapshot
left off.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pathlib
import time as _time
from bisect import bisect_right
from typing import Callable, List, Optional, Tuple, Union

from ..core.errors import ClairvoyanceError, PackingError, SimulationError
from ..core.store import ItemStore
from ..engine.checkpoint import (
    Checkpoint,
    load_checkpoint,
    restore as restore_engine,
    save_checkpoint,
    snapshot,
)
from ..engine.loop import Engine
from ..engine.metrics import EngineMetrics
from ..obs.metrics import LATENCY_EDGES, Histogram
from .protocol import Request, error_reply, ok_reply

__all__ = ["HashRing", "PlacementShard", "stable_hash"]

#: sentinel that stops a shard worker (queue-ordered, after pending work)
_STOP = object()

#: decode-scratch recycling threshold, in rows (28 B each) — the bound
#: that keeps per-shard memory independent of the request count
_SCRATCH_ROWS = 4096

#: bound of the ``(client, seq) → reply`` retry-dedup cache, in entries
#: (FIFO eviction; must exceed any client's in-flight × retry window)
_DEDUP_CAP = 65536


def stable_hash(key: str) -> int:
    """A 64-bit process-independent hash (SHA-256 prefix) of ``key``."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing of routing keys onto ``n_shards`` shards.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring;
    a key maps to the shard owning the first point clockwise from the
    key's hash.  Deterministic for a given ``(n_shards, replicas)`` —
    the same key always routes to the same shard, across processes and
    machines.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((stable_hash(f"shard{shard}:{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (O(log(shards·replicas)))."""
        if self.n_shards == 1:
            return 0
        i = bisect_right(self._hashes, stable_hash(key))
        if i == len(self._hashes):
            i = 0
        return self._shards[i]


class PlacementShard:
    """One kernel-owning worker: a queue in, placement decisions out.

    Parameters
    ----------
    shard_id:
        Position of this shard in the server's shard list.
    algorithm:
        A fresh algorithm instance (one per shard — shards never share
        state).
    capacity, indexed:
        Forwarded to the :class:`~repro.engine.loop.Engine`.
    max_queue:
        Bound of the work queue, in *jobs* (a job is a micro-batch).
        When the queue is full the server answers ``overloaded`` instead
        of buffering — explicit backpressure, never unbounded memory.
    metrics:
        Attach an :class:`~repro.engine.metrics.EngineMetrics` (kernel
        latency/residual/occupancy histograms; mergeable across shards).
    clock:
        Monotonic-seconds source for latency capture (defaults to
        :func:`time.perf_counter`).  The chaos harness passes the
        simulation loop's virtual clock so replies are deterministic.
    """

    def __init__(
        self,
        shard_id: int,
        algorithm,
        *,
        capacity: float = 1.0,
        indexed: bool = True,
        max_queue: int = 1024,
        metrics: bool = True,
        engine: Optional[Engine] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.shard_id = shard_id
        if engine is not None:
            self.engine = engine
            if metrics and engine.metrics is None:
                engine.metrics = EngineMetrics()
        else:
            self.engine = Engine(
                algorithm,
                capacity=capacity,
                indexed=indexed,
                metrics=EngineMetrics() if metrics else None,
            )
        self.queue: asyncio.Queue = asyncio.Queue(max_queue)
        #: wall-clock receive→reply latency of requests this shard served
        self.request_latency = Histogram(LATENCY_EDGES)
        self.accepted = 0  # arrive requests committed into the kernel
        self.rejected = 0  # requests answered with a structured error
        #: tracked request futures currently outstanding on this shard
        #: (incremented by the server at enqueue, decremented when the
        #: reply future resolves) — surfaced per shard by ``stats``
        self.inflight = 0
        #: telemetry plane hooks (None = telemetry off, zero overhead):
        #: the shard's RED registry and the gated kernel-event narrator
        self.telemetry = None
        self._narrator = None
        self._adaptive_uids: dict[str, int] = {}  # live unknown-departure ids
        #: columnar decode buffer: arrive payloads land here as store
        #: rows (validated once, no boxed Item per request) before the
        #: engine reads them off; recycled so memory stays O(1)
        self._scratch = ItemStore()
        self._task: Optional[asyncio.Task] = None
        self._now = clock if clock is not None else _time.perf_counter
        #: at-most-once retry dedup: ``(client, seq) → ok reply``.  The
        #: ``dedup_enabled`` switch is a deliberate bug-injection seam —
        #: the chaos harness flips it off to prove the exactly-once
        #: oracle catches double-applies.
        self.dedup_enabled = True
        self._applied: dict[tuple, dict] = {}
        #: fail-stop state (testkit seam): a crashed shard answers
        #: nothing until :meth:`recover` rebuilds it from the durable
        #: image captured at the crash instant (ack ⇒ durable)
        self.crashed = False
        self._durable: Optional[dict] = None
        self._stall_until: Optional[float] = None
        self._crash_after_applies: Optional[int] = None

    def attach_telemetry(self, shard_tel, narrator=None) -> None:
        """Wire this shard into the telemetry plane.

        ``shard_tel`` is the shard's
        :class:`~repro.serve.telemetry.ShardTelemetry` (fault counters);
        ``narrator`` the gated kernel-event listener, attached to the
        engine here and re-attached after every :meth:`recover` /
        :meth:`restore` (engines are rebuilt, listeners are not
        checkpointed).
        """
        self.telemetry = shard_tel
        self._narrator = narrator
        if narrator is not None:
            self.engine.attach_listener(narrator)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker coroutine (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._worker(), name=f"shard-{self.shard_id}"
            )

    async def stop(self) -> None:
        """Process everything already queued, then stop the worker."""
        if self._task is None:
            return
        if self.crashed or self._task.done():
            self._task = None
            return
        await self.queue.put(_STOP)
        await self._task
        self._task = None

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            try:
                if job is _STOP:
                    return
                try:
                    await self._maybe_stall()
                except asyncio.CancelledError:
                    # fail-stopped while parked: this job is already out
                    # of the queue, so _fail_queue() cannot see it — its
                    # futures must still be answered or their waiters
                    # (and the connection's drain) hang forever
                    for req, future, _ in job:
                        self._fail_future(req, future)
                    raise
                for req, future, ctx in job:
                    if self.crashed:  # fail-stopped mid-batch
                        self._fail_future(req, future)
                        continue
                    if ctx is None or type(ctx) is float:
                        t_recv = ctx  # telemetry off: ctx IS t_recv
                        reply = self.apply(req)
                    else:  # a telemetry RequestContext rides with the job
                        t_recv = ctx.t_recv
                        ctx.t_dequeued = self._now()
                        narrator = self._narrator
                        if narrator is not None and ctx.sampled:
                            narrator.active = True
                        ctx.t_kernel0 = self._now()
                        reply = self.apply(req)
                        ctx.t_kernel1 = self._now()
                        if narrator is not None:
                            narrator.active = False
                    if t_recv is not None:
                        reply.setdefault("shard", self.shard_id)
                        self.request_latency.observe(self._now() - t_recv)
                    if not future.done():
                        future.set_result(reply)
                    if self._crash_after_applies is not None:
                        self._crash_after_applies -= 1
                        if self._crash_after_applies <= 0:
                            self._crash_after_applies = None
                            self._do_crash()
            finally:
                self.queue.task_done()
            if self.crashed:
                self._task = None
                return

    async def _maybe_stall(self) -> None:
        # overload-window fault: park the worker so the queue backs up
        # and the server's bounded-queue backpressure kicks in
        while self._stall_until is not None:
            delay = self._stall_until - asyncio.get_running_loop().time()
            if delay <= 0:
                self._stall_until = None
                return
            await asyncio.sleep(delay)

    # ------------------------------------------------------------------ #
    # Fault injection (testkit seams — inert in production)
    # ------------------------------------------------------------------ #
    def crash(self) -> None:
        """Fail-stop this shard *now*, keeping only the durable image.

        ``ack ⇒ durable``: the image is captured at the crash instant,
        so every request the shard has already applied (and therefore
        may have acknowledged) survives.  Everything still queued is
        answered ``unavailable`` — the client's cue to retry, which the
        ``(client, seq)`` dedup cache makes safe.
        """
        if self.crashed:
            return
        self._do_crash()
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _count_fault(self) -> None:
        if self.telemetry is not None:
            self.telemetry.faults.inc()

    def crash_after(self, applies: int) -> None:
        """Arm a fail-stop after ``applies`` more applied requests.

        Crashing from *inside* the worker's batch loop is how the
        harness hits the mid-batch window that an externally scheduled
        :meth:`crash` (which runs between event-loop steps) cannot.
        """
        self._crash_after_applies = max(1, int(applies))

    def stall(self, until: float) -> None:
        """Pause the worker until loop time ``until`` (overload window)."""
        self._count_fault()
        current = self._stall_until
        self._stall_until = until if current is None else max(current, until)

    def durable_image(self) -> dict:
        """This shard's durable state, as ``{"engine": bytes, "meta": …}``."""
        return {
            "engine": snapshot(self.engine).dumps(),
            "meta": self._meta(),
        }

    def recover(self, image: Optional[dict] = None) -> None:
        """Rebuild from a durable image and restart the worker.

        With no ``image``, recovers from the one captured by the last
        :meth:`crash` — the fail-stop/restart cycle of the chaos plans.
        """
        if not self.crashed:
            return
        if image is None:
            image = self._durable
        if image is None:
            raise SimulationError(
                f"shard {self.shard_id} crashed with no durable image"
            )
        self.engine = restore_engine(Checkpoint.loads(image["engine"]))
        meta = image["meta"]
        self.accepted = int(meta.get("accepted", 0))
        self.rejected = int(meta.get("rejected", 0))
        self._adaptive_uids = {
            str(k): int(v)
            for k, v in (meta.get("adaptive_uids") or {}).items()
        }
        self._applied = {
            (client, seq): reply
            for client, seq, reply in (meta.get("applied") or [])
        }
        self._scratch = ItemStore()
        self._durable = None
        self.crashed = False
        self._task = None
        if self._narrator is not None:  # rebuilt engine, fresh fan-out
            self.engine.attach_listener(self._narrator)
        self.start()

    def _do_crash(self) -> None:
        self._count_fault()
        self._durable = self.durable_image()
        self.crashed = True
        self._fail_queue()

    def _fail_queue(self) -> None:
        """Answer everything queued with ``unavailable`` (crash/drain)."""
        while True:
            try:
                job = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            try:
                if job is not _STOP:
                    for req, future, _ in job:
                        self._fail_future(req, future)
            finally:
                self.queue.task_done()

    def _fail_future(self, req: Request, future: asyncio.Future) -> None:
        if not future.done():
            future.set_result(error_reply(
                "unavailable",
                f"shard {self.shard_id} is down — retry after recovery",
                seq=req.seq, shard=self.shard_id,
            ))

    # ------------------------------------------------------------------ #
    # Request execution (synchronous — the kernel is pure computation)
    # ------------------------------------------------------------------ #
    def apply(self, req: Request) -> dict:
        """Execute one request against the kernel; always returns a reply.

        Requests carrying a ``(client, seq)`` idempotency key are applied
        **at most once**: a resend of an already-applied request returns
        the original ok reply verbatim instead of touching the kernel,
        which is what makes client retries after lost acks safe.
        """
        key = req.dedup_key if self.dedup_enabled else None
        if key is not None:
            cached = self._applied.get(key)
            if cached is not None:
                return cached
        try:
            if req.op == "arrive":
                reply = self._arrive(req)
            elif req.op == "depart":
                reply = self._depart(req)
            elif req.op == "advance":
                reply = self._advance(req)
            else:
                raise PackingError(f"op {req.op!r} is not a shard op")
        except Exception as exc:  # a bad request must never kill the worker
            self.rejected += 1
            return error_reply("internal", f"{type(exc).__name__}: {exc}",
                               seq=req.seq, shard=self.shard_id)
        if key is not None and reply.get("ok", False):
            if len(self._applied) >= _DEDUP_CAP:  # FIFO eviction
                self._applied.pop(next(iter(self._applied)))
            self._applied[key] = reply
        return reply

    def _arrive(self, req: Request) -> dict:
        if req.departure is None and req.id in self._adaptive_uids:
            self.rejected += 1
            return error_reply(
                "duplicate-id",
                f"adaptive item id {req.id!r} is still active on this shard",
                seq=req.seq, id=req.id, shard=self.shard_id,
            )
        uid = self.engine.accounting.arrivals  # sequential per shard
        scratch = self._scratch
        if len(scratch) >= _SCRATCH_ROWS:
            scratch.clear()
        row = scratch.append(req.arrival, req.departure, req.size, uid)
        t0 = self._now()
        try:
            bin_ = self.engine.feed_row(scratch, row)
        except ClairvoyanceError as exc:
            # an adaptive item needs a non-clairvoyant algorithm — a
            # client mistake, not a server fault
            scratch.pop()  # the row never reached the kernel
            self.rejected += 1
            return error_reply(
                "bad-item", str(exc),
                seq=req.seq, id=req.id, shard=self.shard_id,
            )
        except SimulationError as exc:
            scratch.pop()
            self.rejected += 1
            return error_reply(
                "out-of-order", str(exc),
                seq=req.seq, id=req.id, shard=self.shard_id,
                clock=self._clock(),
            )
        if req.departure is None:
            self._adaptive_uids[req.id] = uid
        self.accepted += 1
        return ok_reply(
            "arrive",
            seq=req.seq,
            id=req.id,
            uid=uid,  # per-shard apply order — the chaos oracle's key
            bin=bin_.uid,
            opened=self.engine._last_opened,
            shard=self.shard_id,
            latency_us=round(1e6 * (self._now() - t0), 3),
        )

    def _depart(self, req: Request) -> dict:
        uid = self._adaptive_uids.get(req.id)
        if uid is None:
            self.rejected += 1
            return error_reply(
                "unknown-item",
                f"no live adaptive item with id {req.id!r} on this shard "
                "(scheduled departures happen automatically)",
                seq=req.seq, id=req.id, shard=self.shard_id,
            )
        try:
            self.engine.depart(uid, req.time)
        except (SimulationError, PackingError) as exc:
            self.rejected += 1
            return error_reply(
                "out-of-order", str(exc),
                seq=req.seq, id=req.id, shard=self.shard_id,
                clock=self._clock(),
            )
        del self._adaptive_uids[req.id]
        return ok_reply("depart", seq=req.seq, id=req.id,
                        shard=self.shard_id)

    def _advance(self, req: Request) -> dict:
        try:
            self.engine.advance_to(req.time)
        except SimulationError as exc:
            self.rejected += 1
            return error_reply(
                "out-of-order", str(exc),
                seq=req.seq, shard=self.shard_id, clock=self._clock(),
            )
        return ok_reply("advance", seq=req.seq, shard=self.shard_id,
                        time=req.time)

    def _clock(self) -> Optional[float]:
        import math

        t = self.engine.time
        return t if math.isfinite(t) else None

    # ------------------------------------------------------------------ #
    # Introspection (safe between event-loop steps: one thread, no locks)
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        acc = self.engine.accounting
        return {
            "shard": self.shard_id,
            "indexed": self.engine.indexed,
            "items": acc.arrivals,
            "departures": acc.departures,
            "open_bins": self.engine.open_bin_count,
            "bins_opened": acc.bins_opened,
            "max_open": acc.max_open,
            "cost": acc.cost_at(self.engine.time),
            "time": self._clock(),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "live_adaptive": len(self._adaptive_uids),
            "queue_depth": self.queue.qsize(),
            "inflight": self.inflight,
            "crashed": self.crashed,
        }

    # ------------------------------------------------------------------ #
    # Checkpoint / restore (v2 engine checkpoint + service sidecar)
    # ------------------------------------------------------------------ #
    def _meta(self) -> dict:
        """Service-level sidecar state (JSON-serializable)."""
        return {
            "shard": self.shard_id,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "adaptive_uids": dict(self._adaptive_uids),
            # dedup cache as [client, seq, reply] triples — JSON objects
            # cannot key on tuples
            "applied": [
                [client, seq, reply]
                for (client, seq), reply in self._applied.items()
            ],
        }

    def checkpoint(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Snapshot this shard to ``path`` (+ ``<path>.meta.json``)."""
        path = pathlib.Path(path)
        save_checkpoint(self.engine, path)
        path.with_suffix(path.suffix + ".meta.json").write_text(
            json.dumps(self._meta(), sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def restore(
        cls,
        shard_id: int,
        path: Union[str, pathlib.Path],
        *,
        max_queue: int = 1024,
        metrics: bool = True,
        indexed: Optional[bool] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "PlacementShard":
        """Rebuild a shard from :meth:`checkpoint` output.

        The engine (kernel + algorithm, mid-stream) comes from the
        checkpoint (v3, or a pre-columnar v2 file); the adaptive-id map
        and accept/reject counters come from the sidecar.  The restored
        shard's decision stream continues bit-for-bit from where the
        snapshot was taken.  ``indexed`` (when not ``None``) overrides
        the checkpointed run's open-bin index setting — how the server's
        ``--no-index`` flag survives a ``--resume``.
        """
        path = pathlib.Path(path)
        engine = load_checkpoint(path)
        if indexed is not None:
            engine.set_indexed(indexed)
        shard = cls(
            shard_id,
            None,
            engine=engine,
            max_queue=max_queue,
            metrics=metrics,
            clock=clock,
        )
        meta_path = path.with_suffix(path.suffix + ".meta.json")
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            shard.accepted = int(meta.get("accepted", 0))
            shard.rejected = int(meta.get("rejected", 0))
            shard._adaptive_uids = {
                str(k): int(v)
                for k, v in (meta.get("adaptive_uids") or {}).items()
            }
            shard._applied = {
                (client, seq): reply
                for client, seq, reply in (meta.get("applied") or [])
            }
        else:
            shard.accepted = engine.accounting.arrivals
        return shard

    def __repr__(self) -> str:
        return (
            f"PlacementShard(id={self.shard_id}, items="
            f"{self.engine.accounting.arrivals}, "
            f"open={self.engine.open_bin_count}, "
            f"queue={self.queue.qsize()})"
        )
