"""Open-loop load generation against a running placement server.

The generator replays any registered workload (or a JSONL trace file) as
**timed traffic**: request *i* is sent at wall-clock ``t0 + i/rate``
regardless of how fast earlier replies came back.  Open-loop is the
honest way to load-test a service — a closed loop (wait for each reply)
silently slows the offered rate exactly when the server struggles,
hiding the latency it should be measuring.

Items are partitioned round-robin over ``connections`` concurrent
client connections.  Each connection stamps its requests with a
``tenant`` key chosen (via the same deterministic hash ring the server
routes with) so that **every connection lands on its own shard**: a
connection's sub-stream is FIFO end-to-end, so each shard sees arrivals
in nondecreasing paper time — the kernel's hard requirement.  Two
connections sharing a shard would interleave arbitrarily under
scheduling jitter and manufacture ``out-of-order`` rejections the
server never deserved, so ``connections`` must not exceed the server's
shard count (probed over the wire before traffic starts).

The resulting :class:`LoadReport` carries offered vs achieved
throughput, reply percentiles (p50/p90/p99/max, measured send→reply per
request), and the error breakdown (``overloaded`` backpressure replies
are counted, not retried).
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.instance import Instance
from .client import PlacementClient
from .shard import HashRing

__all__ = [
    "WORKLOADS",
    "LoadReport",
    "make_workload",
    "run_loadgen",
    "shard_affine_tenants",
]


def _uniform(n: int, seed: int) -> Instance:
    from ..workloads import uniform_random

    # horizon scales with n so steady-state concurrency (and therefore
    # per-placement cost) stays bounded as the trace grows
    return uniform_random(n, 16.0, seed=seed, horizon=max(64.0, n / 32.0))


def _poisson(n: int, seed: int) -> Instance:
    from ..workloads import poisson_random

    # horizon scaled so the expected item count comfortably exceeds n
    inst = poisson_random(2.0, 8.0, max(4.0, n / 2.0 + 32.0), seed=seed)
    return Instance(list(inst)[:n])


def _cloud(n: int, seed: int) -> Instance:
    from ..workloads import cloud_gaming

    inst = cloud_gaming(max(4.0, n / 2.0 + 16.0), seed=seed)
    return Instance(list(inst)[:n])


def _batch_jobs(n: int, seed: int) -> Instance:
    from ..workloads import batch_jobs

    waves = max(1, round(n ** 0.5))
    inst = batch_jobs(waves, max(1, n // waves + 1), seed=seed)
    return Instance(list(inst)[:n])


def _aligned(n: int, seed: int) -> Instance:
    from ..workloads import aligned_random

    inst = aligned_random(32, max(8, n), seed=seed)
    return Instance(list(inst)[:n])


def _staircase(n: int, seed: int) -> Instance:
    # the adversary's nested-duration batch (lengths 1, 2, 4, ...),
    # re-released once per time unit until the trace holds n items
    levels = 12
    triples = []
    batch = 0
    while len(triples) < n:
        for i in range(levels):
            triples.append((float(batch), float(batch + 2**i), 0.3))
            if len(triples) == n:
                break
        batch += 1
    return Instance.from_tuples(triples)


#: workload name → ``f(n_items, seed) -> Instance`` (arrival-ordered)
WORKLOADS = {
    "uniform": _uniform,
    "poisson": _poisson,
    "cloud": _cloud,
    "batch_jobs": _batch_jobs,
    "aligned": _aligned,
    "staircase": _staircase,
}


def make_workload(name: str, n: int, seed: int = 0) -> Instance:
    """Build ``n`` arrival-ordered items from a registered generator."""
    if name not in WORKLOADS:
        raise ValueError(
            f"unknown workload {name!r}; options: "
            + ", ".join(sorted(WORKLOADS))
        )
    return WORKLOADS[name](n, seed)


def shard_affine_tenants(n_shards: int, connections: int) -> List[str]:
    """One tenant key per connection, each routing to a distinct shard.

    The hash ring is deterministic, so the client can search key space
    locally: connection ``j`` gets the first ``lg-<j>-<salt>`` key that
    the server's ring will route to shard ``j``.
    """
    if connections > n_shards:
        raise ValueError(
            f"connections ({connections}) must not exceed the server's "
            f"shard count ({n_shards}): two connections sharing a shard "
            "would interleave and break per-shard arrival order"
        )
    ring = HashRing(n_shards)
    tenants = []
    for j in range(connections):
        salt = 0
        while ring.shard_for(f"lg-{j}-{salt}") != j:
            salt += 1
        tenants.append(f"lg-{j}-{salt}")
    return tenants


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """Outcome of one load-generation run (JSON-friendly)."""

    workload: str
    items: int
    connections: int
    offered_rps: float  #: the target rate
    duration_s: float
    ok: int
    errors: int
    error_codes: Dict[str, int] = field(default_factory=dict)
    p50_ms: float = 0.0
    p90_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    server_stats: Optional[dict] = None
    #: the server's telemetry snapshot (``--trace`` runs only): the
    #: server-side phase attribution that answers "where did the p99 go"
    server_telemetry: Optional[dict] = None

    @property
    def achieved_rps(self) -> float:
        return self.items / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "items": self.items,
            "connections": self.connections,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "duration_s": self.duration_s,
            "ok": self.ok,
            "errors": self.errors,
            "error_codes": dict(self.error_codes),
            "latency_ms": {
                "p50": self.p50_ms,
                "p90": self.p90_ms,
                "p99": self.p99_ms,
                "max": self.max_ms,
            },
            "server_stats": self.server_stats,
            "server_telemetry": self.server_telemetry,
        }

    def ledger_snapshot(self) -> dict:
        """This report in the run-ledger snapshot shape.

        Deterministic reply counts land under ``counters`` (gated by the
        regression sentinel); every wall-clock quantity goes under
        ``timings`` (never gated), so a ``kind="loadgen"`` record sits
        next to the server's ``kind="serve"`` record in ``obs diff``
        without tripping latency noise.
        """
        return {
            "counters": {
                "ok": self.ok,
                "errors": self.errors,
                **{
                    f"errors_{code}": n
                    for code, n in sorted(self.error_codes.items())
                },
            },
            "timings": {
                "client_latency_ms": {
                    "p50": self.p50_ms,
                    "p90": self.p90_ms,
                    "p99": self.p99_ms,
                    "max": self.max_ms,
                },
                "offered_rps": self.offered_rps,
                "achieved_rps": self.achieved_rps,
                "duration_s": self.duration_s,
            },
        }

    def _phase_lines(self) -> List[str]:
        """Server-side phase attribution from the telemetry snapshot."""
        snap = self.server_telemetry or {}
        merged = snap.get("merged", {})
        timings = merged.get("timings", {})
        if not timings:
            return []
        q = merged.get("quantiles", {})
        lines = [
            f"  server: p50={1e3 * q.get('p50_s', 0.0):.3f}ms "
            f"p99={1e3 * q.get('p99_s', 0.0):.3f}ms "
            f"(sampled spans: {snap.get('trace', {}).get('recorded', 0)})"
        ]
        for name, t in timings.items():
            phase = name.removeprefix("phase_")
            lines.append(
                f"    {phase:>6s}: mean={t.get('mean_us', 0.0):8.1f}us "
                f"max={t.get('max_us', 0.0):10.1f}us "
                f"(n={t.get('count', 0)})"
            )
        return lines

    def render(self) -> str:
        lines = [
            f"loadgen: {self.items} requests over {self.connections} "
            f"connection(s), workload={self.workload}",
            f"  offered {self.offered_rps:,.0f} req/s -> achieved "
            f"{self.achieved_rps:,.0f} req/s in {self.duration_s:.3f}s",
            f"  replies: {self.ok} ok, {self.errors} errors"
            + (f" {self.error_codes}" if self.error_codes else ""),
            f"  latency: p50={self.p50_ms:.3f}ms p90={self.p90_ms:.3f}ms "
            f"p99={self.p99_ms:.3f}ms max={self.max_ms:.3f}ms",
        ]
        lines += self._phase_lines()
        return "\n".join(lines)


async def run_loadgen(
    host: str,
    port: int,
    *,
    instance: Instance,
    rate: float = 5000.0,
    connections: int = 1,
    workload: str = "instance",
    fetch_stats: bool = True,
    trace: bool = False,
) -> LoadReport:
    """Replay ``instance`` as open-loop traffic; measure reply latency.

    ``rate`` is the *global* offered rate in requests/second; item ``i``
    (in arrival order) is scheduled at ``t0 + i/rate``.  Items go
    round-robin to ``connections`` pipelined connections, each tagged
    with a per-connection tenant key.

    With ``trace=True`` every request carries a deterministic trace id
    (``lg-<i>``) so a telemetry-enabled server records span trees for
    the run, and the report fetches the server's telemetry snapshot —
    its per-phase latency attribution — alongside the client-observed
    percentiles.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    items = list(instance)
    clients = [
        await PlacementClient.connect(host, port) for _ in range(connections)
    ]
    probe = await clients[0].stats()
    n_shards = int(probe.get("shards", 1))
    try:
        tenants = shard_affine_tenants(n_shards, connections)
    except ValueError:
        for client in clients:
            await client.aclose()
        raise
    latencies: List[float] = []
    error_codes: Dict[str, int] = {}
    ok = 0

    def measured(future: asyncio.Future, sent_at: float) -> asyncio.Future:
        # a done-callback, not a task per request: 10k in-flight requests
        # cost 10k callbacks, and the event loop stays responsive
        def _record(fut: asyncio.Future) -> None:
            nonlocal ok
            latencies.append(_time.perf_counter() - sent_at)
            # a future may hold an exception (connection died mid-run)
            # instead of a reply; .result() would raise *inside* this
            # done-callback, which asyncio logs and swallows — the
            # failure must land in the error breakdown, not vanish
            exc = (
                fut.exception() if not fut.cancelled()
                else asyncio.CancelledError()
            )
            if exc is not None:
                code = f"exception:{type(exc).__name__}"
                error_codes[code] = error_codes.get(code, 0) + 1
                return
            reply = fut.result()
            if reply.get("ok"):
                ok += 1
            else:
                code = reply.get("error", "internal")
                error_codes[code] = error_codes.get(code, 0) + 1

        future.add_done_callback(_record)
        return future

    async def sender(conn_idx: int) -> None:
        client = clients[conn_idx]
        tenant = tenants[conn_idx]
        waiters = []
        for i in range(conn_idx, len(items), connections):
            target = t0 + i / rate
            delay = target - _time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            item = items[i]
            request = {
                "op": "arrive",
                "id": item.uid,
                "tenant": tenant,
                "arrival": item.arrival,
                "departure": item.departure,
                "size": item.size,
            }
            if trace:
                request["trace"] = f"lg-{i}"
            waiters.append(
                measured(client.submit(request), _time.perf_counter())
            )
            await client.drain_writes()
        # exceptions are already tallied by _record; re-raising here
        # would abort the other senders and lose the report
        await asyncio.gather(*waiters, return_exceptions=True)

    # cyclic GC off for the measurement window: a gen-2 pause in the
    # *generator* process stalls every in-flight request at once and
    # shows up as a fake server p99.  (The server keeps GC on — its
    # pauses are real service latency and should be measured.)
    import gc

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    t0 = _time.perf_counter()
    try:
        await asyncio.gather(*(sender(j) for j in range(connections)))
        duration = _time.perf_counter() - t0
        server_stats = None
        server_telemetry = None
        if fetch_stats:
            server_stats = await clients[0].stats()
        if trace:
            reply = await clients[0].telemetry()
            server_telemetry = reply.get("snapshot")
    finally:
        if gc_was_enabled:
            gc.enable()
        for client in clients:
            await client.aclose()

    latencies.sort()
    return LoadReport(
        workload=workload,
        items=len(items),
        connections=connections,
        offered_rps=rate,
        duration_s=duration,
        ok=ok,
        errors=sum(error_codes.values()),
        error_codes=error_codes,
        p50_ms=1e3 * _percentile(latencies, 0.50),
        p90_ms=1e3 * _percentile(latencies, 0.90),
        p99_ms=1e3 * _percentile(latencies, 0.99),
        max_ms=1e3 * (latencies[-1] if latencies else 0.0),
        server_stats=server_stats,
        server_telemetry=server_telemetry,
    )
