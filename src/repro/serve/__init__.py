"""repro.serve — the asyncio placement service.

A JSONL-over-TCP daemon that exposes the streaming placement engine as
a network service: clients submit ``arrive``/``depart``/``advance``/
``stats`` requests and receive placement decisions (which bin, whether
it was freshly opened) as replies.  The moving pieces:

- :mod:`repro.serve.protocol` — the versioned wire schema, strict
  validation, structured error replies;
- :mod:`repro.serve.shard` — worker shards, each owning one placement
  kernel behind a bounded queue, consistent-hash routed;
- :mod:`repro.serve.batcher` — micro-batching of near-simultaneous
  arrivals (flush on size or age);
- :mod:`repro.serve.server` — the daemon: backpressure, graceful
  drain with per-shard v2 checkpoints, obs/ledger integration;
- :mod:`repro.serve.transport` — the network seam: real TCP by
  default, or the chaos harness's simulated fault-injecting net
  (:mod:`repro.testkit`);
- :mod:`repro.serve.telemetry` — request-scoped tracing (span trees
  with deterministic head-sampling), per-shard RED metrics, and the
  ``{"op": "telemetry"}`` admin plane behind ``repro-dbp serve top``;
- :mod:`repro.serve.client` — a pipelined async client;
- :mod:`repro.serve.loadgen` — an open-loop load generator with
  latency percentiles;
- :mod:`repro.serve.parity` — the correctness anchor: a single-shard
  server's decisions are bit-identical to batch ``simulate()``.

See ``docs/serving.md`` for the protocol spec and lifecycle, and
``docs/testing.md`` for the chaos-testing story built on these seams.
"""

from .batcher import MicroBatcher
from .client import PlacementClient
from .loadgen import WORKLOADS, LoadReport, make_workload, run_loadgen
from .parity import (
    ServiceParityReport,
    check_service_parity,
    service_parity_suite,
)
from .protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE_ERROR_CODES,
    ProtocolError,
    Request,
    error_reply,
    ok_reply,
    parse_request,
)
from .server import PlacementServer, ServeConfig
from .shard import HashRing, PlacementShard, stable_hash
from .telemetry import (
    BATCH_SIZE_EDGES,
    PHASES,
    GatedNarrator,
    RequestContext,
    ServiceTelemetry,
    ShardTelemetry,
    render_service_prometheus,
)
from .transport import TcpTransport, Transport

__all__ = [
    "BATCH_SIZE_EDGES",
    "ERROR_CODES",
    "OPS",
    "PHASES",
    "PROTOCOL_VERSION",
    "RETRYABLE_ERROR_CODES",
    "GatedNarrator",
    "HashRing",
    "LoadReport",
    "MicroBatcher",
    "PlacementClient",
    "PlacementServer",
    "PlacementShard",
    "ProtocolError",
    "Request",
    "RequestContext",
    "ServeConfig",
    "ServiceParityReport",
    "ServiceTelemetry",
    "ShardTelemetry",
    "TcpTransport",
    "Transport",
    "WORKLOADS",
    "check_service_parity",
    "error_reply",
    "make_workload",
    "ok_reply",
    "parse_request",
    "render_service_prometheus",
    "run_loadgen",
    "service_parity_suite",
    "stable_hash",
]
