"""SimNet: an in-process, fault-injecting, deterministic network.

Implements the :class:`repro.serve.transport.Transport` seam with **no
sockets at all**: a "connection" is a pair of one-way pipes, each
feeding a real :class:`asyncio.StreamReader` through the event loop's
timer queue.  Because delivery happens via ``call_later`` on a
:class:`~repro.testkit.clock.SimLoop`, the entire network — latency,
loss, reordering, resets — lives on the virtual clock and is a pure
function of the seed.

Faults are injected **per write** (the service writes one JSONL frame
per ``write()`` on the client side, and coalesced frame runs on the
server side), drawn from one seeded :class:`random.Random`:

``drop``
    the frame silently vanishes (the classic lost ack);
``delay``
    the frame arrives up to ``delay_s`` later; FIFO order is preserved
    (like TCP) unless ``reorder`` fires;
``reorder``
    the frame is held back so frames written *after* it arrive first;
``truncate``
    a prefix of the frame arrives, then the connection dies mid-line
    (what a crashed peer looks like on the wire);
``disconnect``
    the connection is reset without delivering the frame.

The active :class:`SimNetPolicy` can be swapped at any virtual time
(:meth:`SimNet.set_policy`), which is how a :class:`FaultPlan` opens
and closes network-degradation windows.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..serve.transport import ConnectionHandler

__all__ = ["SimNet", "SimNetPolicy"]

#: where SimNet's port allocator starts when asked for port 0
_BASE_PORT = 40000


@dataclass(frozen=True)
class SimNetPolicy:
    """Per-frame fault probabilities (all default to a perfect network)."""

    drop: float = 0.0
    delay: float = 0.0  #: probability a frame is delayed at all
    delay_s: float = 0.05  #: max added latency when ``delay`` fires
    reorder: float = 0.0
    truncate: float = 0.0
    disconnect: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: dict) -> "SimNetPolicy":
        return cls(**{k: float(obj.get(k, 0.0)) for k in (
            "drop", "delay", "delay_s", "reorder", "truncate", "disconnect"
        )})


#: the no-fault policy frames are delivered under between windows
PERFECT = SimNetPolicy()


class _SimConnection:
    """One bidirectional connection: two pipes sharing a fate."""

    def __init__(self, net: "SimNet") -> None:
        self.net = net
        self.alive = True
        self.pipes: List["_SimPipe"] = []

    def kill(self) -> None:
        """Abrupt reset: both directions fail with ConnectionResetError."""
        if not self.alive:
            return
        self.alive = False
        for pipe in self.pipes:
            pipe.reset()


class _Eof:
    """Queue sentinel: graceful end-of-stream for one pipe."""


class _Reset:
    """Queue sentinel: the connection dies when this reaches the head."""


_EOF = _Eof()
_RESET = _Reset()


class _SimPipe:
    """One direction of a connection: writer bytes → peer's reader.

    In-order delivery is **structural**, not timer-based: frames (and
    EOF/reset markers) join a FIFO queue at write time, and each
    scheduled callback pops the queue's head.  ``call_at`` ties at equal
    virtual times therefore cannot swap frames — the event loop's timer
    heap is not stable for equal deadlines, so ordering must never
    depend on it.  Only the ``reorder`` fault bypasses the queue.
    """

    def __init__(self, conn: _SimConnection) -> None:
        self.conn = conn
        self.reader = asyncio.StreamReader()
        self._last_when = 0.0  # FIFO floor for in-order delivery
        self._eof_sent = False
        self._eof_fed = False
        self._pending: Deque[Union[bytes, _Eof, _Reset]] = deque()

    # ------------------------------------------------------------------ #
    # Write path (fault injection lives here)
    # ------------------------------------------------------------------ #
    def write(self, data: bytes) -> None:
        if not data or self._eof_sent or not self.conn.alive:
            return
        net = self.conn.net
        rng = net.rng
        policy = net.policy
        loop = asyncio.get_event_loop()
        now = loop.time()
        if policy.drop and rng.random() < policy.drop:
            net.frames_dropped += 1
            return
        if policy.disconnect and rng.random() < policy.disconnect:
            net.connections_reset += 1
            self.conn.kill()
            return
        if policy.truncate and rng.random() < policy.truncate:
            # deliver a strict prefix, then die mid-line
            cut = rng.randrange(1, len(data)) if len(data) > 1 else 1
            net.frames_truncated += 1
            self._schedule(loop, now, data[:cut])
            # the reset must arrive *after* the prefix
            self._schedule(loop, now, _RESET)
            return
        delay = 0.0
        if policy.delay and rng.random() < policy.delay:
            delay = rng.uniform(0.0, policy.delay_s)
            net.frames_delayed += 1
        if policy.reorder and rng.random() < policy.reorder:
            # hold this frame back *without* raising the FIFO floor, so
            # frames written later may overtake it
            extra = rng.uniform(0.0, policy.delay_s or 0.01)
            net.frames_reordered += 1
            when = now + delay + extra
            loop.call_at(when, self._deliver, data)
            return
        self._schedule(loop, now, data, delay)

    def _schedule(self, loop, now: float, item,
                  delay: float = 0.0) -> None:
        when = max(now + delay, self._last_when)  # TCP never reorders
        self._last_when = when
        self._pending.append(item)
        loop.call_at(when, self._pump)

    def _pump(self) -> None:
        if not self._pending:  # pragma: no cover - defensive
            return
        item = self._pending.popleft()
        if isinstance(item, _Reset):
            self.conn.kill()
        elif isinstance(item, _Eof):
            self._feed_eof()
        else:
            self._deliver(item)

    def _deliver(self, data: bytes) -> None:
        if self.conn.alive and not self._eof_fed:
            self.reader.feed_data(data)

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Graceful close of this direction (peer sees EOF)."""
        if not self._eof_sent and self.conn.alive:
            self._eof_sent = True
            loop = asyncio.get_event_loop()
            self._schedule(loop, loop.time(), _EOF)

    def _feed_eof(self) -> None:
        if self.conn.alive and not self._eof_fed:
            self._eof_fed = True
            try:
                self.reader.feed_eof()
            except AssertionError:  # pragma: no cover - already reset
                pass

    def reset(self) -> None:
        self._eof_fed = True  # no further feed_data after the reset
        self.reader.set_exception(
            ConnectionResetError("simulated connection reset")
        )
        # Subtle: a reader task that feed_data() already made runnable
        # re-enters its wait *without* re-checking the exception
        # (StreamReader.readuntil only checks on entry), so it would
        # block forever.  Feeding EOF too makes that path raise
        # IncompleteReadError instead; the next read sees the exception.
        try:
            self.reader.feed_eof()
        except (AssertionError, RuntimeError):  # pragma: no cover
            pass


class _SimWriter:
    """The stream-writer subset the service uses, over a :class:`_SimPipe`."""

    def __init__(self, pipe: _SimPipe) -> None:
        self._pipe = pipe

    def write(self, data: bytes) -> None:
        self._pipe.write(data)

    async def drain(self) -> None:
        if not self._pipe.conn.alive:
            raise ConnectionResetError("simulated connection reset")
        await asyncio.sleep(0)  # a real drain yields to the loop

    def close(self) -> None:
        self._pipe.close()

    def is_closing(self) -> bool:
        return self._pipe._eof_sent or not self._pipe.conn.alive

    async def wait_closed(self) -> None:
        await asyncio.sleep(0)

    def get_extra_info(self, name: str, default=None):  # pragma: no cover
        return default


class _SimServerHandle:
    """A SimNet listener (the transport's ``ServerHandle``)."""

    def __init__(self, net: "SimNet", port: int) -> None:
        self._net = net
        self._port = port

    @property
    def port(self) -> int:
        return self._port

    def close(self) -> None:
        self._net._listeners.pop(self._port, None)

    async def wait_closed(self) -> None:
        await asyncio.sleep(0)


class SimNet:
    """The simulated network (a :class:`~repro.serve.transport.Transport`).

    One instance is one "universe": a seeded RNG, a mutable fault
    policy, a port namespace, and counters of every fault actually
    injected (so a chaos report can say *what happened*, not just what
    was configured).
    """

    def __init__(
        self, *, seed: int = 0, policy: Optional[SimNetPolicy] = None
    ) -> None:
        self.rng = random.Random(seed)
        self.policy = policy if policy is not None else PERFECT
        self._listeners: Dict[int, ConnectionHandler] = {}
        self._next_port = _BASE_PORT
        self._connections: List[_SimConnection] = []
        self._handler_tasks: List[asyncio.Task] = []
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_reordered = 0
        self.frames_truncated = 0
        self.connections_reset = 0

    # ------------------------------------------------------------------ #
    # Fault-window control (driven by the FaultPlan at virtual times)
    # ------------------------------------------------------------------ #
    def set_policy(self, policy: SimNetPolicy) -> None:
        self.policy = policy

    def clear_policy(self) -> None:
        self.policy = PERFECT

    def fault_counts(self) -> dict:
        return {
            "frames_dropped": self.frames_dropped,
            "frames_delayed": self.frames_delayed,
            "frames_reordered": self.frames_reordered,
            "frames_truncated": self.frames_truncated,
            "connections_reset": self.connections_reset,
        }

    # ------------------------------------------------------------------ #
    # Transport protocol
    # ------------------------------------------------------------------ #
    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> _SimServerHandle:
        if port == 0:
            port = self._next_port
            self._next_port += 1
        if port in self._listeners:
            raise OSError(f"simulated port {port} already in use")
        self._listeners[port] = handler
        return _SimServerHandle(self, port)

    async def open_connection(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, _SimWriter]:
        handler = self._listeners.get(port)
        if handler is None:
            raise ConnectionRefusedError(
                f"no simulated listener on port {port}"
            )
        conn = _SimConnection(self)
        c2s = _SimPipe(conn)  # client writes → server reads
        s2c = _SimPipe(conn)  # server writes → client reads
        conn.pipes = [c2s, s2c]
        self._connections.append(conn)
        task = asyncio.get_event_loop().create_task(
            handler(c2s.reader, _SimWriter(s2c)),
            name=f"simnet-conn-{len(self._connections)}",
        )
        self._handler_tasks.append(task)
        return s2c.reader, _SimWriter(c2s)

    def kill_all_connections(self) -> None:
        """Reset every live connection (a network-wide blip)."""
        for conn in self._connections:
            conn.kill()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimNet(listeners={sorted(self._listeners)}, "
            f"conns={len(self._connections)}, faults={self.fault_counts()})"
        )
