"""repro.testkit — deterministic simulation testing for the service.

A VOPR/Jepsen-style harness that runs the **full**
:mod:`repro.serve` stack — server, shards, micro-batchers, clients —
inside one process on a **virtual clock** with **no real sockets**:

- :mod:`repro.testkit.clock` — :class:`SimLoop`, an asyncio event loop
  whose ``time()`` is simulated: sleeps complete instantly by jumping
  the clock to the next timer, so a "30 second" chaos schedule runs in
  milliseconds and two runs with the same seed interleave identically;
- :mod:`repro.testkit.simnet` — :class:`SimNet`, an in-process
  transport (the :class:`repro.serve.transport.Transport` seam) whose
  seeded fault policy drops, delays, reorders and truncates frames and
  kills connections;
- :mod:`repro.testkit.faults` — :class:`FaultPlan`, the declarative
  JSON-serializable schedule of what goes wrong when: shard crashes
  (including mid-batch), recoveries, checkpoint/restart cycles, network
  degradation windows, shard stalls (overload);
- :mod:`repro.testkit.chaos_client` — :class:`ChaosClient`, a
  closed-loop client with timeouts, exponential backoff and seq-stable
  idempotent resend, so every accepted item is applied exactly once no
  matter how often its ack is lost;
- :mod:`repro.testkit.harness` — :func:`run_chaos` executes one
  :class:`FaultPlan` end to end and returns a :class:`ChaosReport`;
- :mod:`repro.testkit.oracle` — the end-of-run checks: zero
  accepted-item loss, exactly-once application, decision/cost streams
  bit-identical to batch ``simulate()`` on the acked items, invariant
  monitors clean;
- :mod:`repro.testkit.shrink` — delta-debugging minimizer that reduces
  a failing plan to the smallest still-failing one and writes a
  replayable artifact under ``.ledger/chaos/``.

Entry points: ``repro-dbp chaos`` (CLI sweep/replay/minimize) and
``tests/chaos/`` (the pytest suite).  See ``docs/testing.md``.
"""

from .chaos_client import ChaosClient, ClientReport
from .clock import SimDeadlockError, SimLoop, sim_run
from .faults import FaultPlan, NetWindow, ShardEvent, generate_plan
from .harness import ChaosReport, run_chaos
from .oracle import OracleVerdict, check_oracles
from .shrink import minimize, write_artifact
from .simnet import SimNet, SimNetPolicy

__all__ = [
    "ChaosClient",
    "ChaosReport",
    "ClientReport",
    "FaultPlan",
    "NetWindow",
    "OracleVerdict",
    "ShardEvent",
    "SimDeadlockError",
    "SimLoop",
    "SimNet",
    "SimNetPolicy",
    "check_oracles",
    "generate_plan",
    "minimize",
    "run_chaos",
    "sim_run",
    "write_artifact",
]
