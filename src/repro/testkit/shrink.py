"""Shrinking: reduce a failing FaultPlan to its minimal core.

When a chaos run fails, the raw plan usually contains faults that have
nothing to do with the failure.  :func:`minimize` is a greedy
delta-debugger over the plan structure: it repeatedly tries to

- drop one fault event,
- drop one network window,
- shorten a stall/degradation window,
- shrink the workload (fewer items),
- remove a shard,

re-running the (fully deterministic) plan after each mutation and
keeping the mutation whenever the failure **still reproduces**.  The
result is the smallest plan this greedy descent can reach — typically
"one crash at one instant under one retry" instead of a 2-crash
3-window storm — plus the trial count.

:func:`write_artifact` persists the evidence as one JSON file under
``<ledger>/chaos/``: original plan, minimized plan, both failure lists,
and the exact replay command.  That file *is* the bug report — anyone
can re-run it with ``repro-dbp chaos --replay <file>``.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pathlib
from typing import Callable, List, Optional, Tuple

from .faults import FaultPlan

__all__ = ["minimize", "write_artifact"]


def _default_fails(plan: FaultPlan) -> Tuple[bool, List[str]]:
    from .harness import run_chaos

    report = run_chaos(plan)
    return (not report.ok, report.failures)


def _candidates(plan: FaultPlan):
    """Yield (description, mutated-plan) pairs, most aggressive first."""
    # drop whole events
    for i in range(len(plan.events)):
        smaller = copy.deepcopy(plan)
        dropped = smaller.events.pop(i)
        yield f"drop event {dropped.kind}@{dropped.at:g}", smaller
    # drop whole network windows
    for i in range(len(plan.net_windows)):
        smaller = copy.deepcopy(plan)
        smaller.net_windows.pop(i)
        yield f"drop net window {i}", smaller
    # halve the workload
    if plan.n_items > 10:
        smaller = copy.deepcopy(plan)
        smaller.n_items = max(10, plan.n_items // 2)
        yield f"n_items {plan.n_items} -> {smaller.n_items}", smaller
    # remove a shard
    if plan.shards > 1:
        smaller = copy.deepcopy(plan)
        smaller.shards = plan.shards - 1
        smaller.events = [
            e for e in smaller.events if e.shard < smaller.shards
        ]
        yield f"shards {plan.shards} -> {smaller.shards}", smaller
    # shorten windows/stalls
    for i, event in enumerate(plan.events):
        if event.duration > 0.02:
            smaller = copy.deepcopy(plan)
            smaller.events[i].duration = round(event.duration / 2, 4)
            yield f"halve {event.kind} duration", smaller
    for i, window in enumerate(plan.net_windows):
        if window.duration > 0.02:
            smaller = copy.deepcopy(plan)
            smaller.net_windows[i].duration = round(window.duration / 2, 4)
            yield f"halve net window {i}", smaller


def minimize(
    plan: FaultPlan,
    *,
    fails: Optional[Callable[[FaultPlan], Tuple[bool, List[str]]]] = None,
    max_trials: int = 64,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[FaultPlan, List[str], int]:
    """Greedily shrink ``plan`` while the failure keeps reproducing.

    Returns ``(minimal_plan, failures_of_minimal, trials_used)``.
    ``fails(plan) -> (failed, failures)`` defaults to a full
    :func:`~repro.testkit.harness.run_chaos`; tests inject cheaper
    predicates.  Deterministic end to end: same input plan, same
    minimal plan.
    """
    if fails is None:
        fails = _default_fails
    trials = 1
    failed, failures = fails(plan)
    if not failed:
        return plan, [], trials
    current, current_failures = plan, failures
    progress = True
    while progress and trials < max_trials:
        progress = False
        for note, candidate in _candidates(current):
            if trials >= max_trials:
                break
            trials += 1
            still_failed, cand_failures = fails(candidate)
            if still_failed:
                current, current_failures = candidate, cand_failures
                if log is not None:
                    log(f"shrink: kept '{note}' ({trials} trials)")
                progress = True
                break  # restart candidate generation from the new plan
    return current, current_failures, trials


def write_artifact(
    plan: FaultPlan,
    minimized: FaultPlan,
    failures: List[str],
    *,
    ledger_dir=None,
    minimized_failures: Optional[List[str]] = None,
    trials: int = 0,
) -> pathlib.Path:
    """Persist a failing plan (+ its minimal form) as a replayable file.

    Written under ``<ledger>/chaos/`` (same resolution rules as every
    ledger record: ``--ledger-dir`` flag > ``REPRO_LEDGER_DIR`` >
    ``.ledger``).  Returns the path.
    """
    from ..obs.ledger import resolve_ledger_dir

    base = resolve_ledger_dir(ledger_dir)
    out_dir = pathlib.Path(base) / "chaos"
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "kind": "chaos-failure",
        "plan": plan.to_dict(),
        "failures": list(failures),
        "minimized_plan": minimized.to_dict(),
        "minimized_failures": list(
            minimized_failures if minimized_failures is not None else failures
        ),
        "shrink_trials": trials,
        "replay": "repro-dbp chaos --replay <this file>",
    }
    digest = hashlib.sha256(
        json.dumps(payload["minimized_plan"], sort_keys=True).encode()
    ).hexdigest()[:10]
    path = out_dir / f"plan-seed{plan.seed}-{digest}.json"
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path
