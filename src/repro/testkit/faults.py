"""FaultPlan: the declarative, replayable schedule of what goes wrong.

A :class:`FaultPlan` is **self-contained**: it carries the server
configuration, the workload identity, the client's retry posture, the
network seed, and a list of timed fault events.  Running the same plan
twice produces the same run byte-for-byte (virtual clock + seeded
RNGs), which is what makes a failing plan a *bug report you can
execute* — the shrinker (:mod:`repro.testkit.shrink`) hands you the
smallest plan that still fails, and ``repro-dbp chaos --replay`` runs
it again.

Event kinds (all at virtual times, seconds from server start):

``crash``
    fail-stop a shard; with ``after_applies=n`` the crash arms a
    countdown and fires from *inside* the worker's batch loop after
    ``n`` more applies — the mid-batch window external timers can't hit;
``recover``
    rebuild the shard from its crash-instant durable image;
``stall``
    park the shard's worker for ``duration`` (an overload window — the
    queue backs up and backpressure replies flow);
``restart``
    gracefully drain the whole server (per-shard checkpoint files),
    then bring up a fresh server resumed from those checkpoints — the
    full checkpoint/restore cycle over real files.

Network degradation is expressed as :class:`NetWindow` entries — a
:class:`~repro.testkit.simnet.SimNetPolicy` active for a time window.

:func:`generate_plan` draws a randomized plan from a seed: the unit of
work of a chaos *sweep* (``repro-dbp chaos --schedules N``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import List, Optional

from .simnet import SimNetPolicy

__all__ = ["FaultPlan", "NetWindow", "ShardEvent", "generate_plan"]

#: event kinds a plan may schedule
EVENT_KINDS = ("crash", "recover", "stall", "restart")


@dataclass
class ShardEvent:
    """One timed fault against one shard (or the whole server)."""

    kind: str
    at: float
    shard: int = 0
    after_applies: Optional[int] = None  #: crash: arm mid-batch countdown
    duration: float = 0.0  #: stall: how long the worker is parked

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected {EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        obj = {"kind": self.kind, "at": self.at, "shard": self.shard}
        if self.after_applies is not None:
            obj["after_applies"] = self.after_applies
        if self.duration:
            obj["duration"] = self.duration
        return obj

    @classmethod
    def from_dict(cls, obj: dict) -> "ShardEvent":
        return cls(
            kind=obj["kind"],
            at=float(obj["at"]),
            shard=int(obj.get("shard", 0)),
            after_applies=(
                int(obj["after_applies"])
                if obj.get("after_applies") is not None else None
            ),
            duration=float(obj.get("duration", 0.0)),
        )


@dataclass
class NetWindow:
    """A network-degradation window: ``policy`` active in [at, at+duration)."""

    at: float
    duration: float
    policy: SimNetPolicy

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "duration": self.duration,
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "NetWindow":
        return cls(
            at=float(obj["at"]),
            duration=float(obj["duration"]),
            policy=SimNetPolicy.from_dict(obj.get("policy") or {}),
        )


@dataclass
class FaultPlan:
    """One complete, replayable chaos schedule (see module docstring)."""

    seed: int = 0
    # --- server under test -------------------------------------------- #
    shards: int = 2
    algorithm: str = "FirstFit"
    capacity: float = 1.0
    max_queue: int = 32
    batch_max: int = 4
    batch_delay: float = 0.002
    # --- workload ------------------------------------------------------ #
    workload: str = "uniform"  #: a :data:`repro.serve.loadgen.WORKLOADS` name
    n_items: int = 120
    send_gap: float = 0.004  #: min virtual seconds between submissions/shard
    # --- client retry posture ------------------------------------------ #
    timeout: float = 0.1  #: per-attempt reply timeout (virtual seconds)
    backoff: float = 0.01  #: initial retry backoff (doubles, capped)
    backoff_cap: float = 0.3
    max_attempts: int = 60  #: generous — the harness heals all faults
    # --- the faults ----------------------------------------------------- #
    events: List[ShardEvent] = field(default_factory=list)
    net_windows: List[NetWindow] = field(default_factory=list)
    #: deliberate bug-injection seam: run with the shard dedup cache off
    #: so lost-ack retries double-apply (the oracle must catch this)
    disable_dedup: bool = False

    # ------------------------------------------------------------------ #
    # Derived schedule geometry
    # ------------------------------------------------------------------ #
    @property
    def traffic_span(self) -> float:
        """Rough virtual duration of the submission window."""
        per_shard = -(-self.n_items // max(1, self.shards))  # ceil
        return per_shard * self.send_gap

    @property
    def heal_at(self) -> float:
        """When the harness force-heals everything still broken.

        Late enough that every scheduled fault has fired, early enough
        that retrying clients converge: after this instant all shards
        run, the network is perfect, and dedup-safe retries drain.
        """
        last_event = max(
            [e.at + e.duration for e in self.events]
            + [w.at + w.duration for w in self.net_windows]
            + [0.0]
        )
        return max(self.traffic_span, last_event) + 0.25

    def needs_checkpoint_dir(self) -> bool:
        return any(e.kind == "restart" for e in self.events)

    # ------------------------------------------------------------------ #
    # JSON round-trip (the artifact format)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "algorithm": self.algorithm,
            "capacity": self.capacity,
            "max_queue": self.max_queue,
            "batch_max": self.batch_max,
            "batch_delay": self.batch_delay,
            "workload": self.workload,
            "n_items": self.n_items,
            "send_gap": self.send_gap,
            "timeout": self.timeout,
            "backoff": self.backoff,
            "backoff_cap": self.backoff_cap,
            "max_attempts": self.max_attempts,
            "events": [e.to_dict() for e in self.events],
            "net_windows": [w.to_dict() for w in self.net_windows],
            "disable_dedup": self.disable_dedup,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "FaultPlan":
        plan = cls(
            seed=int(obj.get("seed", 0)),
            shards=int(obj.get("shards", 2)),
            algorithm=str(obj.get("algorithm", "FirstFit")),
            capacity=float(obj.get("capacity", 1.0)),
            max_queue=int(obj.get("max_queue", 32)),
            batch_max=int(obj.get("batch_max", 4)),
            batch_delay=float(obj.get("batch_delay", 0.002)),
            workload=str(obj.get("workload", "uniform")),
            n_items=int(obj.get("n_items", 120)),
            send_gap=float(obj.get("send_gap", 0.004)),
            timeout=float(obj.get("timeout", 0.25)),
            backoff=float(obj.get("backoff", 0.02)),
            backoff_cap=float(obj.get("backoff_cap", 0.5)),
            max_attempts=int(obj.get("max_attempts", 60)),
            events=[ShardEvent.from_dict(e) for e in obj.get("events", [])],
            net_windows=[
                NetWindow.from_dict(w) for w in obj.get("net_windows", [])
            ],
            disable_dedup=bool(obj.get("disable_dedup", False)),
        )
        return plan

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One human line: what this plan throws at the service."""
        kinds = [e.kind for e in self.events]
        return (
            f"seed={self.seed} {self.algorithm} shards={self.shards} "
            f"items={self.n_items} events={kinds or 'none'} "
            f"net_windows={len(self.net_windows)}"
            + (" DEDUP-DISABLED" if self.disable_dedup else "")
        )


#: algorithms the generator draws from — streaming-safe and fast
_PLAN_ALGORITHMS = ("FirstFit", "BestFit", "HybridAlgorithm")


def generate_plan(seed: int, **overrides) -> FaultPlan:
    """Draw one randomized chaos schedule from ``seed``.

    Every structural choice (shard count, which faults, when) comes
    from ``random.Random(seed)``, so a sweep over seeds is reproducible
    plan-by-plan.  ``overrides`` pin any :class:`FaultPlan` field —
    e.g. ``generate_plan(7, disable_dedup=True)`` for the
    bug-injection acceptance test.
    """
    # str seeding hashes via sha512 — stable across processes, unlike
    # tuple seeding which goes through salted hash()
    rng = random.Random(f"chaos-plan-{seed}")
    shards = rng.randint(1, 3)
    plan = FaultPlan(
        seed=seed,
        shards=shards,
        algorithm=rng.choice(_PLAN_ALGORITHMS),
        n_items=rng.randrange(80, 200),
        batch_max=rng.choice((1, 2, 4)),
        batch_delay=rng.choice((0.0, 0.001, 0.002)),
        max_queue=rng.choice((8, 16, 32)),
    )
    span = plan.traffic_span

    def when(lo: float = 0.05, hi: float = 0.9) -> float:
        return round(rng.uniform(lo * span, hi * span), 4)

    events: List[ShardEvent] = []
    for _ in range(rng.randint(0, 2)):  # crashes (some mid-batch)
        shard = rng.randrange(shards)
        crash_at = when()
        event = ShardEvent(kind="crash", at=crash_at, shard=shard)
        if rng.random() < 0.5:
            event.after_applies = rng.randint(1, 8)
        events.append(event)
        if rng.random() < 0.7:  # usually recover explicitly...
            events.append(ShardEvent(
                kind="recover", at=round(crash_at + rng.uniform(
                    0.05, max(0.1, 0.3 * span)), 4),
                shard=shard,
            ))
        # ...otherwise the harness's heal_at recovery picks it up
    if rng.random() < 0.35:  # an overload window
        events.append(ShardEvent(
            kind="stall", at=when(), shard=rng.randrange(shards),
            duration=round(rng.uniform(0.05, 0.3 * span + 0.05), 4),
        ))
    if rng.random() < 0.2:  # a full graceful restart cycle
        events.append(ShardEvent(kind="restart", at=when(0.2, 0.7)))
    windows: List[NetWindow] = []
    for _ in range(rng.randint(0, 2)):  # network degradation windows
        windows.append(NetWindow(
            at=when(0.0, 0.8),
            duration=round(rng.uniform(0.05, 0.4 * span + 0.05), 4),
            policy=SimNetPolicy(
                drop=rng.choice((0.0, 0.05, 0.15)),
                delay=rng.choice((0.0, 0.2, 0.5)),
                delay_s=rng.choice((0.005, 0.02)),
                reorder=rng.choice((0.0, 0.1)),
                truncate=rng.choice((0.0, 0.03)),
                disconnect=rng.choice((0.0, 0.03)),
            ),
        ))
    events.sort(key=lambda e: e.at)
    windows.sort(key=lambda w: w.at)
    plan.events = events
    plan.net_windows = windows
    for key, value in overrides.items():
        if not hasattr(plan, key):
            raise TypeError(f"FaultPlan has no field {key!r}")
        setattr(plan, key, value)
    return plan
