"""Virtual-time asyncio: the event loop the chaos harness runs on.

:class:`SimLoop` is a :class:`asyncio.SelectorEventLoop` whose notion
of time is **simulated**: ``loop.time()`` returns a virtual clock that
only moves when the loop would otherwise block.  When every task is
waiting on a timer, the loop *jumps* the clock to the earliest deadline
instead of sleeping — ``await asyncio.sleep(30)`` completes in
microseconds of real time, in exactly the order the deadlines dictate.
Everything built on the loop clock (``sleep``, ``wait_for``,
``call_later``, the micro-batcher's age flush, the chaos schedule's
fault times) therefore runs deterministically: same seed, same
interleaving, byte-for-byte.

Because the simulated network (:mod:`repro.testkit.simnet`) delivers
bytes via ``call_later`` rather than file descriptors, the loop never
needs to poll real sockets; if it ever would block with *no* timer
pending, the simulation is genuinely stuck (every task waiting on an
event nobody will set) and :class:`SimDeadlockError` is raised rather
than hanging the test run.

Use :func:`sim_run` — the virtual-time counterpart of
:func:`asyncio.run` — to execute a coroutine on a fresh ``SimLoop``.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Optional

__all__ = ["SimDeadlockError", "SimLoop", "sim_run"]


class SimDeadlockError(RuntimeError):
    """The simulation blocked forever: no ready task and no timer."""


class _SimSelector(selectors.SelectSelector):
    """A selector that never blocks: timeouts advance the virtual clock.

    The loop computes ``timeout`` as the gap to its earliest timer (or
    ``None`` when there are no timers).  Instead of sleeping we credit
    that gap to the owning :class:`SimLoop`'s clock and poll any real
    file descriptors (the loop's self-pipe) without waiting.
    """

    def __init__(self, loop: "SimLoop") -> None:
        super().__init__()
        self._sim_loop = loop

    def select(self, timeout: Optional[float] = None):
        if timeout is None:
            # no timer to jump to: only the self-pipe could wake us, and
            # in-process simulations never signal across threads
            raise SimDeadlockError(
                "simulation deadlock: every task is blocked and no timer "
                "is pending (a future nobody will resolve?)"
            )
        if timeout > 0:
            self._sim_loop._sim_time += timeout
        return super().select(0)


class SimLoop(asyncio.SelectorEventLoop):
    """An event loop on simulated time (see module docstring)."""

    def __init__(self) -> None:
        super().__init__(selector=_SimSelector(self))
        self._sim_time = 0.0

    def time(self) -> float:
        return self._sim_time

    # asyncio resolves timer handles against self.time(), so overriding
    # time() alone is enough: call_later/call_at/sleep all inherit it.

    def advance(self, delta: float) -> None:
        """Manually move the clock (rarely needed: sleeps auto-advance)."""
        if delta < 0:
            raise ValueError(f"cannot rewind the clock by {delta}")
        self._sim_time += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimLoop t={self._sim_time:.6f} running={self.is_running()}>"


def sim_run(coro, *, loop: Optional[SimLoop] = None):
    """Run ``coro`` to completion on a virtual-time loop.

    The :func:`asyncio.run` of the testkit: creates a fresh
    :class:`SimLoop` (or uses ``loop``), installs it as the current
    loop, runs the coroutine, then cancels stragglers and closes the
    loop.  Wall-clock duration is bounded by *work*, never by simulated
    sleeps.
    """
    own = loop is None
    if own:
        loop = SimLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        try:
            _cancel_pending(loop)
        finally:
            asyncio.set_event_loop(None)
            if own:
                loop.close()


def _cancel_pending(loop: SimLoop) -> None:
    pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
    for task in pending:
        task.cancel()
    if pending:
        loop.run_until_complete(
            asyncio.gather(*pending, return_exceptions=True)
        )
