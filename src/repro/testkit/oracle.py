"""End-of-run oracles: what must be true after *any* fault schedule.

A chaos run is judged only after the harness heals every fault and the
retrying client settles.  Then, per shard:

**Exactly-once** — the acked records' server-assigned ``uid``s must be
exactly ``0..n-1`` (uids are the shard's apply order, so a gap means an
item was applied whose ack was lost *and never re-claimed* — loss — and
the shard's ``items`` counter exceeding the acked count means a retry
was applied twice — the dedup bug);

**Decision/cost parity** — replaying the acked items (in apply order)
through batch :func:`~repro.core.simulation.simulate` must reproduce
the served decision stream **bit-identically**: same bin per item, same
freshly-opened flags, same final cost (within the engine-parity
tolerance), same ``max_open`` and bins-opened count.  Crashes,
restores, resends and reorderings may delay an item — they may never
change where it lands;

**Invariants** — the replay runs under the
:class:`~repro.obs.invariants.InvariantMonitor`, so the theory-level
invariants (cost identity, span/demand bounds, Table-1 ratios) hold on
the surviving stream too.

Client-level checks: no item abandoned, no unexpected terminal refusal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.instance import Instance
from ..core.simulation import simulate
from ..core.store import ItemStore
from ..engine.parity import COST_TOL
from ..obs.invariants import InvariantMonitor
from .chaos_client import ClientReport

__all__ = ["OracleVerdict", "check_oracles"]


@dataclass
class OracleVerdict:
    """The run's pass/fail plus every reason it failed."""

    ok: bool
    failures: List[str] = field(default_factory=list)
    per_shard: List[dict] = field(default_factory=list)
    invariant_violations: int = 0

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "per_shard": list(self.per_shard),
            "invariant_violations": self.invariant_violations,
        }


def check_oracles(
    plan,
    report: ClientReport,
    stats_reply: dict,
    *,
    registry=None,
) -> OracleVerdict:
    """Judge one healed chaos run (see module docstring).

    ``stats_reply`` is the server's final ``stats`` reply, taken after
    an ``advance`` past the last departure — so per-shard costs are
    final, exactly like the parity harness measures them.
    """
    if registry is None:
        from ..parallel import _registry

        registry = _registry()
    factory = registry[plan.algorithm]
    failures: List[str] = []
    verdict = OracleVerdict(ok=True)

    # ------------------------------------------------------------------ #
    # Client-level: every item settled with an ack
    # ------------------------------------------------------------------ #
    if report.abandoned:
        failures.append(
            f"{report.abandoned} item(s) abandoned after max_attempts — "
            "the service never settled them"
        )
    for refusal in report.terminal:
        failures.append(f"unexpected terminal refusal: {refusal}")
    if report.sent != len(report.acked) + report.abandoned + len(
        report.terminal
    ):
        failures.append(
            f"bookkeeping mismatch: sent={report.sent} != acked="
            f"{len(report.acked)} + abandoned={report.abandoned} + "
            f"terminal={len(report.terminal)}"
        )

    per_shard_stats = {
        int(s["shard"]): s for s in stats_reply.get("per_shard", [])
    }

    # ------------------------------------------------------------------ #
    # Per shard: exactly-once + bit-identical replay
    # ------------------------------------------------------------------ #
    for shard in range(plan.shards):
        recs = sorted(
            (r for r in report.acked if r.shard == shard),
            key=lambda r: r.uid,
        )
        stats = per_shard_stats.get(shard, {})
        detail = {
            "shard": shard,
            "acked": len(recs),
            "applied": stats.get("items"),
        }
        uids = [r.uid for r in recs]
        if uids != list(range(len(recs))):
            failures.append(
                f"shard {shard}: acked uids are not exactly 0..n-1 "
                f"(n={len(recs)}) — an applied item was lost or an item "
                f"was applied more than once; uids={uids[:20]}..."
                if len(uids) > 20 else
                f"shard {shard}: acked uids are not exactly 0..n-1 "
                f"(n={len(recs)}): {uids}"
            )
        applied = stats.get("items")
        if applied is not None and int(applied) != len(recs):
            failures.append(
                f"shard {shard}: server applied {applied} item(s) but the "
                f"client holds {len(recs)} ack(s) — "
                + ("double-apply (dedup failure)"
                   if int(applied) > len(recs) else "accepted-item loss")
            )
        # replay the acked stream through batch simulate(): apply order
        # (uid order) has nondecreasing arrivals because the client is
        # closed-loop per shard, so it is a valid instance
        store = ItemStore()
        for rec in recs:
            store.append(rec.arrival, rec.departure, rec.size)
        monitor = InvariantMonitor(
            capacity=plan.capacity, algorithm=plan.algorithm
        )
        batch = simulate(
            factory(),
            Instance.from_store(store),
            capacity=plan.capacity,
            listener=monitor,
        )
        monitor.finalize()
        if not monitor.ok:
            verdict.invariant_violations += len(monitor.violations)
            failures.append(
                f"shard {shard}: {len(monitor.violations)} invariant "
                f"violation(s) on the replayed stream"
            )
        decisions = [r.bin for r in recs]
        expected = [batch.assignment.get(i) for i in range(len(recs))]
        if decisions != expected:
            first = next(
                (i for i, (a, b) in enumerate(zip(decisions, expected))
                 if a != b), None,
            )
            failures.append(
                f"shard {shard}: decision stream diverges from simulate() "
                f"at item {first}: served bin {decisions[first]} vs "
                f"batch bin {expected[first]}"
            )
        first_member = {
            rec.uid: rec.item_uids[0] for rec in batch.bins if rec.item_uids
        }
        opened = [r.opened for r in recs]
        expected_opened = [
            first_member.get(batch.assignment.get(i)) == i
            for i in range(len(recs))
        ]
        if opened != expected_opened:
            failures.append(
                f"shard {shard}: freshly-opened flags diverge from "
                "simulate()"
            )
        cost = stats.get("cost")
        detail.update(
            served_cost=cost,
            batch_cost=batch.cost,
            served_max_open=stats.get("max_open"),
            batch_max_open=batch.max_open,
            served_bins_opened=stats.get("bins_opened"),
            batch_bins_opened=len(batch.bins),
        )
        if cost is None or abs(float(cost) - batch.cost) > COST_TOL:
            failures.append(
                f"shard {shard}: served cost {cost} != batch cost "
                f"{batch.cost:.9g} (tol {COST_TOL})"
            )
        if stats.get("max_open") != batch.max_open:
            failures.append(
                f"shard {shard}: max_open {stats.get('max_open')} != "
                f"batch {batch.max_open}"
            )
        if stats.get("bins_opened") != len(batch.bins):
            failures.append(
                f"shard {shard}: bins_opened {stats.get('bins_opened')} "
                f"!= batch {len(batch.bins)}"
            )
        verdict.per_shard.append(detail)

    verdict.failures = failures
    verdict.ok = not failures
    return verdict
