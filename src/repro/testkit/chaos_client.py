"""ChaosClient: a retrying, idempotent client that never loses an item.

The client the chaos harness drives traffic with.  It is deliberately
the *opposite* posture of :mod:`repro.serve.loadgen`'s open-loop
generator: **closed-loop per shard** (item *k+1* is not sent until item
*k* is settled), because per-shard submission order is the kernel's
hard precondition and a retry racing a later item would manufacture
``out-of-order`` rejections no real well-behaved client would see.

Retry discipline (the crux of exactly-once):

- every item gets a **stable** ``(client, seq)`` identity that never
  changes across resends — the server's dedup key;
- a reply timeout, a dead connection, or a retryable structured error
  (``overloaded``/``unavailable``/``draining``) triggers a resend after
  seeded-jitter exponential backoff (all on the virtual clock);
- a resend of a request whose ack was lost hits the shard's dedup
  cache and returns the original reply verbatim — the item is applied
  **once**, acked **once-or-more**, lost **never**.

Every acked arrive is recorded (shard, uid, bin, opened + the item's
coordinates) — the raw material for the oracle's replay against batch
``simulate()``.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..serve.client import PlacementClient
from ..serve.loadgen import shard_affine_tenants
from ..serve.protocol import RETRYABLE_ERROR_CODES

__all__ = ["AckRecord", "ChaosClient", "ClientReport"]

#: codes worth resending, from the client's point of view: the server's
#: backpressure/crash codes plus ``draining`` (a restart in progress)
_RETRYABLE = frozenset(RETRYABLE_ERROR_CODES) | {"draining"}


@dataclass
class AckRecord:
    """One acknowledged arrive: what the server promised about an item."""

    shard: int
    uid: int  #: per-shard apply order (the oracle's sort key)
    bin: int
    opened: bool
    id: str
    arrival: float
    departure: float
    size: float
    attempts: int  #: how many sends it took to land the ack

    def to_dict(self) -> dict:
        return {
            "shard": self.shard, "uid": self.uid, "bin": self.bin,
            "opened": self.opened, "id": self.id, "arrival": self.arrival,
            "departure": self.departure, "size": self.size,
            "attempts": self.attempts,
        }


@dataclass
class ClientReport:
    """What the traffic phase did and saw."""

    sent: int = 0  #: distinct items submitted
    resends: int = 0  #: extra attempts beyond the first send
    timeouts: int = 0
    conn_errors: int = 0
    reconnects: int = 0
    retry_replies: int = 0  #: structured retryable errors received
    acked: List[AckRecord] = field(default_factory=list)
    terminal: List[dict] = field(default_factory=list)  #: unexpected refusals
    abandoned: int = 0  #: items that exhausted max_attempts (must be 0)

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "resends": self.resends,
            "timeouts": self.timeouts,
            "conn_errors": self.conn_errors,
            "reconnects": self.reconnects,
            "retry_replies": self.retry_replies,
            "acked": len(self.acked),
            "terminal": list(self.terminal),
            "abandoned": self.abandoned,
        }


class ChaosClient:
    """Drive one workload through the service under faults (see above)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        transport,
        plan,
        items,
    ) -> None:
        self.host = host
        self.port = port
        self.transport = transport
        self.plan = plan
        #: arrival-ordered (id, arrival, departure, size) tuples
        self.items = items
        self.report = ClientReport()
        self._tenants = shard_affine_tenants(plan.shards, plan.shards)

    async def run(self) -> ClientReport:
        """Submit every item (closed-loop per shard); return the report."""
        await asyncio.gather(
            *(self._shard_sender(j) for j in range(self.plan.shards))
        )
        return self.report

    # ------------------------------------------------------------------ #
    # One closed loop per shard
    # ------------------------------------------------------------------ #
    async def _shard_sender(self, shard: int) -> None:
        plan = self.plan
        tenant = self._tenants[shard]
        client_id = f"chaos-{shard}"
        rng = random.Random(f"chaos-client-{plan.seed}-{shard}")
        loop = asyncio.get_running_loop()
        start = loop.time()
        client: Optional[PlacementClient] = None
        # round-robin partition keeps each shard's sub-stream
        # nondecreasing in arrival time (items are arrival-ordered)
        mine = self.items[shard::plan.shards]
        for k, (item_id, arrival, departure, size) in enumerate(mine):
            target = start + k * plan.send_gap
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            request = {
                "op": "arrive",
                "id": item_id,
                "tenant": tenant,
                "client": client_id,
                "arrival": arrival,
                "departure": departure,
                "size": size,
            }
            seq = f"{client_id}:{k}"  # stable across resends — dedup key
            self.report.sent += 1
            client = await self._settle(
                client, request, seq, shard, rng, attempts_meta=(k,)
            )
        if client is not None:
            await client.aclose()

    async def _settle(
        self, client, request, seq, shard, rng, *, attempts_meta
    ) -> Optional[PlacementClient]:
        """Send (and resend) one request until it is settled.

        Returns the (possibly replaced) connection.  "Settled" means an
        ok reply (recorded), a terminal structured error (recorded), or
        — pathologically — ``max_attempts`` exhausted (counted in
        ``abandoned``; the oracle treats that as a failed run).
        """
        plan = self.plan
        for attempt in range(plan.max_attempts):
            if attempt:
                self.report.resends += 1
                await asyncio.sleep(self._backoff(attempt, rng))
            if client is None:
                client = await self._reconnect(rng)
                if client is None:
                    continue  # refused — back off and retry
            future = None
            try:
                future = client.submit(request, seq=seq)
                await client.drain_writes()
                reply = await asyncio.wait_for(future, plan.timeout)
            except asyncio.TimeoutError:
                self.report.timeouts += 1
                continue  # resend on the same connection, same seq
            except (ConnectionError, asyncio.IncompleteReadError):
                self.report.conn_errors += 1
                if future is not None and not future.done():
                    # drain died after submit: the future is orphaned and
                    # will be failed by the reader — mark it retrieved
                    future.add_done_callback(
                        lambda f: f.cancelled() or f.exception()
                    )
                await client.aclose()
                client = None
                continue
            if reply.get("ok"):
                self.report.acked.append(AckRecord(
                    shard=int(reply.get("shard", shard)),
                    uid=int(reply["uid"]),
                    bin=int(reply["bin"]),
                    opened=bool(reply.get("opened", False)),
                    id=str(request["id"]),
                    arrival=float(request["arrival"]),
                    departure=float(request["departure"]),
                    size=float(request["size"]),
                    attempts=attempt + 1,
                ))
                return client
            code = reply.get("error")
            if code in _RETRYABLE:
                self.report.retry_replies += 1
                retry_after = reply.get("retry_after")
                if retry_after:
                    await asyncio.sleep(float(retry_after))
                continue
            # terminal: the request itself was refused — resending would
            # fail identically, so record it and move on
            self.report.terminal.append(dict(reply, seq=seq))
            return client
        self.report.abandoned += 1
        return client

    async def _reconnect(self, rng) -> Optional[PlacementClient]:
        try:
            client = await PlacementClient.connect(
                self.host, self.port,
                timeout=self.plan.timeout, transport=self.transport,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.report.conn_errors += 1
            return None
        self.report.reconnects += 1
        return client

    def _backoff(self, attempt: int, rng) -> float:
        plan = self.plan
        base = min(plan.backoff * (2 ** (attempt - 1)), plan.backoff_cap)
        return base * (0.5 + rng.random() / 2)  # seeded jitter
