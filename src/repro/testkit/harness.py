"""The chaos harness: run one FaultPlan end to end, deterministically.

:func:`run_chaos` is the single entry point: it builds a fresh
simulated universe — a :class:`~repro.testkit.clock.SimLoop`, a seeded
:class:`~repro.testkit.simnet.SimNet`, a real
:class:`~repro.serve.server.PlacementServer` on that transport and
clock — schedules every event of the plan at its virtual time, drives
the workload through a :class:`~repro.testkit.chaos_client.ChaosClient`,
**heals** everything at ``plan.heal_at`` (recover crashed shards, clear
stalls, restore the perfect network) so retries can settle, advances
the service clock past the last departure, and hands the survivors to
the oracle.

The run is a pure function of the plan: no wall clock, no sockets, no
process-global state.  Two calls with the same plan produce the same
:class:`ChaosReport`, which is what makes shrinking and replay honest.
"""

from __future__ import annotations

import asyncio
import pathlib
import tempfile
from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

from ..serve.client import PlacementClient
from ..serve.server import PlacementServer, ServeConfig
from .chaos_client import ChaosClient, ClientReport
from .clock import SimLoop, sim_run
from .faults import FaultPlan
from .oracle import OracleVerdict, check_oracles
from .simnet import PERFECT, SimNet

__all__ = ["ChaosReport", "run_chaos"]

#: attempts the epilogue (advance/stats after heal) will retry — the
#: network is perfect by then, so a couple of reconnects suffice
_EPILOGUE_ATTEMPTS = 20


@dataclass
class ChaosReport:
    """Everything one chaos run produced (JSON-friendly)."""

    plan: FaultPlan
    verdict: OracleVerdict
    client: ClientReport
    net_faults: dict = field(default_factory=dict)
    events_fired: List[str] = field(default_factory=list)
    virtual_duration: float = 0.0  #: how much simulated time elapsed
    #: service telemetry snapshot (``run_chaos(..., telemetry=True)``):
    #: RED counters survive graceful restarts because the harness owns
    #: the ServiceTelemetry and hands it to every server incarnation
    telemetry: Optional[dict] = None
    #: sampled span trees as JSONL lines (virtual-clock timestamps, so
    #: two replays of one plan produce byte-identical lists)
    trace_lines: List[str] = field(default_factory=list)
    #: stack-sampler stats (``run_chaos(..., sampler=...)``): the shared
    #: sampler rides across graceful restarts like the telemetry does.
    #: Wall-clock, not virtual-clock — reported but never asserted on.
    profile: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.verdict.ok

    @property
    def failures(self) -> List[str]:
        return self.verdict.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "plan": self.plan.to_dict(),
            "verdict": self.verdict.to_dict(),
            "client": self.client.to_dict(),
            "net_faults": dict(self.net_faults),
            "events_fired": list(self.events_fired),
            "virtual_duration": self.virtual_duration,
            "telemetry": self.telemetry,
            "trace_lines": list(self.trace_lines),
            "profile": self.profile,
        }

    def summary(self) -> str:
        flag = "ok" if self.ok else "FAIL"
        head = (
            f"[{flag}] {self.plan.describe()} — acked "
            f"{len(self.client.acked)}/{self.client.sent}, "
            f"resends={self.client.resends}, "
            f"net={self.net_faults}, t={self.virtual_duration:.2f}s(virtual)"
        )
        if self.ok:
            return head
        return head + "".join(f"\n    - {f}" for f in self.failures)


def run_chaos(
    plan: FaultPlan,
    *,
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None,
    registry=None,
    telemetry: bool = False,
    sampler=None,
) -> ChaosReport:
    """Execute ``plan`` on a fresh virtual-time universe (see above).

    ``telemetry=True`` attaches a full-sampling
    :class:`~repro.serve.telemetry.ServiceTelemetry` on the virtual
    clock (seeded from the plan) and returns its snapshot plus the
    sampled span JSONL in the report — a pure function of the plan,
    like everything else here.

    ``sampler`` (a :class:`~repro.obs.prof.StackSampler`) is shared
    across every server incarnation the plan spawns, exactly like the
    telemetry: the harness starts it, hands it to each restart, stops
    it at the end, and reports its stats.  Stack samples run on the
    *wall* clock (real thread, real frames), so the profile is genuine
    CPU attribution but — unlike everything else in the report — not a
    pure function of the plan.
    """
    if plan.needs_checkpoint_dir() and checkpoint_dir is None:
        with tempfile.TemporaryDirectory(prefix="chaos-ckpt-") as tmp:
            return run_chaos(
                plan,
                checkpoint_dir=tmp,
                registry=registry,
                telemetry=telemetry,
                sampler=sampler,
            )
    return sim_run(
        _run_plan(plan, checkpoint_dir, registry, telemetry, sampler)
    )


async def _run_plan(
    plan: FaultPlan,
    checkpoint_dir,
    registry,
    telemetry: bool = False,
    sampler=None,
) -> ChaosReport:
    loop = asyncio.get_running_loop()
    assert isinstance(loop, SimLoop), "run_chaos must drive a SimLoop"
    net = SimNet(seed=plan.seed)
    config = ServeConfig(
        shards=plan.shards,
        algorithm=plan.algorithm,
        capacity=plan.capacity,
        max_queue=plan.max_queue,
        batch_max=plan.batch_max,
        batch_delay=plan.batch_delay,
        checkpoint_dir=checkpoint_dir,
        metrics=True,
        ledger_dir=None,
        generator=plan.workload,
    )
    fired: List[str] = []
    # the telemetry outlives any one server incarnation: the harness
    # owns it and hands the same instance to every restart, so RED
    # counters and the span ring span crash/recover/restart cycles
    tel = None
    if telemetry:
        from ..serve.telemetry import ServiceTelemetry

        tel = ServiceTelemetry(
            plan.shards, clock=loop.time, sample=1.0, seed=plan.seed
        )
    # the current server lives in a box so timed events and the client
    # keep working across a graceful restart (which replaces the object)
    box = {}

    def _shard(idx: int):
        return box["server"].shards[idx]

    if sampler is not None:
        sampler.start()
    server = PlacementServer(
        config, registry=registry, transport=net, clock=loop.time,
        telemetry=tel, sampler=sampler,
    )
    await server.start()
    box["server"] = server
    port = server.port
    if plan.disable_dedup:
        for shard in server.shards:
            shard.dedup_enabled = False

    # ------------------------------------------------------------------ #
    # Schedule the plan: every fault at its virtual time
    # ------------------------------------------------------------------ #
    handles = []

    def at(when: float, fn, label: str) -> None:
        def _fire() -> None:
            fired.append(f"{label}@{when:g}")
            fn()

        handles.append(loop.call_at(loop.time() + when, _fire))

    for event in plan.events:
        shard_idx = min(event.shard, plan.shards - 1)
        if event.kind == "crash":
            if event.after_applies is not None:
                n = event.after_applies
                at(
                    event.at,
                    lambda i=shard_idx, n=n: _shard(i).crash_after(n),
                    f"crash-after-{n}:s{shard_idx}",
                )
            else:
                at(
                    event.at,
                    lambda i=shard_idx: _shard(i).crash(),
                    f"crash:s{shard_idx}",
                )
        elif event.kind == "recover":
            at(
                event.at,
                lambda i=shard_idx: _shard(i).recover(),
                f"recover:s{shard_idx}",
            )
        elif event.kind == "stall":
            duration = event.duration
            at(
                event.at,
                lambda i=shard_idx, d=duration: _shard(i).stall(
                    loop.time() + d
                ),
                f"stall-{duration:g}:s{shard_idx}",
            )
        elif event.kind == "restart":
            at(
                event.at,
                lambda: loop.create_task(_graceful_restart(
                    box, config, net, loop, port, plan, registry, tel,
                    sampler,
                )),
                "restart",
            )

    # network windows: at every boundary, recompute which window (if
    # any) covers "now" — overlapping windows resolve to the latest one
    def _apply_net() -> None:
        now = loop.time()
        active = PERFECT
        for window in plan.net_windows:
            if window.at <= now < window.at + window.duration:
                active = window.policy
        net.set_policy(active)

    for window in plan.net_windows:
        at(window.at, _apply_net, "net-on")
        at(window.at + window.duration, _apply_net, "net-off")

    # the heal point: whatever is still broken gets fixed so the
    # retrying client can settle and the oracles can judge a quiet system
    def _heal() -> None:
        net.clear_policy()
        for shard in box["server"].shards:
            shard._crash_after_applies = None
            shard._stall_until = None
            if shard.crashed:
                shard.recover()

    at(plan.heal_at, _heal, "heal")

    # ------------------------------------------------------------------ #
    # Traffic
    # ------------------------------------------------------------------ #
    items = _plan_items(plan)
    chaos = ChaosClient(
        "sim", port, transport=net, plan=plan, items=items
    )
    client_report = await chaos.run()

    # make sure the heal has happened even if traffic settled early
    remaining = plan.heal_at - loop.time()
    if remaining > 0:
        await asyncio.sleep(remaining + 0.001)
    _heal()

    # ------------------------------------------------------------------ #
    # Epilogue: advance past the horizon, read final stats, drain
    # ------------------------------------------------------------------ #
    horizon = max((it[2] for it in items), default=0.0) + 1.0
    stats = await _epilogue(net, port, plan, horizon)
    duration = loop.time()
    await box["server"].drain()
    for handle in handles:
        handle.cancel()

    verdict = check_oracles(plan, client_report, stats, registry=registry)
    tel_snapshot = None
    trace_lines: List[str] = []
    if tel is not None:
        import json as _json

        tel_snapshot = tel.snapshot(box["server"].shards)
        trace_lines = [
            _json.dumps(ev.to_dict(), sort_keys=True)
            for ev in tel.tracer.events()
        ]
    profile_stats = None
    if sampler is not None:
        profile_stats = sampler.stop().stats()
    return ChaosReport(
        plan=plan,
        verdict=verdict,
        client=client_report,
        net_faults=net.fault_counts(),
        events_fired=fired,
        virtual_duration=duration,
        telemetry=tel_snapshot,
        trace_lines=trace_lines,
        profile=profile_stats,
    )


def _plan_items(plan: FaultPlan):
    """The plan's workload as (id, arrival, departure, size) tuples."""
    from ..serve.loadgen import make_workload

    instance = make_workload(plan.workload, plan.n_items, plan.seed)
    return [
        (str(item.uid), item.arrival, item.departure, item.size)
        for item in instance
    ]


async def _graceful_restart(
    box, config: ServeConfig, net: SimNet, loop, port: int, plan, registry,
    tel=None, sampler=None,
) -> None:
    """Drain the server to checkpoint files, then resume a fresh one.

    The full persistence cycle under traffic: clients see ``draining``
    refusals, then dead connections, then ``ConnectionRefusedError`` —
    all retryable — and finally a server whose shards continue their
    decision streams bit-for-bit from the checkpoint files.  The shared
    ``tel`` and ``sampler`` (if any) carry telemetry and the profiling
    aggregate across the incarnation boundary.
    """
    old = box["server"]
    await old.drain()
    new = PlacementServer(
        replace(config, port=port, resume=True),
        registry=registry,
        transport=net,
        clock=loop.time,
        telemetry=tel,
        sampler=sampler,
    )
    await new.start()
    if plan.disable_dedup:
        for shard in new.shards:
            shard.dedup_enabled = False
    box["server"] = new


async def _epilogue(net: SimNet, port: int, plan, horizon: float) -> dict:
    """Advance every shard past ``horizon`` and fetch final stats.

    The network is perfect by now, but a restart may still be settling,
    so a short retry loop (virtual-clock backoff) keeps this robust.
    """
    last_error: Optional[BaseException] = None
    for _ in range(_EPILOGUE_ATTEMPTS):
        client = None
        try:
            client = await PlacementClient.connect(
                "sim", port, timeout=plan.timeout, transport=net
            )
            reply = await asyncio.wait_for(
                client.advance(horizon), plan.timeout
            )
            if not reply.get("ok"):
                await asyncio.sleep(plan.backoff)
                continue
            stats = await asyncio.wait_for(client.stats(), plan.timeout)
            return stats
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            last_error = exc
            await asyncio.sleep(plan.backoff)
        finally:
            if client is not None:
                await client.aclose()
    raise RuntimeError(
        f"chaos epilogue could not settle after {_EPILOGUE_ATTEMPTS} "
        f"attempts (last error: {last_error!r})"
    )
