"""repro.obs — the unified observability layer.

One subsystem answering "what is this run doing and where does the time
go", shared by every frontend:

- :mod:`repro.obs.trace` — span/event **tracing** with a bounded ring
  buffer and a :class:`~repro.obs.trace.TracingListener` narrating every
  kernel event (``repro-dbp replay --trace out.jsonl``);
- :mod:`repro.obs.metrics` — **counters, gauges, histograms, timings**;
  the primitives behind :class:`~repro.engine.metrics.EngineMetrics`,
  plus the frontend-independent, fully deterministic
  :class:`~repro.obs.metrics.MetricsListener` (batch and streaming runs
  of the same trace snapshot identically);
- :mod:`repro.obs.profile` — per-phase wall time / peak RSS /
  ``tracemalloc`` **profiling** (``repro-dbp run --profile``);
- :mod:`repro.obs.export` — sinks (memory, JSON, JSONL, console) and
  human-readable summaries (``repro-dbp obs summarize``).

Quickstart::

    from repro import FirstFit
    from repro.engine import Engine
    from repro.obs import Tracer

    tracer = Tracer(capacity=1 << 16)
    engine = Engine(FirstFit(), tracer=tracer)
    ...
    tracer.write_jsonl("run.jsonl")
"""

from .export import (
    CallbackSink,
    ConsoleSink,
    JSONLSink,
    JSONSink,
    MemorySink,
    MetricsSink,
    render_summary,
    summarize_trace,
)
from .metrics import (
    BINS_OPEN_EDGES,
    LATENCY_EDGES,
    LIFETIME_EDGES,
    OCCUPANCY_EDGES,
    RESIDUAL_EDGES,
    UTILIZATION_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsListener,
    Timing,
    merge_metrics,
)
from .profile import PhaseProfiler, PhaseStats, ProfileReport, profiled
from .trace import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    TracingListener,
    read_trace,
)

__all__ = [
    # trace
    "DEFAULT_CAPACITY",
    "Tracer",
    "TraceEvent",
    "TracingListener",
    "read_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timing",
    "MetricsListener",
    "merge_metrics",
    "OCCUPANCY_EDGES",
    "UTILIZATION_EDGES",
    "LIFETIME_EDGES",
    "LATENCY_EDGES",
    "RESIDUAL_EDGES",
    "BINS_OPEN_EDGES",
    # profile
    "PhaseProfiler",
    "PhaseStats",
    "ProfileReport",
    "profiled",
    # export
    "MetricsSink",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "render_summary",
    "summarize_trace",
]
