"""repro.obs — the unified observability layer.

One subsystem answering "what is this run doing and where does the time
go", shared by every frontend:

- :mod:`repro.obs.trace` — span/event **tracing** with a bounded ring
  buffer and a :class:`~repro.obs.trace.TracingListener` narrating every
  kernel event (``repro-dbp replay --trace out.jsonl``);
- :mod:`repro.obs.metrics` — **counters, gauges, histograms, timings**;
  the primitives behind :class:`~repro.engine.metrics.EngineMetrics`,
  plus the frontend-independent, fully deterministic
  :class:`~repro.obs.metrics.MetricsListener` (batch and streaming runs
  of the same trace snapshot identically);
- :mod:`repro.obs.profile` — per-phase wall time / peak RSS /
  ``tracemalloc`` **profiling** (``repro-dbp run --profile``);
- :mod:`repro.obs.prof` — the **continuous profiling plane**: a
  statistical stack sampler (``--sample-hz``), flamegraph/speedscope
  exporters (``repro-dbp obs flame``), and trace critical-path
  analytics (``repro-dbp obs critical-path``);
- :mod:`repro.obs.export` — sinks (memory, JSON, JSONL, console) and
  human-readable summaries (``repro-dbp obs summarize``);
- :mod:`repro.obs.invariants` — online **theory-invariant monitors**
  (capacity, cost identity, ``span ≤ cost``, Table-1 ratio bounds)
  emitting structured ``invariant.violation`` events;
- :mod:`repro.obs.ledger` — the **run ledger** (one JSON provenance
  record per run in ``.ledger/``) and the regression sentinel behind
  ``repro-dbp obs diff`` / ``obs regress``.

Quickstart::

    from repro import FirstFit
    from repro.engine import Engine
    from repro.obs import Tracer

    tracer = Tracer(capacity=1 << 16)
    engine = Engine(FirstFit(), tracer=tracer)
    ...
    tracer.write_jsonl("run.jsonl")
"""

from .export import (
    CallbackSink,
    ConsoleSink,
    JSONLSink,
    JSONSink,
    MemorySink,
    MetricsSink,
    render_prometheus,
    render_summary,
    summarize_trace,
)
from .invariants import (
    RATIO_BOUNDS,
    InvariantMonitor,
    InvariantViolationError,
    Violation,
    ratio_bound_for,
)
from .ledger import (
    DEFAULT_LEDGER_DIR,
    DEFAULT_TOLERANCES,
    LEDGER_ENV,
    Drift,
    LedgerSink,
    RegressReport,
    RunRecord,
    config_hash,
    diff_records,
    flatten_metrics,
    git_sha,
    parse_tolerances,
    read_baseline,
    read_ledger,
    read_record,
    regress,
    render_drifts,
    resolve_ledger_dir,
)
from .metrics import (
    BINS_OPEN_EDGES,
    LATENCY_EDGES,
    LIFETIME_EDGES,
    OCCUPANCY_EDGES,
    RESIDUAL_EDGES,
    UTILIZATION_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsListener,
    Timing,
    merge_metrics,
)
from .prof import (
    CriticalReport,
    Profile,
    StackSampler,
    analyze_trace,
    render_top,
    to_collapsed,
    to_speedscope,
)
from .profile import PhaseProfiler, PhaseStats, ProfileReport, profiled
from .trace import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    TracingListener,
    read_trace,
)

__all__ = [
    # trace
    "DEFAULT_CAPACITY",
    "Tracer",
    "TraceEvent",
    "TracingListener",
    "read_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timing",
    "MetricsListener",
    "merge_metrics",
    "OCCUPANCY_EDGES",
    "UTILIZATION_EDGES",
    "LIFETIME_EDGES",
    "LATENCY_EDGES",
    "RESIDUAL_EDGES",
    "BINS_OPEN_EDGES",
    # profile
    "PhaseProfiler",
    "PhaseStats",
    "ProfileReport",
    "profiled",
    # prof (continuous profiling plane)
    "StackSampler",
    "Profile",
    "CriticalReport",
    "analyze_trace",
    "render_top",
    "to_collapsed",
    "to_speedscope",
    # export
    "MetricsSink",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "render_summary",
    "render_prometheus",
    "summarize_trace",
    # invariants
    "InvariantMonitor",
    "InvariantViolationError",
    "Violation",
    "RATIO_BOUNDS",
    "ratio_bound_for",
    # ledger + sentinel
    "LEDGER_ENV",
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_TOLERANCES",
    "RunRecord",
    "LedgerSink",
    "RegressReport",
    "Drift",
    "resolve_ledger_dir",
    "git_sha",
    "config_hash",
    "read_record",
    "read_ledger",
    "read_baseline",
    "flatten_metrics",
    "diff_records",
    "regress",
    "render_drifts",
    "parse_tolerances",
]
