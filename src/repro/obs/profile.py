"""Profiling hooks: per-phase wall time, peak RSS, allocation snapshots.

A :class:`PhaseProfiler` wraps named phases of a run (building a
workload, feeding the engine, draining departures, rendering a table)
and records, per phase:

- **wall time** via ``perf_counter``;
- **peak RSS** via ``resource.getrusage`` (kilobytes on Linux; the OS
  high-water mark is monotone, so a phase's value means "peak so far",
  which is exactly what a leak hunt needs);
- optionally **allocation deltas and peaks** via :mod:`tracemalloc`,
  including the top allocating source lines — opt-in because tracing
  allocations costs real time (2-4x on hot loops).

The experiment harness wires this in (``repro-dbp run --profile``), as
does ``repro-dbp replay --profile``; a report renders as a terminal
table or a JSON dict written next to the experiment's output.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

try:  # POSIX only; gated so the module imports anywhere
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["PhaseStats", "ProfileReport", "PhaseProfiler", "profiled"]


def _peak_rss_kb() -> Optional[float]:
    """The process's high-water RSS in KiB, or ``None`` when unavailable."""
    if resource is None:
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Measurements for one completed phase."""

    name: str
    wall_s: float
    peak_rss_kb: Optional[float]  #: process high-water mark at phase end
    alloc_delta_kb: Optional[float]  #: net Python allocations over the phase
    alloc_peak_kb: Optional[float]  #: tracemalloc peak during the phase
    top_allocations: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "peak_rss_kb": self.peak_rss_kb,
            "alloc_delta_kb": self.alloc_delta_kb,
            "alloc_peak_kb": self.alloc_peak_kb,
            "top_allocations": list(self.top_allocations),
        }


@dataclass(frozen=True)
class ProfileReport:
    """All phases of one profiled run, in execution order."""

    phases: Tuple[PhaseStats, ...]

    @property
    def total_wall_s(self) -> float:
        return sum(p.wall_s for p in self.phases)

    def to_dict(self) -> dict:
        return {
            "total_wall_s": self.total_wall_s,
            "phases": [p.to_dict() for p in self.phases],
        }

    def render(self) -> str:
        """A terminal table: where the time (and memory) went."""
        headers = ["phase", "wall s", "%", "rss KiB", "alloc KiB", "peak KiB"]
        total = self.total_wall_s or 1.0
        rows = []
        for p in self.phases:
            rows.append(
                [
                    p.name,
                    f"{p.wall_s:.4f}",
                    f"{100.0 * p.wall_s / total:.1f}",
                    "-" if p.peak_rss_kb is None else f"{p.peak_rss_kb:,.0f}",
                    "-"
                    if p.alloc_delta_kb is None
                    else f"{p.alloc_delta_kb:+,.1f}",
                    "-"
                    if p.alloc_peak_kb is None
                    else f"{p.alloc_peak_kb:,.1f}",
                ]
            )
        widths = [
            max(len(h), *(len(r[k]) for r in rows)) if rows else len(h)
            for k, h in enumerate(headers)
        ]
        lines = [
            "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append(
                "  ".join(r[k].rjust(widths[k]) for k in range(len(r)))
            )
        lines.append(f"total: {self.total_wall_s:.4f} s over "
                     f"{len(self.phases)} phase(s)")
        for p in self.phases:
            for entry in p.top_allocations:
                lines.append(f"  [{p.name}] {entry}")
        return "\n".join(lines)


class PhaseProfiler:
    """Collects :class:`PhaseStats` for successive named phases.

    Parameters
    ----------
    trace_malloc:
        Record Python allocation deltas/peaks per phase via
        :mod:`tracemalloc`.  If tracing is already active (an outer
        profiler or test harness started it), it is left running;
        otherwise it is started and stopped around each phase.
    top_allocations:
        When allocation tracing is on, also keep the N top allocating
        source lines per phase (0 disables the snapshot walk).
    """

    def __init__(
        self, *, trace_malloc: bool = False, top_allocations: int = 0
    ) -> None:
        self.trace_malloc = trace_malloc
        self.top_allocations = top_allocations
        self._phases: List[PhaseStats] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one named phase (not reentrant for the same profiler)."""
        alloc_before = alloc_delta = alloc_peak = None
        started_here = False
        if self.trace_malloc:
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
                started_here = True
            alloc_before = tracemalloc.get_traced_memory()[0]
        t0 = time.perf_counter()
        try:
            yield
        finally:
            wall = time.perf_counter() - t0
            top: Tuple[str, ...] = ()
            if self.trace_malloc and tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                alloc_delta = (current - (alloc_before or 0)) / 1024.0
                alloc_peak = peak / 1024.0
                if self.top_allocations:
                    stats = tracemalloc.take_snapshot().statistics("lineno")
                    top = tuple(
                        f"{s.traceback[0].filename}:{s.traceback[0].lineno} "
                        f"{s.size / 1024.0:,.1f} KiB ({s.count} blocks)"
                        for s in stats[: self.top_allocations]
                    )
                if started_here:
                    tracemalloc.stop()
            self._phases.append(
                PhaseStats(
                    name=name,
                    wall_s=wall,
                    peak_rss_kb=_peak_rss_kb(),
                    alloc_delta_kb=alloc_delta,
                    alloc_peak_kb=alloc_peak,
                    top_allocations=top,
                )
            )

    def report(self) -> ProfileReport:
        return ProfileReport(phases=tuple(self._phases))

    def __repr__(self) -> str:
        return (
            f"PhaseProfiler({len(self._phases)} phases, "
            f"trace_malloc={self.trace_malloc})"
        )


def profiled(fn, *args, name: Optional[str] = None, **kwargs):
    """Run ``fn(*args, **kwargs)`` as a single profiled phase.

    Returns ``(result, report)`` — the convenience wrapper the
    experiment harness uses for registry callables.
    """
    prof = PhaseProfiler(trace_malloc=True)
    with prof.phase(name or getattr(fn, "__name__", "call")):
        result = fn(*args, **kwargs)
    return result, prof.report()

