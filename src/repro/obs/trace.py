"""Lightweight span/event tracing with a bounded ring buffer.

A :class:`Tracer` records two kinds of entries, timestamped off a
monotonic ``perf_counter_ns`` epoch fixed at construction (or an
injected ``clock_ns`` — the serve telemetry plane passes the service
clock through so traces recorded under the chaos harness's virtual
clock are a pure function of the fault plan):

- **events** — instantaneous points (``dur_ns == 0``);
- **spans** — nested regions opened with the :meth:`Tracer.span` context
  manager.  A span is appended when it *closes* (standard exit-ordered
  tracing), carrying the depth it ran at, so children precede their
  parent in the buffer and nesting is reconstructible from
  ``(t_ns, dur_ns, depth)`` alone.

The buffer is a fixed-capacity ring: once full, the oldest entries are
evicted and counted in :attr:`Tracer.dropped` — tracing a 10⁸-event
replay can never exhaust memory.  Export is JSONL, one entry per line,
the same convention as the engine's trace streams; ``repro-dbp obs
summarize`` aggregates such files back into a terminal report.

:class:`TracingListener` adapts a tracer to the kernel's
:class:`~repro.core.kernel.KernelListener` protocol, so every
open/place/depart/close/advance of a
:class:`~repro.core.kernel.PlacementKernel` becomes a trace event
without touching kernel semantics.  Attach it via the kernel's listener
fan-out (``Engine(tracer=...)`` or ``simulate(listener=...)``).  Its
callbacks early-return while the tracer is disabled; the engine
additionally skips attaching the listener altogether when handed a
tracer that is disabled at construction time, which is what keeps the
tracing-off overhead under the benchmarked 5% bar — treat
:attr:`Tracer.enabled` as a construct-time switch, not a mid-run toggle.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Union

from ..core.bins import Bin
from ..core.item import Item
from ..core.kernel import KernelListener

__all__ = ["TraceEvent", "Tracer", "TracingListener", "read_trace"]

#: default ring capacity — enough for a 32k-event window, ~a few MB
DEFAULT_CAPACITY = 1 << 15


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded entry: an instantaneous event or a closed span."""

    name: str
    kind: str  #: ``"event"`` or ``"span"``
    t_ns: int  #: start, nanoseconds since the tracer's epoch
    dur_ns: int  #: 0 for instantaneous events
    depth: int  #: span-nesting depth the entry was recorded at
    fields: dict = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.t_ns + self.dur_ns

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "kind": self.kind,
            "t_ns": self.t_ns,
            "dur_ns": self.dur_ns,
            "depth": self.depth,
        }
        if self.fields:
            d["fields"] = self.fields
        return d


class Tracer:
    """Bounded-memory recorder of spans and events.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest entries are evicted (and counted in
        :attr:`dropped`) once it fills.
    enabled:
        When false every recording call is a cheap no-op.  Decide this
        before attaching the tracer to an engine/kernel: frontends may
        skip wiring a disabled tracer entirely.
    clock_ns:
        Nanosecond clock used for the epoch and every timestamp;
        defaults to ``time.perf_counter_ns``.  Inject a deterministic
        clock (e.g. the :class:`~repro.testkit.clock.SimLoop` time) to
        make recorded traces replayable bit-for-bit.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        enabled: bool = True,
        clock_ns=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self._stack: List[str] = []
        self._clock_ns = clock_ns if clock_ns is not None else time.perf_counter_ns
        self._epoch = self._clock_ns()
        self.total = 0  #: entries ever recorded (including evicted ones)

    # ------------------------------------------------------------------ #
    @property
    def epoch_ns(self) -> int:
        """The clock reading all timestamps are relative to."""
        return self._epoch

    @property
    def depth(self) -> int:
        """Current span-nesting depth."""
        return len(self._stack)

    @property
    def dropped(self) -> int:
        """Entries evicted from the ring so far."""
        return self.total - len(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> List[TraceEvent]:
        """The retained entries, oldest first."""
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()
        self.total = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields) -> None:
        """Record an instantaneous event at the current depth."""
        if not self.enabled:
            return
        self._buf.append(
            TraceEvent(
                name,
                "event",
                self._clock_ns() - self._epoch,
                0,
                len(self._stack),
                fields,
            )
        )
        self.total += 1

    def record(
        self,
        name: str,
        *,
        t_ns: int,
        dur_ns: int = 0,
        depth: int = 0,
        **fields,
    ) -> None:
        """Append a pre-timed span measured outside the tracer.

        The context-manager :meth:`span` only works for regions confined
        to one call stack; request phases that hop across coroutines
        (queue wait, batch residency) are timed by their owners and
        recorded here after the fact.  ``t_ns`` is relative to the
        tracer's epoch — callers timing with the same injected clock can
        pass ``t - epoch_ns`` directly.
        """
        if not self.enabled:
            return
        self._buf.append(
            TraceEvent(name, "span", t_ns, dur_ns, depth, fields)
        )
        self.total += 1

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        """A nested timed region; the entry is appended when it closes."""
        if not self.enabled:
            yield
            return
        self._stack.append(name)
        start = self._clock_ns()
        try:
            yield
        finally:
            dur = self._clock_ns() - start
            self._stack.pop()
            self._buf.append(
                TraceEvent(
                    name,
                    "span",
                    start - self._epoch,
                    dur,
                    len(self._stack),
                    fields,
                )
            )
            self.total += 1

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def write_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write the retained entries as JSONL; returns the line count."""
        buf = self._buf
        with pathlib.Path(path).open("w", encoding="utf-8") as fh:
            for ev in buf:
                fh.write(json.dumps(ev.to_dict(), sort_keys=True) + "\n")
        return len(buf)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({state}, {len(self._buf)}/{self.capacity} buffered, "
            f"{self.dropped} dropped)"
        )


def read_trace(path: Union[str, pathlib.Path]) -> List[TraceEvent]:
    """Load a JSONL trace file back into :class:`TraceEvent` objects."""
    out: List[TraceEvent] = []
    with pathlib.Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            out.append(
                TraceEvent(
                    name=rec["name"],
                    kind=rec.get("kind", "event"),
                    t_ns=rec.get("t_ns", 0),
                    dur_ns=rec.get("dur_ns", 0),
                    depth=rec.get("depth", 0),
                    fields=rec.get("fields", {}),
                )
            )
    return out


class TracingListener(KernelListener):
    """Narrate every kernel event into a :class:`Tracer`.

    Pure observation: no kernel state is touched and nothing here can
    change placement decisions.  The emitted names (``kernel.advance``,
    ``kernel.open``, ``kernel.place``, ``kernel.depart``,
    ``kernel.close``) are part of the obs contract documented in
    ``docs/observability.md``; the ``kernel.open``/``kernel.close``
    subsequence reproduces the kernel's ``ON_t`` event log exactly
    (pinned by the obs test suite).
    """

    timed = False

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def on_advance(self, t: float) -> None:
        if self.tracer.enabled:
            self.tracer.event("kernel.advance", time=t)

    def on_open(self, bin_: Bin) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "kernel.open", bin=bin_.uid, time=bin_.opened_at
            )

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "kernel.place",
                item=item.uid,
                bin=bin_.uid,
                size=item.size,
                opened=opened,
            )

    def on_departure(
        self,
        uid: int,
        removed: Item,
        bin_: Bin,
        t: float,
        closed: bool,
        elapsed: float,
    ) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "kernel.depart", item=uid, bin=bin_.uid, time=t, closed=closed
            )

    def on_close(
        self, bin_: Bin, t: float, usage: float, peak: float, n_items: int
    ) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "kernel.close", bin=bin_.uid, time=t, usage=usage
            )

