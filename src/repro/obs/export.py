"""Exporters for the observability layer: sinks and human summaries.

Sinks are deliberately decoupled from metric objects: a metrics registry
holds only data (and therefore pickles inside checkpoints), while sinks —
which may own file handles — are handed snapshots at emission time.
Anything with an ``emit(snapshot: dict)`` method is a sink; the engine's
``EngineMetrics.flush`` and the CLI both speak this protocol.

Three export shapes:

- **in-memory** (:class:`MemorySink`) — collect snapshots in a list, for
  tests and embedded use;
- **files** (:class:`JSONSink`, :class:`JSONLSink`) — the JSONL sink
  follows the same append-one-object-per-line convention as the engine's
  trace streams (:mod:`repro.engine.stream`);
- **human-readable** (:func:`render_summary`, :func:`summarize_trace`) —
  terminal summaries of a metrics snapshot or of a JSONL trace file
  written by :meth:`repro.obs.trace.Tracer.write_jsonl` (this is what
  ``repro-dbp obs summarize`` prints).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Callable, List, Optional, Protocol, Union

__all__ = [
    "MetricsSink",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "render_summary",
    "render_prometheus",
    "summarize_trace",
]


class MetricsSink(Protocol):
    """Anything that accepts metric snapshots."""

    def emit(self, snapshot: dict) -> None: ...


class ConsoleSink:
    """Pretty-print the snapshot to a stream (stderr by default)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream

    def emit(self, snapshot: dict) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        json.dump(snapshot, stream, indent=2, sort_keys=True)
        stream.write("\n")


class JSONSink:
    """Write the latest snapshot to ``path`` (overwriting)."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def emit(self, snapshot: dict) -> None:
        self.path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))


class JSONLSink:
    """Append one snapshot per line — for periodic mid-stream flushes."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def emit(self, snapshot: dict) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(snapshot, sort_keys=True) + "\n")


class CallbackSink:
    """Adapt a plain callable into a sink."""

    def __init__(self, fn: Callable[[dict], None]) -> None:
        self.fn = fn

    def emit(self, snapshot: dict) -> None:
        self.fn(snapshot)


class MemorySink:
    """Collect every emitted snapshot in :attr:`snapshots` (newest last)."""

    def __init__(self) -> None:
        self.snapshots: List[dict] = []

    def emit(self, snapshot: dict) -> None:
        self.snapshots.append(snapshot)

    @property
    def last(self) -> dict:
        if not self.snapshots:
            raise LookupError("no snapshot has been emitted yet")
        return self.snapshots[-1]


# ---------------------------------------------------------------------- #
# Human-readable rendering
# ---------------------------------------------------------------------- #
def _table(headers, rows) -> List[str]:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[k]) for r in cells)) if cells else len(h)
        for k, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(widths[k]) for k, h in enumerate(headers))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(r[k].rjust(widths[k]) for k in range(len(r))))
    return out


def render_summary(snapshot: dict) -> str:
    """A terminal-friendly summary of a metrics snapshot dict."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:24s} {value:>12,}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, g in gauges.items():
            lines.append(
                f"  {name:24s} {g.get('value', 0):>12g}   "
                f"(min {g.get('min')}, max {g.get('max')})"
            )
    for section in ("histograms", "timings"):
        entries = snapshot.get(section, {})
        if not entries:
            continue
        lines.append(f"{section}:")
        for name, h in entries.items():
            if "buckets" in h:
                lines.append(
                    f"  {name} (n={h['total']}, mean={h['mean']:g}):"
                )
                for label, count in h["buckets"].items():
                    bar = "#" * min(40, count)
                    lines.append(f"    {label:>14s} {count:>10,} {bar}")
            else:
                lines.append(
                    f"  {name:24s} n={h.get('count', 0):<9,} "
                    f"mean={h.get('mean_us', 0.0):.1f}us "
                    f"max={h.get('max_us', 0.0):.1f}us"
                )
    return "\n".join(lines)


def _prom_name(prefix: str, name: str) -> str:
    out = f"{prefix}_{name}" if prefix else name
    return "".join(
        c if c.isalnum() or c in "_:" else "_" for c in out
    )


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote and newline are the three characters the
    text format requires escaping inside quoted label values; anything
    else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _bucket_upper(label: str) -> str:
    """The ``le`` value encoded in a snapshot bucket label.

    Bucket labels come from :meth:`Histogram.to_dict` — ``"<= e"``,
    ``"(a, b]"``, or ``"> last"`` (the overflow bucket, which maps to
    ``+Inf``).
    """
    label = label.strip()
    if label.startswith("<="):
        return label[2:].strip()
    if label.startswith(">"):
        return "+Inf"
    # "(a, b]" — the upper edge is after the comma
    return label.rstrip("]").split(",")[-1].strip()


def render_prometheus(snapshot: dict, *, prefix="repro", labels=None) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Accepts the same snapshot shape every registry in the repo emits —
    ``counters`` (name → int), ``gauges`` (name → ``Gauge.to_dict()``),
    ``histograms``/``timings`` (name → ``Histogram.to_dict()`` /
    ``Timing.to_dict()``) — and maps them onto the conventional series:
    counters get a ``_total`` suffix, histograms become cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, timings become
    ``_seconds_sum``/``_seconds_count``.  ``labels`` (e.g.
    ``{"shard": 0}``) are stamped on every series, which is how
    per-shard snapshots compose into one scrape page.
    """
    tag = _prom_labels(labels)
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{tag} {value}")
    for name, g in snapshot.get("gauges", {}).items():
        metric = _prom_name(prefix, name)
        value = g.get("value", g) if isinstance(g, dict) else g
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{tag} {value}")
    for name, h in snapshot.get("histograms", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for label, count in h.get("buckets", {}).items():
            cumulative += count
            le = _bucket_upper(label)
            if tag:
                bucket_tag = tag[:-1] + f',le="{le}"}}'
            else:
                bucket_tag = f'{{le="{le}"}}'
            lines.append(f"{metric}_bucket{bucket_tag} {cumulative}")
        total = h.get("total", 0)
        mean = h.get("mean", 0.0)
        lines.append(f"{metric}_sum{tag} {mean * total}")
        lines.append(f"{metric}_count{tag} {total}")
    for name, t in snapshot.get("timings", {}).items():
        metric = _prom_name(prefix, name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum{tag} {t.get('total_s', 0.0)}")
        lines.append(f"{metric}_count{tag} {t.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


def summarize_trace(
    path: Union[str, pathlib.Path], *, top: Optional[int] = None
) -> str:
    """Aggregate a JSONL trace file into a terminal summary.

    Works on anything :meth:`repro.obs.trace.Tracer.write_jsonl` wrote:
    groups records by event name, counting occurrences and (for spans)
    total/mean/max duration, and reports the covered wall-time window.
    ``top`` bounds the per-name table to the N heaviest rows (service
    traces can carry thousands of names; the default is unbounded).

    Raises ``ValueError`` on an empty or mid-file-corrupted trace and
    ``OSError`` on a missing one — a trace with nothing in it means the
    run was configured wrong (tracer never attached), and silently
    summarizing it as fine would mask that.  A truncated **final** line
    is different: that is the normal artifact of a process killed
    mid-write (chaos crashes, SIGKILL during flush), so it produces a
    one-line warning in the summary instead of an error.
    """
    path = pathlib.Path(path)
    per_name: dict = {}
    t_lo, t_hi, total = None, None, 0
    truncated = None  #: pending (lineno, error) — fatal unless file-final
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if truncated is not None:
                # the bad line was NOT the last one — that is mid-file
                # corruption, not a crash artifact, and stays fatal
                bad_lineno, exc = truncated
                raise ValueError(
                    f"{path}:{bad_lineno}: not a JSONL trace line: {exc}"
                ) from exc
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                truncated = (lineno, exc)
                continue
            total += 1
            name = rec.get("name", "?")
            t_ns = rec.get("t_ns", 0)
            dur = rec.get("dur_ns", 0)
            t_lo = t_ns if t_lo is None else min(t_lo, t_ns)
            t_hi = max(t_hi if t_hi is not None else 0, t_ns + dur)
            agg = per_name.setdefault(
                name, {"count": 0, "dur_ns": 0, "max_ns": 0, "kind": rec.get("kind")}
            )
            agg["count"] += 1
            agg["dur_ns"] += dur
            agg["max_ns"] = max(agg["max_ns"], dur)
    if not total:
        raise ValueError(
            f"{path}: empty trace (no events; was the tracer attached "
            "and the file written with --trace?)"
        )
    if top is not None and top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    span_ms = (t_hi - t_lo) / 1e6
    lines = [
        f"{path}: {total:,} events over {span_ms:.2f} ms",
    ]
    if truncated is not None:
        lines.append(
            f"warning: final line {truncated[0]} is truncated "
            "(crashed mid-write?) — ignored"
        )
    lines.append("")
    ranked = sorted(
        per_name.items(), key=lambda kv: (-kv[1]["dur_ns"], kv[0])
    )
    omitted = 0
    if top is not None and len(ranked) > top:
        omitted = len(ranked) - top
        ranked = ranked[:top]
    rows = []
    for name, agg in ranked:
        mean_us = agg["dur_ns"] / agg["count"] / 1e3
        rows.append(
            [
                name,
                agg["kind"] or "event",
                f"{agg['count']:,}",
                f"{agg['dur_ns'] / 1e6:.3f}",
                f"{mean_us:.2f}",
                f"{agg['max_ns'] / 1e3:.2f}",
            ]
        )
    lines += _table(
        ["name", "kind", "count", "total ms", "mean us", "max us"], rows
    )
    if omitted:
        lines.append(f"(+{omitted} more name(s) — raise --top to see them)")
    return "\n".join(lines)
