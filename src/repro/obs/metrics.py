"""Metric primitives for the unified observability layer.

These are the one set of counter/gauge/histogram/timing types used by
every layer of the system: the streaming engine's
:class:`~repro.engine.metrics.EngineMetrics` delegates to them, the
frontend-independent :class:`MetricsListener` builds on them, and
:mod:`repro.parallel` merges them across shards.

Design rules (inherited from the engine's metrics layer, now enforced
package-wide):

- **bounded memory** — histograms have fixed bucket edges, timings keep
  aggregates only, nothing retains per-event history;
- **data only** — metric objects hold numbers, never file handles, so
  they pickle inside checkpoints and travel across process pools;
- **mergeable** — every primitive implements ``merge(other)`` so
  per-shard metrics from :func:`repro.parallel.replay_sharded` combine
  into one registry with no information loss (exact for counters and
  histograms, conservative min/max for timings and gauges).

:class:`MetricsListener` is the deterministic half of the obs layer: it
implements the kernel's :class:`~repro.core.kernel.KernelListener`
protocol and records only quantities that are pure functions of the
event sequence (no wall-clock reads).  Attaching it to the batch
``simulate()`` and to the streaming ``Engine`` on the same trace must
produce identical snapshots — the obs parity property test pins this.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from ..core.bins import Bin
from ..core.item import Item
from ..core.kernel import KernelListener

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timing",
    "MetricsListener",
    "merge_metrics",
    "OCCUPANCY_EDGES",
    "UTILIZATION_EDGES",
    "LIFETIME_EDGES",
    "LATENCY_EDGES",
    "RESIDUAL_EDGES",
    "BINS_OPEN_EDGES",
]

# ---------------------------------------------------------------------- #
# Default bucket edges (shared by engine metrics and the obs listener)
# ---------------------------------------------------------------------- #
#: occupancy buckets: items ever packed into a bin over its lifetime
OCCUPANCY_EDGES = (1, 2, 3, 5, 8, 13, 21, 34)
#: peak-load buckets as a fraction of capacity
UTILIZATION_EDGES = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
#: bin lifetime buckets (usage time, powers of two)
LIFETIME_EDGES = (0.5, 1, 2, 4, 8, 16, 32, 64, 128)
#: per-placement wall-time buckets (seconds)
LATENCY_EDGES = (1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 1e-2)
#: residual capacity of the chosen bin after placement (fraction of capacity)
RESIDUAL_EDGES = (0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9)
#: open-bin count observed at each arrival
BINS_OPEN_EDGES = (1, 2, 4, 8, 16, 32, 64, 128)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> int:
        return self.value

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A last-written value with running min/max over all writes."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        """Combine with a gauge from another shard (min/max exact)."""
        if other.updates:
            self.value = other.value  # last writer wins across the merge order
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self.updates += other.updates

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "min": self.min if self.updates else None,
            "max": self.max if self.updates else None,
            "updates": self.updates,
        }

    def __getstate__(self):
        return (self.value, self.min, self.max, self.updates)

    def __setstate__(self, state):
        self.value, self.min, self.max, self.updates = state

    def __repr__(self) -> str:
        return f"Gauge({self.value!r}, max={self.max!r})"


class Histogram:
    """Fixed-bucket histogram: counts of observations per ``(lo, hi]`` bucket.

    ``edges`` are the inner boundaries; an observation lands in bucket
    ``i`` when ``edges[i-1] < x <= edges[i]``, with under/overflow buckets
    at the ends.  Memory is O(len(edges)) forever.
    """

    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(self, edges: Sequence[float]) -> None:
        self.edges = tuple(sorted(edges))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, x: float) -> None:
        lo, hi = 0, len(self.edges)
        while lo < hi:  # bisect_left over edges
            mid = (lo + hi) // 2
            if self.edges[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self.sum += x

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        Linear interpolation inside the bucket that straddles rank
        ``q * total`` (the underflow bucket interpolates from 0, the
        overflow bucket conservatively reports the last edge — the true
        value is at least that).  Exact enough for p50/p99 dashboards;
        never a substitute for a full sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, c in enumerate(self.counts):
            if seen + c >= rank and c:
                frac = (rank - seen) / c
                lo = 0.0 if i == 0 else self.edges[i - 1]
                hi = self.edges[i] if i < len(self.edges) else self.edges[-1]
                return lo + (hi - lo) * frac
            seen += c
        return self.edges[-1]

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise sum; both histograms must share the same edges."""
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum

    def to_dict(self) -> dict:
        buckets = {}
        prev = None
        for i, edge in enumerate(self.edges):
            label = f"<= {edge:g}" if prev is None else f"({prev:g}, {edge:g}]"
            buckets[label] = self.counts[i]
            prev = edge
        buckets[f"> {self.edges[-1]:g}"] = self.counts[-1]
        return {"total": self.total, "mean": self.mean, "buckets": buckets}

    def __getstate__(self):
        return (self.edges, self.counts, self.total, self.sum)

    def __setstate__(self, state):
        self.edges, self.counts, self.total, self.sum = state


class Timing:
    """Aggregate of elapsed-time observations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, dt: float) -> None:
        self.count += 1
        self.total += dt
        if dt < self.min:
            self.min = dt
        if dt > self.max:
            self.max = dt

    def merge(self, other: "Timing") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": 1e6 * self.total / self.count if self.count else 0.0,
            "min_us": 1e6 * self.min if self.count else 0.0,
            "max_us": 1e6 * self.max,
        }

    def __getstate__(self):
        return (self.count, self.total, self.min, self.max)

    def __setstate__(self, state):
        self.count, self.total, self.min, self.max = state


# ---------------------------------------------------------------------- #
# The frontend-independent kernel metrics listener
# ---------------------------------------------------------------------- #
class MetricsListener(KernelListener):
    """Deterministic packing metrics recorded straight off kernel events.

    Everything here is a pure function of the event sequence — counters,
    the bins-open gauge/distribution, residual-at-placement and per-bin
    histograms; no wall-clock quantity is ever read.  Running the same
    trace through the batch frontend (``simulate(..., listener=ml)``)
    and the streaming one (``Engine(..., listeners=[ml])``) therefore
    yields byte-identical :meth:`snapshot` dicts.
    """

    timed = False

    def __init__(self) -> None:
        self.arrivals = Counter()
        self.departures = Counter()
        self.bins_opened = Counter()
        self.bins_closed = Counter()
        self.open_bins = Gauge()
        self.residual_at_placement = Histogram(RESIDUAL_EDGES)
        self.bins_open_dist = Histogram(BINS_OPEN_EDGES)
        self.bin_occupancy = Histogram(OCCUPANCY_EDGES)
        self.bin_utilization = Histogram(UTILIZATION_EDGES)
        self.bin_lifetime = Histogram(LIFETIME_EDGES)
        self._open = 0

    # -- KernelListener callbacks --------------------------------------- #
    def on_open(self, bin_: Bin) -> None:
        self.bins_opened.inc()
        self._open += 1
        self.open_bins.set(self._open)

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        self.arrivals.inc()
        cap = bin_.capacity
        self.residual_at_placement.observe(bin_.residual() / cap if cap else 0.0)
        self.bins_open_dist.observe(self._open)

    def on_departure(self, uid, removed, bin_, t, closed, elapsed) -> None:
        self.departures.inc()

    def on_close(self, bin_: Bin, t, usage, peak, n_items) -> None:
        self.bins_closed.inc()
        self._open -= 1
        self.open_bins.set(self._open)
        cap = bin_.capacity
        self.bin_occupancy.observe(n_items)
        self.bin_utilization.observe(peak / cap if cap else 0.0)
        self.bin_lifetime.observe(usage)

    # -- export / merge ------------------------------------------------- #
    def merge(self, other: "MetricsListener") -> None:
        """Fold another listener's totals into this one (shard merge)."""
        self.arrivals.merge(other.arrivals)
        self.departures.merge(other.departures)
        self.bins_opened.merge(other.bins_opened)
        self.bins_closed.merge(other.bins_closed)
        self.open_bins.merge(other.open_bins)
        self.residual_at_placement.merge(other.residual_at_placement)
        self.bins_open_dist.merge(other.bins_open_dist)
        self.bin_occupancy.merge(other.bin_occupancy)
        self.bin_utilization.merge(other.bin_utilization)
        self.bin_lifetime.merge(other.bin_lifetime)
        self._open += other._open

    def snapshot(self, extra: Optional[dict] = None) -> dict:
        snap = {
            "counters": {
                "arrivals": self.arrivals.value,
                "departures": self.departures.value,
                "bins_opened": self.bins_opened.value,
                "bins_closed": self.bins_closed.value,
            },
            "gauges": {"open_bins": self.open_bins.to_dict()},
            "histograms": {
                "residual_at_placement": self.residual_at_placement.to_dict(),
                "bins_open": self.bins_open_dist.to_dict(),
                "bin_occupancy": self.bin_occupancy.to_dict(),
                "bin_utilization": self.bin_utilization.to_dict(),
                "bin_lifetime": self.bin_lifetime.to_dict(),
            },
        }
        if extra:
            snap.update(extra)
        return snap


def merge_metrics(metrics: Iterable, into=None):
    """Merge an iterable of same-shaped metric objects into one.

    Works for anything exposing ``merge(other)`` — primitives,
    :class:`MetricsListener`, or
    :class:`~repro.engine.metrics.EngineMetrics`.  Returns ``into`` (a
    fresh first element's type when omitted) or ``None`` for an empty
    iterable.
    """
    result = into
    for m in metrics:
        if result is None:
            result = type(m)()
        result.merge(m)
    return result
