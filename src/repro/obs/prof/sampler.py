"""Statistical stack sampler: continuous, in-process CPU profiling.

The production question PR 9's telemetry cannot answer is *which code*
was on-CPU when a latency budget burned.  :class:`StackSampler` answers
it with nothing but the stdlib: a daemon thread wakes at a fixed rate
(default 97 Hz — prime, so it does not alias against 10 ms schedulers
or 100 Hz timer interrupts), snapshots every thread's Python stack via
``sys._current_frames()``, and folds each stack into an interned
aggregate.  Memory is bounded and drop-free: past ``max_stacks`` unique
stacks, further samples land in a synthetic ``(truncated)`` bucket so
total sample weight is always conserved.

Cost model:

- disabled (``enabled=False`` or never started): no thread, no lock,
  ``stop()`` returns an empty profile — the serve hot path pays one
  attribute check.
- enabled: one stack walk per live thread per tick.  At 97 Hz and
  ~20-frame stacks this is well under 1% of a core; the contract is
  frozen by ``benchmarks/bench_profiler.py`` (``profiler_on_ratio``).

The aggregate is exposed as an immutable :class:`Profile` (frame table
+ weighted collapsed stacks) which ``repro.obs.prof.flame`` renders as
flamegraph inputs and ``repro-dbp obs flame`` serves from the CLI.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_MAX_STACKS",
    "Frame",
    "Profile",
    "Stack",
    "StackSampler",
    "TRUNCATED_FRAME",
    "merge_profiles",
]

#: Default sampling rate.  Prime on purpose: a rate that divides common
#: timer frequencies (50/100/250 Hz) samples the same scheduler phase
#: over and over; 97 Hz walks across it.
DEFAULT_HZ = 97.0

#: Bound on distinct (thread, stack) aggregates before overflow samples
#: collapse into the ``(truncated)`` bucket.
DEFAULT_MAX_STACKS = 10_000

PROFILE_SCHEMA = 1

#: Synthetic frame used for the overflow bucket.
TRUNCATED_FRAME = ("(truncated)", "", 0)


@dataclass(frozen=True)
class Frame:
    """One interned code location."""

    name: str
    file: str
    line: int

    def to_dict(self) -> dict:
        return {"name": self.name, "file": self.file, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "Frame":
        return cls(
            name=str(data["name"]),
            file=str(data.get("file", "")),
            line=int(data.get("line", 0)),
        )


@dataclass(frozen=True)
class Stack:
    """One aggregated call stack: root-first frame indices + weight."""

    thread: str
    frames: Tuple[int, ...]
    count: int

    def to_dict(self) -> dict:
        return {"thread": self.thread, "frames": list(self.frames),
                "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "Stack":
        return cls(
            thread=str(data["thread"]),
            frames=tuple(int(i) for i in data["frames"]),
            count=int(data["count"]),
        )


@dataclass(frozen=True)
class Profile:
    """An immutable sampling aggregate.

    ``frames`` is the interned frame table; each :class:`Stack` holds
    root-first indices into it.  ``samples`` counts sampling ticks that
    captured at least one thread; ``missed`` counts ticks skipped when
    the sampler fell behind its absolute schedule; ``truncated`` counts
    samples folded into the overflow bucket.  Weight is conserved:
    ``sum(s.count for s in stacks)`` equals the number of captured
    (thread, tick) pairs, including truncated ones.
    """

    hz: float
    samples: int
    missed: int
    truncated: int
    duration_s: float
    frames: Tuple[Frame, ...]
    stacks: Tuple[Stack, ...]

    @property
    def total_weight(self) -> int:
        return sum(stack.count for stack in self.stacks)

    @property
    def threads(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for stack in self.stacks:
            seen.setdefault(stack.thread, None)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "hz": self.hz,
            "samples": self.samples,
            "missed": self.missed,
            "truncated": self.truncated,
            "duration_s": self.duration_s,
            "frames": [frame.to_dict() for frame in self.frames],
            "stacks": [stack.to_dict() for stack in self.stacks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        schema = data.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported profile schema {schema!r} "
                f"(expected {PROFILE_SCHEMA})"
            )
        frames = tuple(Frame.from_dict(f) for f in data.get("frames", ()))
        stacks = tuple(Stack.from_dict(s) for s in data.get("stacks", ()))
        for stack in stacks:
            for index in stack.frames:
                if not 0 <= index < len(frames):
                    raise ValueError(
                        f"profile stack references frame {index} outside "
                        f"the {len(frames)}-entry frame table"
                    )
        return cls(
            hz=float(data.get("hz", DEFAULT_HZ)),
            samples=int(data.get("samples", 0)),
            missed=int(data.get("missed", 0)),
            truncated=int(data.get("truncated", 0)),
            duration_s=float(data.get("duration_s", 0.0)),
            frames=frames,
            stacks=stacks,
        )

    def write(self, path) -> Path:
        """Serialise to ``path`` as deterministic JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        return path

    @classmethod
    def read(cls, path) -> "Profile":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def stats(self) -> dict:
        """A small scalar summary suitable for ledger records."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "missed": self.missed,
            "truncated": self.truncated,
            "duration_s": round(self.duration_s, 6),
            "unique_stacks": len(self.stacks),
            "threads": len(self.threads),
        }


class StackSampler:
    """Background-thread statistical profiler over ``sys._current_frames``.

    Usage::

        sampler = StackSampler(hz=97.0)
        sampler.start()
        ...
        profile = sampler.stop()
        profile.write("run.prof.json")

    or as a context manager, after which :attr:`profile` holds the
    result.  ``snapshot()`` produces an intermediate :class:`Profile`
    without stopping — that is what the serve ``profile`` admin verb
    returns while the service is live.

    The loop keeps an *absolute* schedule (tick ``k`` fires at
    ``t0 + k / hz``): a slow sample does not shift every later tick,
    and ticks the sampler could not honour are counted in ``missed``
    rather than silently compressing the timeline.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        max_stacks: int = DEFAULT_MAX_STACKS,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sample rate must be positive, got {hz!r}")
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be >= 1, got {max_stacks!r}")
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self.enabled = bool(enabled)
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._stopped_after: float = 0.0
        # Interning tables.  Keys hold code objects alive, which is the
        # point: identity stays valid for the run's duration.
        self._frame_index: Dict[object, int] = {}
        self._frames: List[Tuple[str, str, int]] = []
        self._counts: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        self._thread_names: Dict[int, str] = {}
        self._samples = 0
        self._missed = 0
        self._truncated_count = 0
        self.profile: Optional[Profile] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        if not self.enabled or self.running:
            return self
        self._stop_event.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._loop, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling (idempotent) and return the final profile."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
            if self._started_at is not None:
                self._stopped_after = self._clock() - self._started_at
                self._started_at = None
        self.profile = self.snapshot()
        return self.profile

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        clock = self._clock
        t0 = clock()
        tick = 1
        while True:
            deadline = t0 + tick * interval
            delay = deadline - clock()
            if self._stop_event.wait(delay if delay > 0 else 0):
                return
            self._sample()
            tick += 1
            now = clock()
            behind = now - (t0 + tick * interval)
            if behind > 0:
                skipped = int(behind / interval) + 1
                with self._lock:
                    self._missed += skipped
                tick += skipped

    def _sample(self) -> None:
        own_ids = {threading.get_ident()}
        frames_by_tid = sys._current_frames()
        names = self._thread_names
        unseen = [tid for tid in frames_by_tid if tid not in names]
        if unseen:
            live = {t.ident: t.name for t in threading.enumerate()}
            for tid in unseen:
                names[tid] = live.get(tid, f"thread-{tid}")
        with self._lock:
            captured = False
            for tid, frame in frames_by_tid.items():
                if tid in own_ids:
                    continue
                stack = self._collapse(frame)
                if not stack:
                    continue
                captured = True
                key = (names[tid], stack)
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    overflow = (names[tid], (self._intern_truncated(),))
                    self._counts[overflow] = self._counts.get(overflow, 0) + 1
                    self._truncated_count += 1
            if captured:
                self._samples += 1

    def _collapse(self, frame) -> Tuple[int, ...]:
        """Walk a frame chain leaf->root, returning root-first indices."""
        indices: List[int] = []
        index = self._frame_index
        frames = self._frames
        while frame is not None:
            code = frame.f_code
            idx = index.get(code)
            if idx is None:
                idx = len(frames)
                frames.append(
                    (code.co_name, code.co_filename, code.co_firstlineno)
                )
                index[code] = idx
            indices.append(idx)
            frame = frame.f_back
        indices.reverse()
        return tuple(indices)

    def _intern_truncated(self) -> int:
        idx = self._frame_index.get(TRUNCATED_FRAME)
        if idx is None:
            idx = len(self._frames)
            self._frames.append(TRUNCATED_FRAME)
            self._frame_index[TRUNCATED_FRAME] = idx
        return idx

    # -- export --------------------------------------------------------

    def snapshot(self) -> Profile:
        """An immutable copy of the aggregate so far (safe while live)."""
        with self._lock:
            frames = tuple(Frame(n, f, ln) for n, f, ln in self._frames)
            items = sorted(self._counts.items())
            samples = self._samples
            missed = self._missed
            truncated = self._truncated_count
        if self._started_at is not None:
            duration = self._clock() - self._started_at
        else:
            duration = self._stopped_after
        stacks = tuple(
            Stack(thread=thread, frames=stack, count=count)
            for (thread, stack), count in items
        )
        return Profile(
            hz=self.hz,
            samples=samples,
            missed=missed,
            truncated=truncated,
            duration_s=duration,
            frames=frames,
            stacks=stacks,
        )


def merge_profiles(profiles: Sequence[Profile]) -> Profile:
    """Merge profiles (e.g. across chaos restarts) into one aggregate.

    Frame tables are re-interned by (name, file, line); stack weights
    for identical (thread, stack) keys are summed.  ``hz`` is taken
    from the first profile; callers should only merge same-rate runs.
    """
    if not profiles:
        return Profile(hz=DEFAULT_HZ, samples=0, missed=0, truncated=0,
                       duration_s=0.0, frames=(), stacks=())
    frame_index: Dict[Tuple[str, str, int], int] = {}
    frames: List[Frame] = []
    counts: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    for profile in profiles:
        remap = []
        for frame in profile.frames:
            key = (frame.name, frame.file, frame.line)
            idx = frame_index.get(key)
            if idx is None:
                idx = len(frames)
                frames.append(frame)
                frame_index[key] = idx
            remap.append(idx)
        for stack in profile.stacks:
            key = (stack.thread, tuple(remap[i] for i in stack.frames))
            counts[key] = counts.get(key, 0) + stack.count
    stacks = tuple(
        Stack(thread=thread, frames=stack, count=count)
        for (thread, stack), count in sorted(counts.items())
    )
    return Profile(
        hz=profiles[0].hz,
        samples=sum(p.samples for p in profiles),
        missed=sum(p.missed for p in profiles),
        truncated=sum(p.truncated for p in profiles),
        duration_s=sum(p.duration_s for p in profiles),
        frames=tuple(frames),
        stacks=stacks,
    )
