"""Critical-path analytics over Tracer JSONL files.

Where the sampler (:mod:`repro.obs.prof.sampler`) answers *which code*
was on-CPU, this module answers *which phase* a request actually spent
its wall time in.  It consumes the JSONL traces the repo already emits
— ``repro-dbp replay --trace`` span trees and the serve telemetry
request spans from PR 9 — and reconstructs where the time went:

- **request mode** (serve traces): every ``request`` root span is
  joined with its ``req.<phase>`` children (parse/batch/queue/kernel/
  write, matched on the ``trace`` field) and its end-to-end duration is
  carved into an ordered timeline of *named* slices.  Instants the
  instrumentation does not cover (event-loop hops between phase marks)
  become *derived* slices with stable names (``dispatch``, ``handoff``,
  ``dequeue``, ``resolve``, ``post``) so attribution is exhaustive:
  every nanosecond of every request lands in a named phase.  Queueing
  delay (``batch`` + ``queue``) is aggregated separately — that is the
  number capacity decisions care about.
- **span mode** (replay/phase-profiler traces): the exit-ordered,
  depth-stamped span stream is rebuilt into trees
  (children precede their parent at ``depth + 1``), per-name self time
  is aggregated, and the critical path — the chain of heaviest children
  from the heaviest root — is extracted.

Everything here is a pure function of the trace file: analyzing the
same file twice yields byte-identical reports (sorted aggregation,
fixed float formatting, no clocks).  ``repro-dbp obs critical-path``
is the CLI frontend.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.export import _table
from repro.obs.trace import TraceEvent, read_trace

__all__ = [
    "CriticalReport",
    "PhaseSlice",
    "RequestPath",
    "SpanNode",
    "analyze_events",
    "analyze_trace",
]

#: serve phase-mark children are named ``req.<phase>``
_REQ_PREFIX = "req."

#: pipeline order of the instrumented serve phases (for stable sorting
#: when two phases share a start timestamp)
_PHASE_ORDER = {"parse": 0, "batch": 1, "queue": 2, "kernel": 3, "write": 4}

#: stable names for the uninstrumented gaps between adjacent phases —
#: each is a real place time goes (dispatch into the batcher, the
#: batch->queue hand-off, worker dequeue, future resolution after the
#: kernel, and anything after the write mark)
_GAP_NAMES = {
    ("parse", "batch"): "dispatch",
    ("parse", "queue"): "dispatch",
    ("parse", "write"): "dispatch",
    ("batch", "queue"): "handoff",
    ("queue", "kernel"): "dequeue",
    ("kernel", "write"): "resolve",
}

#: phases counted as queueing delay in request mode
_QUEUE_PHASES = ("batch", "queue")


def _gap_name(prev: Optional[str], nxt: Optional[str]) -> str:
    if prev is None:
        return f"pre-{nxt}" if nxt else "pre"
    if nxt is None:
        return "post"
    return _GAP_NAMES.get((prev, nxt), f"{prev}-{nxt}-gap")


@dataclass(frozen=True)
class PhaseSlice:
    """One named segment of a request's end-to-end timeline."""

    name: str
    t_ns: int
    dur_ns: int
    derived: bool  #: True for gap slices the analyzer named itself


@dataclass(frozen=True)
class RequestPath:
    """One request's fully-attributed critical path."""

    trace: str
    op: Optional[str]
    shard: Optional[int]
    status: Optional[str]
    t_ns: int
    dur_ns: int
    slices: Tuple[PhaseSlice, ...]

    @property
    def attributed_ns(self) -> int:
        return sum(s.dur_ns for s in self.slices)

    @property
    def instrumented_ns(self) -> int:
        return sum(s.dur_ns for s in self.slices if not s.derived)

    @property
    def queueing_ns(self) -> int:
        return sum(s.dur_ns for s in self.slices if s.name in _QUEUE_PHASES)

    @property
    def coverage(self) -> float:
        """Fraction of the end-to-end duration landing in named slices."""
        return self.attributed_ns / self.dur_ns if self.dur_ns else 1.0

    @property
    def instrumented_coverage(self) -> float:
        return self.instrumented_ns / self.dur_ns if self.dur_ns else 1.0

    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "op": self.op,
            "shard": self.shard,
            "status": self.status,
            "t_ns": self.t_ns,
            "dur_ns": self.dur_ns,
            "coverage": round(self.coverage, 6),
            "instrumented_coverage": round(self.instrumented_coverage, 6),
            "queueing_ns": self.queueing_ns,
            "slices": [
                {
                    "name": s.name,
                    "t_ns": s.t_ns,
                    "dur_ns": s.dur_ns,
                    "derived": s.derived,
                }
                for s in self.slices
            ],
        }


@dataclass
class SpanNode:
    """One span with its reconstructed children (span mode)."""

    event: TraceEvent
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_ns(self) -> int:
        child_ns = sum(c.event.dur_ns for c in self.children)
        return max(0, self.event.dur_ns - child_ns)


@dataclass
class CriticalReport:
    """The result of :func:`analyze_trace` (either mode)."""

    path: str
    mode: str  #: ``"requests"`` or ``"spans"``
    events: int
    requests: List[RequestPath] = field(default_factory=list)
    #: per-phase aggregate: name -> {count, total_ns, max_ns, derived}
    phases: Dict[str, dict] = field(default_factory=dict)
    #: span mode: per-name aggregate {count, total_ns, self_ns, max_ns}
    names: Dict[str, dict] = field(default_factory=dict)
    #: span mode: the heaviest root's heaviest-child chain
    critical_path: List[dict] = field(default_factory=list)
    orphans: int = 0  #: spans whose parent was evicted from the ring

    def to_dict(self) -> dict:
        out = {
            "schema": 1,
            "path": self.path,
            "mode": self.mode,
            "events": self.events,
        }
        if self.mode == "requests":
            total_ns = sum(r.dur_ns for r in self.requests)
            out["requests"] = [r.to_dict() for r in self.requests]
            out["phases"] = self.phases
            out["summary"] = {
                "requests": len(self.requests),
                "total_ns": total_ns,
                "queueing_ns": sum(r.queueing_ns for r in self.requests),
                "min_coverage": round(
                    min((r.coverage for r in self.requests), default=1.0), 6
                ),
                "mean_coverage": round(
                    sum(r.coverage for r in self.requests)
                    / len(self.requests), 6
                ) if self.requests else 1.0,
            }
        else:
            out["names"] = self.names
            out["critical_path"] = self.critical_path
            out["orphans"] = self.orphans
        return out

    def render(self) -> str:
        if self.mode == "requests":
            return self._render_requests()
        return self._render_spans()

    # -- request mode --------------------------------------------------

    def _render_requests(self) -> str:
        n = len(self.requests)
        total_ns = sum(r.dur_ns for r in self.requests)
        queue_ns = sum(r.queueing_ns for r in self.requests)
        lines = [
            f"{self.path}: {n:,} request(s), "
            f"{total_ns / 1e6:.3f} ms end-to-end total",
            "",
            "critical-path phases (aggregated across requests):",
        ]
        rows = []
        for name, agg in sorted(
            self.phases.items(), key=lambda kv: (-kv[1]["total_ns"], kv[0])
        ):
            share = agg["total_ns"] / total_ns if total_ns else 0.0
            mean_us = agg["total_ns"] / agg["count"] / 1e3
            rows.append(
                [
                    name,
                    "derived" if agg["derived"] else "phase",
                    f"{agg['count']:,}",
                    f"{agg['total_ns'] / 1e6:.3f}",
                    f"{mean_us:.2f}",
                    f"{agg['max_ns'] / 1e3:.2f}",
                    f"{100.0 * share:.1f}%",
                ]
            )
        lines += _table(
            ["phase", "kind", "count", "total ms", "mean us", "max us",
             "share"],
            rows,
        )
        min_cov = min((r.coverage for r in self.requests), default=1.0)
        inst_cov = (
            sum(r.instrumented_ns for r in self.requests) / total_ns
            if total_ns
            else 1.0
        )
        lines += [
            "",
            f"queueing delay (batch+queue): {queue_ns / 1e6:.3f} ms "
            f"({100.0 * queue_ns / total_ns if total_ns else 0.0:.1f}% "
            "of end-to-end)",
            f"attribution: {100.0 * min_cov:.1f}% minimum per-request "
            f"({100.0 * inst_cov:.1f}% from instrumented phase marks)",
        ]
        slowest = max(
            self.requests, key=lambda r: (r.dur_ns, r.trace), default=None
        )
        if slowest is not None:
            lines += ["", f"slowest request (trace={slowest.trace}, "
                          f"op={slowest.op}, shard={slowest.shard}, "
                          f"{slowest.dur_ns / 1e3:.2f} us):"]
            for s in slowest.slices:
                marker = "~" if s.derived else " "
                lines.append(
                    f"  {marker}{s.name:<12s} {s.dur_ns / 1e3:>10.2f} us  "
                    f"({100.0 * s.dur_ns / slowest.dur_ns:.1f}%)"
                )
        return "\n".join(lines)

    # -- span mode -----------------------------------------------------

    def _render_spans(self) -> str:
        total_self = sum(a["self_ns"] for a in self.names.values())
        lines = [
            f"{self.path}: {self.events:,} events, "
            f"{sum(a['count'] for a in self.names.values()):,} spans "
            f"({self.orphans} orphaned)",
            "",
            "self time by span name:",
        ]
        rows = []
        for name, agg in sorted(
            self.names.items(), key=lambda kv: (-kv[1]["self_ns"], kv[0])
        ):
            share = agg["self_ns"] / total_self if total_self else 0.0
            rows.append(
                [
                    name,
                    f"{agg['count']:,}",
                    f"{agg['self_ns'] / 1e6:.3f}",
                    f"{agg['total_ns'] / 1e6:.3f}",
                    f"{agg['max_ns'] / 1e3:.2f}",
                    f"{100.0 * share:.1f}%",
                ]
            )
        lines += _table(
            ["name", "count", "self ms", "total ms", "max us", "self share"],
            rows,
        )
        if self.critical_path:
            lines += ["", "critical path (heaviest chain of the heaviest "
                          "root):"]
            for hop in self.critical_path:
                indent = "  " * (hop["depth"] + 1)
                lines.append(
                    f"{indent}{hop['name']}  {hop['dur_ns'] / 1e6:.3f} ms "
                    f"(self {hop['self_ns'] / 1e6:.3f} ms)"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Request mode
# ---------------------------------------------------------------------- #
def _attribute_request(
    root: TraceEvent, children: List[TraceEvent]
) -> RequestPath:
    """Carve ``root``'s duration into named, gap-free slices."""
    t0, t1 = root.t_ns, root.end_ns
    ordered = sorted(
        children,
        key=lambda ev: (
            ev.t_ns,
            _PHASE_ORDER.get(ev.name[len(_REQ_PREFIX):], 99),
            ev.name,
        ),
    )
    slices: List[PhaseSlice] = []
    cursor = t0
    prev: Optional[str] = None
    for ev in ordered:
        phase = ev.name[len(_REQ_PREFIX):]
        start = max(ev.t_ns, cursor)
        end = min(ev.end_ns, t1)
        if start > cursor:
            slices.append(
                PhaseSlice(_gap_name(prev, phase), cursor, start - cursor,
                           derived=True)
            )
            cursor = start
        if end > cursor:
            slices.append(
                PhaseSlice(phase, cursor, end - cursor, derived=False)
            )
            cursor = end
        prev = phase
    if cursor < t1:
        slices.append(
            PhaseSlice(_gap_name(prev, None), cursor, t1 - cursor,
                       derived=True)
        )
    fields = root.fields or {}
    return RequestPath(
        trace=str(fields.get("trace", "?")),
        op=fields.get("op"),
        shard=fields.get("shard"),
        status=fields.get("status"),
        t_ns=t0,
        dur_ns=root.dur_ns,
        slices=tuple(slices),
    )


def _analyze_requests(
    path: str, events: Sequence[TraceEvent]
) -> CriticalReport:
    roots = [
        ev for ev in events if ev.kind == "span" and ev.name == "request"
    ]
    children: Dict[str, List[TraceEvent]] = {}
    for ev in events:
        if ev.kind == "span" and ev.name.startswith(_REQ_PREFIX):
            trace = str((ev.fields or {}).get("trace", "?"))
            children.setdefault(trace, []).append(ev)
    requests = [
        _attribute_request(
            root, children.get(str((root.fields or {}).get("trace", "?")), [])
        )
        for root in roots
    ]
    requests.sort(key=lambda r: (r.t_ns, r.trace))
    phases: Dict[str, dict] = {}
    for req in requests:
        for s in req.slices:
            agg = phases.setdefault(
                s.name,
                {"count": 0, "total_ns": 0, "max_ns": 0,
                 "derived": s.derived},
            )
            agg["count"] += 1
            agg["total_ns"] += s.dur_ns
            agg["max_ns"] = max(agg["max_ns"], s.dur_ns)
    return CriticalReport(
        path=path,
        mode="requests",
        events=len(events),
        requests=requests,
        phases=phases,
    )


# ---------------------------------------------------------------------- #
# Span mode
# ---------------------------------------------------------------------- #
def _build_forest(
    events: Sequence[TraceEvent],
) -> Tuple[List[SpanNode], int]:
    """Rebuild span trees from the exit-ordered, depth-stamped stream.

    Children close before their parent and carry ``depth + 1``, so when
    a span at depth ``d`` arrives, every pending node at ``d + 1``
    recorded since the parent opened belongs to it.  Pending nodes the
    parent's window does not contain (their parent was evicted from the
    ring) are counted as orphans instead of being misattached.
    """
    pending: Dict[int, List[SpanNode]] = {}
    orphans = 0
    for ev in events:
        if ev.kind != "span":
            continue
        node = SpanNode(ev)
        candidates = pending.pop(ev.depth + 1, [])
        for child in candidates:
            if child.event.t_ns >= ev.t_ns and child.event.end_ns <= ev.end_ns:
                node.children.append(child)
            else:
                orphans += 1
        pending.setdefault(ev.depth, []).append(node)
    roots = pending.pop(0, [])
    orphans += sum(len(v) for v in pending.values())
    return roots, orphans


def _analyze_spans(path: str, events: Sequence[TraceEvent]) -> CriticalReport:
    roots, orphans = _build_forest(events)
    names: Dict[str, dict] = {}

    def visit(node: SpanNode) -> None:
        agg = names.setdefault(
            node.event.name,
            {"count": 0, "total_ns": 0, "self_ns": 0, "max_ns": 0},
        )
        agg["count"] += 1
        agg["total_ns"] += node.event.dur_ns
        agg["self_ns"] += node.self_ns
        agg["max_ns"] = max(agg["max_ns"], node.event.dur_ns)
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)

    critical: List[dict] = []
    if roots:
        node = max(roots, key=lambda n: (n.event.dur_ns, n.event.name))
        depth = 0
        while node is not None:
            critical.append(
                {
                    "name": node.event.name,
                    "depth": depth,
                    "dur_ns": node.event.dur_ns,
                    "self_ns": node.self_ns,
                }
            )
            node = max(
                node.children,
                key=lambda n: (n.event.dur_ns, n.event.name),
                default=None,
            )
            depth += 1
    return CriticalReport(
        path=path,
        mode="spans",
        events=len(events),
        names=names,
        critical_path=critical,
        orphans=orphans,
    )


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #
def analyze_events(
    events: Sequence[TraceEvent], *, path: str = "<memory>"
) -> CriticalReport:
    """Analyze an in-memory event list (request mode when applicable)."""
    has_requests = any(
        ev.kind == "span" and ev.name == "request" for ev in events
    )
    if has_requests:
        return _analyze_requests(path, events)
    return _analyze_spans(path, events)


def analyze_trace(path: Union[str, pathlib.Path]) -> CriticalReport:
    """Analyze a Tracer JSONL file.

    Serve traces (containing ``request`` root spans) get per-request
    phase attribution; other traces get span-tree self-time analysis.
    Raises ``ValueError`` if the file holds no spans at all.
    """
    path = pathlib.Path(path)
    events = read_trace(path)
    spans = [ev for ev in events if ev.kind == "span"]
    if not spans:
        raise ValueError(
            f"{path}: no spans to analyze (events only — was this trace "
            "written with span recording enabled?)"
        )
    return analyze_events(events, path=str(path))
