"""Flamegraph exporters for :class:`repro.obs.prof.sampler.Profile`.

Three renderings of one aggregate:

- :func:`to_collapsed` — Brendan Gregg's collapsed-stack text
  (``thread;root;...;leaf count`` per line), the input format of
  ``flamegraph.pl`` and most flamegraph tooling;
- :func:`to_speedscope` — a `speedscope <https://www.speedscope.app>`_
  file (one ``sampled`` profile per thread) that drag-and-drops into
  the browser viewer;
- :func:`render_top` — a terminal table of the hottest functions with
  *self* (leaf) vs *cumulative* (anywhere-on-stack) weight, the
  profiling analogue of ``obs summarize``.

All three are deterministic: output order is fixed by (weight, label)
sorts, so the same profile always renders to identical bytes.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.export import _table
from repro.obs.prof.sampler import Frame, Profile

__all__ = [
    "SPEEDSCOPE_SCHEMA",
    "frame_label",
    "render_top",
    "to_collapsed",
    "to_speedscope",
    "top_functions",
    "write_speedscope",
]

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def frame_label(frame: Frame, *, short: bool = True) -> str:
    """A one-token label for a frame, safe for collapsed-stack lines.

    Semicolons separate frames in the collapsed format, so they are
    rewritten to ``:`` (the trailing count is split off the *last*
    space by flamegraph tooling, so spaces inside labels are fine).  ``short`` keeps only the
    file's basename — full paths make flamegraph cells unreadable.
    """
    if not frame.file:
        label = frame.name
    else:
        file = os.path.basename(frame.file) if short else frame.file
        label = f"{frame.name} ({file}:{frame.line})"
    return label.replace(";", ":")


def to_collapsed(profile: Profile, *, short: bool = True) -> str:
    """Render as collapsed-stack text, one ``stack count`` per line.

    The thread name is the root frame, so per-thread flame towers stay
    separate.  Lines are sorted, making the output canonical.
    """
    labels = [frame_label(f, short=short) for f in profile.frames]
    lines = []
    for stack in profile.stacks:
        root = stack.thread.replace(";", ":")
        path = ";".join([root] + [labels[i] for i in stack.frames])
        lines.append(f"{path} {stack.count}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def to_speedscope(profile: Profile, *, name: str = "repro-dbp profile") -> dict:
    """Render as a speedscope-format dict (one sampled profile/thread).

    Weights are sample counts; at ``hz`` samples per second a weight of
    ``hz`` is one second of on-CPU time.  The dict round-trips through
    ``json.dumps``/``json.loads`` unchanged.
    """
    frames = [
        {"name": f.name, "file": f.file, "line": f.line}
        for f in profile.frames
    ]
    profiles = []
    for thread in profile.threads:
        samples: List[List[int]] = []
        weights: List[int] = []
        for stack in profile.stacks:
            if stack.thread != thread:
                continue
            samples.append(list(stack.frames))
            weights.append(stack.count)
        profiles.append(
            {
                "type": "sampled",
                "name": thread,
                "unit": "none",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro-dbp obs flame",
        "activeProfileIndex": 0 if profiles else None,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def top_functions(
    profile: Profile, n: Optional[int] = None
) -> List[Tuple[Frame, int, int]]:
    """The hottest frames as ``(frame, self, cumulative)`` rows.

    *self* counts samples where the frame was the leaf (on-CPU);
    *cumulative* counts samples where it appeared anywhere on the
    stack, counted once per sample even under recursion.  Rows sort by
    descending self weight, then cumulative, then label — ties resolve
    deterministically.
    """
    self_w: Dict[int, int] = {}
    cum_w: Dict[int, int] = {}
    for stack in profile.stacks:
        if not stack.frames:
            continue
        leaf = stack.frames[-1]
        self_w[leaf] = self_w.get(leaf, 0) + stack.count
        seen: Set[int] = set(stack.frames)
        for idx in seen:
            cum_w[idx] = cum_w.get(idx, 0) + stack.count
    rows = [
        (profile.frames[idx], self_w.get(idx, 0), cum)
        for idx, cum in cum_w.items()
    ]
    rows.sort(key=lambda r: (-r[1], -r[2], r[0].name, r[0].file, r[0].line))
    return rows[:n] if n is not None else rows


def render_top(profile: Profile, *, top: int = 20) -> str:
    """A terminal top-functions table (self vs cumulative weight)."""
    total = profile.total_weight
    header = (
        f"{profile.samples:,} samples at {profile.hz:g} Hz over "
        f"{profile.duration_s:.2f}s across {len(profile.threads)} thread(s)"
    )
    extras = []
    if profile.missed:
        extras.append(f"{profile.missed:,} ticks missed")
    if profile.truncated:
        extras.append(f"{profile.truncated:,} samples truncated")
    if extras:
        header += f" ({', '.join(extras)})"
    lines = [header, ""]
    if not total:
        lines.append("(no samples captured)")
        return "\n".join(lines)
    rows = []
    for frame, self_count, cum_count in top_functions(profile, top):
        location = (
            f"{os.path.basename(frame.file)}:{frame.line}"
            if frame.file
            else "-"
        )
        rows.append(
            [
                frame.name,
                location,
                f"{self_count:,}",
                f"{100.0 * self_count / total:.1f}%",
                f"{cum_count:,}",
                f"{100.0 * cum_count / total:.1f}%",
            ]
        )
    lines += _table(
        ["function", "location", "self", "self%", "cum", "cum%"], rows
    )
    return "\n".join(lines)


def write_speedscope(profile: Profile, path, *, name: str = "repro-dbp profile"):
    """Serialise :func:`to_speedscope` output to ``path``; returns it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_speedscope(profile, name=name),
                               sort_keys=True) + "\n")
    return path
