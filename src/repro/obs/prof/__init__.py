"""Continuous profiling plane: sampling, flamegraphs, critical paths.

Three pure-stdlib modules:

- :mod:`repro.obs.prof.sampler` — :class:`StackSampler`, a
  background-thread statistical profiler over ``sys._current_frames``
  (default 97 Hz) producing immutable :class:`Profile` aggregates with
  drop-free bounded memory;
- :mod:`repro.obs.prof.flame` — exporters to collapsed-stack text,
  speedscope JSON, and a terminal top-functions table;
- :mod:`repro.obs.prof.critical` — span-tree reconstruction and
  critical-path/phase attribution over Tracer JSONL files, including
  the serve telemetry request spans.

CLI frontends: ``repro-dbp run/replay/serve --sample-hz``,
``repro-dbp obs flame`` and ``repro-dbp obs critical-path``.  The
overhead contract (sampling on vs off on the 1e5-item replay path) is
frozen by ``benchmarks/bench_profiler.py`` and gated in CI.
"""

from .critical import (
    CriticalReport,
    PhaseSlice,
    RequestPath,
    SpanNode,
    analyze_events,
    analyze_trace,
)
from .flame import (
    SPEEDSCOPE_SCHEMA,
    frame_label,
    render_top,
    to_collapsed,
    to_speedscope,
    top_functions,
    write_speedscope,
)
from .sampler import (
    DEFAULT_HZ,
    DEFAULT_MAX_STACKS,
    Frame,
    Profile,
    Stack,
    StackSampler,
    merge_profiles,
)

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_MAX_STACKS",
    "Frame",
    "Profile",
    "Stack",
    "StackSampler",
    "merge_profiles",
    "SPEEDSCOPE_SCHEMA",
    "frame_label",
    "render_top",
    "to_collapsed",
    "to_speedscope",
    "top_functions",
    "write_speedscope",
    "CriticalReport",
    "PhaseSlice",
    "RequestPath",
    "SpanNode",
    "analyze_events",
    "analyze_trace",
]
