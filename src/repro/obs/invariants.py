"""Online theory-invariant monitors over the kernel event stream.

The paper's quantitative claims are not just end-of-run assertions — most
of them can be checked *while a simulation executes*, from nothing but
the kernel's event sequence.  :class:`InvariantMonitor` is a
:class:`~repro.core.kernel.KernelListener` that re-derives, event by
event, its own copy of the accounting the kernel maintains and checks:

- **capacity** — a committed placement never pushes a bin's load above
  ``capacity`` (beyond the shared ``LOAD_EPS`` tolerance);
- **clock** — time never moves backwards;
- **on-count** — the open-bin count moves by exactly ±1 per
  open/close, never goes negative, and every closed bin was empty;
- **cost-identity** — the kernel's O(1) running-cost identity
  ``Σ_open (t − opened_at) = |open|·t − Σ_open opened_at`` agrees with
  the monitor's independently recomputed usage (checked at every bin
  close against the bound source, see :meth:`bind`);
- **usage** — the per-bin usage reported at close equals
  ``closed_at − opened_at``;
- **span-cost** (final) — ``span(σ) ≤ cost`` (DESIGN.md §2: a bin is
  open whenever an item is active);
- **demand-cost** (final) — ``d(σ)/capacity ≤ cost`` (utilisation
  never exceeds 1, so space–time demand lower-bounds usage time);
- **ratio-bound** (final, per-algorithm) — ``cost ≤ ρ(μ)·(d(σ) +
  span(σ))`` for the algorithms Table 1 proves a ratio ρ(μ) for.  The
  check is sound because with repacking ``OPT_R = ∫⌈L(t)⌉dt ≤ d + span``,
  so ``ALG ≤ ρ·OPT_R ≤ ρ·(d + span)``.

A violation never crashes the run by default: it is appended to
:attr:`InvariantMonitor.violations` and — when a
:class:`~repro.obs.trace.Tracer` is attached — emitted as a structured
``invariant.violation`` trace event, so the ledger and the ``obs
regress`` sentinel can gate on it.  Pass ``strict=True`` to raise
:class:`InvariantViolationError` at the first violation instead (useful
in tests and adversarial searches).

The monitor is pure observation (listeners receive events, they do not
vote) and O(1) per event; its bookkeeping is a handful of floats, so it
is safe to leave attached on multi-million-event replays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis.theory import (
    cdff_aligned_upper_bound,
    ff_nonclairvoyant_upper_bound,
    ha_upper_bound,
)
from ..core.bins import LOAD_EPS, Bin
from ..core.errors import ReproError
from ..core.item import Item
from ..core.kernel import KernelListener

__all__ = [
    "InvariantMonitor",
    "InvariantViolationError",
    "Violation",
    "RATIO_BOUNDS",
    "ratio_bound_for",
]


class InvariantViolationError(ReproError):
    """A theory invariant failed while ``strict=True`` was set."""


@dataclass(frozen=True, slots=True)
class Violation:
    """One observed invariant failure (structured, JSON-friendly)."""

    invariant: str  #: e.g. ``"capacity"``, ``"cost-identity"``
    time: float  #: simulation clock when detected (-inf if pre-stream)
    message: str
    observed: Optional[float] = None
    expected: Optional[float] = None
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {
            "invariant": self.invariant,
            "time": self.time if math.isfinite(self.time) else None,
            "message": self.message,
            "observed": self.observed,
            "expected": self.expected,
        }
        if self.context:
            d["context"] = self.context
        return d


#: algorithm name -> μ ↦ provable competitive-ratio bound (Table 1).
#: Only algorithms the paper (or its cited work) proves an upper bound
#: for appear here; anything else skips the ratio-bound check.
RATIO_BOUNDS: Dict[str, Callable[[float], float]] = {
    "HybridAlgorithm": ha_upper_bound,
    "HA": ha_upper_bound,
    "CDFF": cdff_aligned_upper_bound,
    "StaticRowsCDFF": cdff_aligned_upper_bound,
    "FirstFit": ff_nonclairvoyant_upper_bound,
}


def ratio_bound_for(algorithm) -> Optional[Callable[[float], float]]:
    """The Table-1 ratio bound for an algorithm (object or name), if any."""
    name = algorithm if isinstance(algorithm, str) else getattr(
        algorithm, "name", type(algorithm).__name__
    )
    return RATIO_BOUNDS.get(name)


class InvariantMonitor(KernelListener):
    """Watch a live kernel event stream and check theory bounds online.

    Parameters
    ----------
    capacity:
        Bin capacity of the monitored run (1.0 in the paper).
    algorithm:
        Optional algorithm object or name; selects the Table-1 ratio
        bound via :data:`RATIO_BOUNDS` unless ``bound`` is given.
    bound:
        Explicit μ ↦ ratio-bound callable; overrides ``algorithm``.
    strict:
        Raise :class:`InvariantViolationError` at the first violation
        instead of recording it.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every violation is
        additionally emitted as a structured ``invariant.violation``
        trace event.
    rel_tol:
        Relative tolerance for the floating-point comparisons
        (cost identity, span/demand/ratio bounds).

    Use :meth:`bind` to point the monitor at the kernel (or engine)
    whose O(1) ``cost_so_far`` should be cross-checked; the kernel does
    this automatically for any attached listener that defines ``bind``.
    Call :meth:`finalize` once the stream is drained to run the
    end-of-run checks and collect :meth:`verdicts`.
    """

    timed = False

    def __init__(
        self,
        *,
        capacity: float = 1.0,
        algorithm=None,
        bound: Optional[Callable[[float], float]] = None,
        strict: bool = False,
        tracer=None,
        rel_tol: float = 1e-6,
    ) -> None:
        self.capacity = capacity
        self.bound = bound if bound is not None else (
            ratio_bound_for(algorithm) if algorithm is not None else None
        )
        self.strict = strict
        self.tracer = tracer
        self.rel_tol = rel_tol
        self.violations: List[Violation] = []
        self.checks = 0  #: individual invariant evaluations so far
        self._source = None  # object exposing cost_so_far (kernel/engine)
        # independently re-derived accounting
        self._time = -math.inf
        self._opened_at: Dict[int, float] = {}
        self._active_items: Dict[int, int] = {}  # bin uid -> live items
        self._opened = 0
        self._closed = 0
        self._arrivals = 0
        self._departures = 0
        self._closed_usage = 0.0
        self._sum_opened_at = 0.0
        self._span = 0.0
        self._demand = 0.0
        self._min_len = math.inf
        self._max_len = 0.0
        self._finalized = False
        self._partial = False  # attached mid-stream: suffix-only view

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def bind(self, source) -> None:
        """Attach the run whose O(1) ``cost_so_far`` is cross-checked.

        ``source`` is anything exposing ``cost_so_far`` (a
        :class:`~repro.core.kernel.PlacementKernel` or an engine facade);
        the kernel calls this automatically when the monitor is attached
        as a listener.

        If the source already carries state — a mid-stream attach, e.g.
        after a checkpoint resume — the monitor adopts the currently
        open bins and the accrued cost so the per-event checks (on-count,
        capacity, cost-identity) stay sound, and marks itself *partial*:
        the whole-run bound checks (span-cost, demand-cost, ratio-bound)
        are skipped at :meth:`finalize`, because the monitor never saw
        the prefix those bounds quantify over.
        """
        self._source = source
        open_bins = tuple(getattr(source, "open_bins", ()) or ())
        cost = getattr(source, "cost_so_far", 0.0) or 0.0
        if not open_bins and cost <= 0.0:
            return  # pristine source: a normal from-the-start attach
        self._partial = True
        t = getattr(source, "time", -math.inf)
        if math.isfinite(t):
            self._time = max(self._time, t)
        for bin_ in open_bins:
            if bin_.uid in self._opened_at:
                continue
            self._opened_at[bin_.uid] = bin_.opened_at
            self._active_items[bin_.uid] = bin_.n_items
            self._sum_opened_at += bin_.opened_at
        # seed closed usage so recomputed_cost() meets the kernel where
        # it stands; from here on both sides evolve in lockstep
        open_n = len(self._opened_at)
        now = self._time if math.isfinite(self._time) else 0.0
        self._closed_usage = cost - (open_n * now - self._sum_opened_at)

    # ------------------------------------------------------------------ #
    # Derived quantities (exposed for tests and the ledger)
    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def span(self) -> float:
        """Online span(σ): measure of time with at least one open bin."""
        return self._span

    @property
    def demand(self) -> float:
        """Online d(σ): Σ size·length over *departed* items so far."""
        return self._demand

    @property
    def mu(self) -> Optional[float]:
        """max/min interval-length ratio over departed items, if any."""
        if not self._max_len or not math.isfinite(self._min_len):
            return None
        return self._max_len / max(self._min_len, 1e-300)

    def recomputed_cost(self) -> float:
        """Total usage re-derived from events (closed + open up to now)."""
        open_n = len(self._opened_at)
        if not open_n:
            return self._closed_usage
        t = self._time if math.isfinite(self._time) else 0.0
        return self._closed_usage + open_n * t - self._sum_opened_at

    # ------------------------------------------------------------------ #
    # Violation plumbing
    # ------------------------------------------------------------------ #
    def _violation(
        self,
        invariant: str,
        message: str,
        *,
        observed: Optional[float] = None,
        expected: Optional[float] = None,
        **context,
    ) -> None:
        v = Violation(
            invariant=invariant,
            time=self._time,
            message=message,
            observed=observed,
            expected=expected,
            context=context,
        )
        self.violations.append(v)
        if self.tracer is not None:
            self.tracer.event(
                "invariant.violation",
                invariant=invariant,
                message=message,
                observed=observed,
                expected=expected,
                **context,
            )
        if self.strict:
            raise InvariantViolationError(
                f"invariant {invariant!r} violated at t={self._time:g}: "
                f"{message}"
            )

    def _close_enough(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.rel_tol * max(1.0, abs(a), abs(b))

    # ------------------------------------------------------------------ #
    # KernelListener callbacks
    # ------------------------------------------------------------------ #
    def on_advance(self, t: float) -> None:
        self.checks += 1
        if math.isfinite(self._time):
            if t < self._time:
                self._violation(
                    "clock",
                    f"clock moved backwards: {self._time:g} -> {t:g}",
                    observed=t,
                    expected=self._time,
                )
                return
            if self._opened_at:
                self._span += t - self._time
        self._time = t

    def on_open(self, bin_: Bin) -> None:
        self.checks += 1
        if bin_.uid in self._opened_at:
            self._violation(
                "on-count",
                f"bin {bin_.uid} opened twice",
                context={"bin": bin_.uid},
            )
        self._opened += 1
        self._opened_at[bin_.uid] = bin_.opened_at
        self._sum_opened_at += bin_.opened_at
        self._active_items.setdefault(bin_.uid, 0)

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        self._arrivals += 1
        self.checks += 1
        if bin_.load > self.capacity + LOAD_EPS:
            self._violation(
                "capacity",
                f"bin {bin_.uid} load {bin_.load:.12g} exceeds capacity "
                f"{self.capacity:g}",
                observed=bin_.load,
                expected=self.capacity,
                bin=bin_.uid,
                item=item.uid,
            )
        if not opened and bin_.uid not in self._opened_at:
            self._violation(
                "on-count",
                f"placement into bin {bin_.uid} which never opened",
                bin=bin_.uid,
            )
        self._active_items[bin_.uid] = self._active_items.get(bin_.uid, 0) + 1

    def on_departure(
        self,
        uid: int,
        removed: Item,
        bin_: Bin,
        t: float,
        closed: bool,
        elapsed: float,
    ) -> None:
        self._departures += 1
        length = t - removed.arrival
        self._demand += removed.size * length
        if length > 0:
            if length < self._min_len:
                self._min_len = length
            if length > self._max_len:
                self._max_len = length
        if closed:
            # the kernel fires on_close *before* this callback; the
            # closing item's count was consumed there already
            return
        n = self._active_items.get(bin_.uid, 0) - 1
        if n <= 0:
            self.checks += 1
            self._violation(
                "on-count",
                f"departure left bin {bin_.uid} with {n} item(s) but the "
                "kernel did not close it",
                observed=float(n),
                bin=bin_.uid,
                item=uid,
            )
            n = max(n, 0)
        self._active_items[bin_.uid] = n

    def on_close(
        self, bin_: Bin, t: float, usage: float, peak: float, n_items: int
    ) -> None:
        self.checks += 1
        opened_at = self._opened_at.pop(bin_.uid, None)
        if opened_at is None:
            self._violation(
                "on-count",
                f"bin {bin_.uid} closed but was never opened",
                bin=bin_.uid,
            )
            return
        self._closed += 1
        # a bin closes the instant its last item departs, and on_close
        # precedes that item's on_departure — exactly one live item here
        live = self._active_items.pop(bin_.uid, 0)
        if live != 1:
            self._violation(
                "on-count",
                f"bin {bin_.uid} closed with {live} live item(s); a bin "
                "must close exactly when its last item departs",
                observed=float(live),
                expected=1.0,
                bin=bin_.uid,
            )
        expected_usage = t - opened_at
        if not self._close_enough(usage, expected_usage):
            self._violation(
                "usage",
                f"bin {bin_.uid} reported usage {usage:g}, but "
                f"closed_at - opened_at = {expected_usage:g}",
                observed=usage,
                expected=expected_usage,
                bin=bin_.uid,
            )
        self._closed_usage += expected_usage
        self._sum_opened_at -= opened_at
        if not self._opened_at:
            self._sum_opened_at = 0.0  # mirror the kernel's idle reset
        if self._source is not None:
            self.checks += 1
            kernel_cost = self._source.cost_so_far
            mine = self.recomputed_cost()
            if not self._close_enough(kernel_cost, mine):
                self._violation(
                    "cost-identity",
                    f"kernel O(1) cost {kernel_cost:.12g} disagrees with "
                    f"recomputed usage {mine:.12g}",
                    observed=kernel_cost,
                    expected=mine,
                )

    # ------------------------------------------------------------------ #
    # End-of-run checks and export
    # ------------------------------------------------------------------ #
    def finalize(self) -> List[Violation]:
        """Run the end-of-run bound checks; returns all violations.

        Idempotent: the final checks run once, further calls only return
        the accumulated list.
        """
        if self._finalized:
            return self.violations
        self._finalized = True
        if self._opened_at:
            self.checks += 1
            self._violation(
                "on-count",
                f"{len(self._opened_at)} bin(s) still open at finalize",
                observed=float(len(self._opened_at)),
                expected=0.0,
            )
        if self._partial:
            # a suffix-only monitor has no whole-run span/demand/μ to
            # hold the global bounds against
            return self.violations
        cost = self.recomputed_cost()
        tol = self.rel_tol * max(1.0, cost)
        self.checks += 1
        if self._span > cost + tol:
            self._violation(
                "span-cost",
                f"span(σ) = {self._span:g} exceeds cost = {cost:g}",
                observed=self._span,
                expected=cost,
            )
        self.checks += 1
        demand_bound = self._demand / self.capacity
        if demand_bound > cost + tol:
            self._violation(
                "demand-cost",
                f"d(σ)/capacity = {demand_bound:g} exceeds cost = {cost:g}",
                observed=demand_bound,
                expected=cost,
            )
        mu = self.mu
        if self.bound is not None and mu is not None and cost > 0:
            self.checks += 1
            # sound upper bound: OPT_R = ∫⌈L(t)⌉dt ≤ d/capacity + span
            opt_upper = demand_bound + self._span
            limit = self.bound(mu) * opt_upper
            if cost > limit + tol:
                self._violation(
                    "ratio-bound",
                    f"cost = {cost:g} exceeds ρ(μ={mu:g})·(d+span) = "
                    f"{limit:g}",
                    observed=cost,
                    expected=limit,
                )
        return self.violations

    def verdicts(self) -> dict:
        """A JSON-friendly summary for the run ledger."""
        return {
            "ok": self.ok,
            "checks": self.checks,
            "arrivals": self._arrivals,
            "departures": self._departures,
            "bins_opened": self._opened,
            "bins_closed": self._closed,
            "span": self._span,
            "demand": self._demand,
            "mu": self.mu,
            "recomputed_cost": self.recomputed_cost(),
            "finalized": self._finalized,
            "partial": self._partial,
            "violations": [v.to_dict() for v in self.violations],
        }

    # ------------------------------------------------------------------ #
    # Test-only corruption hook
    # ------------------------------------------------------------------ #
    def _corrupt(self, kind: str = "cost", amount: float = 1.0) -> None:
        """Deliberately skew the monitor's internal accounting (tests/CI).

        Exists so the violation path itself is exercisable end to end: a
        corrupted run *must* produce a structured violation and trip the
        ``obs regress`` gate.  Never call this outside tests or the CI
        corruption demo.
        """
        if kind == "cost":
            self._closed_usage += amount
        elif kind == "span":
            self._span += amount
        elif kind == "demand":
            self._demand += amount
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")

    def __repr__(self) -> str:
        state = "strict" if self.strict else "lenient"
        return (
            f"InvariantMonitor({state}, {self.checks} checks, "
            f"{len(self.violations)} violations)"
        )
