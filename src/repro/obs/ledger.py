"""The run ledger: one machine-readable provenance record per run.

Benchmarks and CLI runs used to be write-only — free-form text under
``benchmarks/output/`` and terminal summaries nobody could diff.  The
ledger makes every run (``simulate``/``replay``/``experiment``/
``benchmark``) leave a JSON record behind in a ledger directory
(default ``.ledger/``, overridable with ``--ledger-dir`` or the
``REPRO_LEDGER_DIR`` environment variable):

- **provenance** — git SHA, schema version, run kind, wall-clock stamp;
- **identity** — algorithm, workload/generator, config dict and its
  SHA-256 hash, seed;
- **measurements** — the deterministic metrics snapshot, optional
  :class:`~repro.obs.profile.ProfileReport` numbers (wall/RSS), and the
  invariant verdicts from
  :class:`~repro.obs.invariants.InvariantMonitor`.

Records are written by :class:`LedgerSink`, which speaks the same
``emit(snapshot)`` protocol as every other sink in
:mod:`repro.obs.export` — so anything that can flush metrics can feed
the ledger.

The **regression sentinel** lives here too: :func:`diff_records`
compares two records' deterministic metrics with per-metric relative
tolerances, and :func:`regress` matches a ledger directory against a
frozen baseline (``.ledger/baseline.json``), failing on cost drift or
new invariant violations.  ``repro-dbp obs diff`` / ``obs regress`` and
the CI gate are thin wrappers over these functions.

Wall-clock sections (``timings``, ``wall_s``, ``peak_rss_kb``, profile
phases) are carried in records for humans but **never gated on** — only
quantities that are pure functions of the event sequence participate in
drift detection.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "LEDGER_ENV",
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_TOLERANCES",
    "RunRecord",
    "LedgerSink",
    "resolve_ledger_dir",
    "git_sha",
    "config_hash",
    "read_record",
    "read_ledger",
    "read_baseline",
    "flatten_metrics",
    "Drift",
    "RegressReport",
    "diff_records",
    "regress",
    "render_drifts",
    "parse_tolerances",
]

#: environment variable redirecting ledger writes (tests point it at tmpdirs)
LEDGER_ENV = "REPRO_LEDGER_DIR"
#: ledger directory used when neither a flag nor the env var is given
DEFAULT_LEDGER_DIR = ".ledger"
#: record schema version (bump on incompatible field changes)
SCHEMA_VERSION = 1

#: metric-pattern -> relative tolerance used by the sentinel.  Patterns
#: are ``fnmatch``-style over flattened dotted keys; first match wins,
#: in most-specific-first order.  Anything unmatched defaults to exact.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "metrics.cost": 1e-9,
    "metrics.util_area": 1e-9,
    "metrics.histograms.*mean": 1e-9,
    "invariants.span": 1e-9,
    "invariants.demand": 1e-9,
    "invariants.recomputed_cost": 1e-9,
    "invariants.mu": 1e-9,
}

#: flattened-key prefixes excluded from drift detection (wall-clock /
#: provenance noise, never deterministic across machines)
NONDETERMINISTIC_PREFIXES = (
    "metrics.timings",
    "metrics.telemetry",
    "profile",
    "wall_s",
    "peak_rss_kb",
)


def resolve_ledger_dir(
    explicit: Union[str, pathlib.Path, None] = None,
) -> pathlib.Path:
    """The ledger directory: explicit flag > ``REPRO_LEDGER_DIR`` > default."""
    if explicit is not None:
        return pathlib.Path(explicit)
    env = os.environ.get(LEDGER_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path(DEFAULT_LEDGER_DIR)


def git_sha(cwd: Union[str, pathlib.Path, None] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repo / no git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def config_hash(config: Optional[dict]) -> str:
    """A stable SHA-256 over a (JSON-able) config dict."""
    return hashlib.sha256(_canonical(config or {}).encode()).hexdigest()[:16]


@dataclass
class RunRecord:
    """One run's provenance + deterministic measurements (JSON-friendly)."""

    kind: str  #: "simulate" | "replay" | "pack" | "experiment" | "benchmark"
    algorithm: str
    generator: str  #: workload/generator/trace identity (free-form)
    config: dict = field(default_factory=dict)
    seed: Optional[int] = None
    metrics: dict = field(default_factory=dict)
    invariants: Optional[dict] = None
    profile: Optional[dict] = None
    wall_s: Optional[float] = None
    peak_rss_kb: Optional[float] = None
    git: Optional[str] = None
    created_unix: Optional[float] = None
    schema: int = SCHEMA_VERSION

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """Identity used to match records against a baseline."""
        return (self.kind, self.algorithm, self.generator,
                config_hash(self.config))

    @property
    def run_id(self) -> str:
        """Content hash over the deterministic fields."""
        return hashlib.sha256(
            _canonical(
                {
                    "kind": self.kind,
                    "algorithm": self.algorithm,
                    "generator": self.generator,
                    "config": self.config,
                    "seed": self.seed,
                    "metrics": self.metrics,
                    "invariants": self.invariants,
                }
            ).encode()
        ).hexdigest()[:12]

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "run_id": self.run_id,
            "algorithm": self.algorithm,
            "generator": self.generator,
            "config": self.config,
            "config_hash": config_hash(self.config),
            "seed": self.seed,
            "git": self.git,
            "created_unix": self.created_unix,
            "wall_s": self.wall_s,
            "peak_rss_kb": self.peak_rss_kb,
            "metrics": self.metrics,
            "invariants": self.invariants,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunRecord":
        return cls(
            kind=d.get("kind", "?"),
            algorithm=d.get("algorithm", "?"),
            generator=d.get("generator", "?"),
            config=d.get("config", {}) or {},
            seed=d.get("seed"),
            metrics=d.get("metrics", {}) or {},
            invariants=d.get("invariants"),
            profile=d.get("profile"),
            wall_s=d.get("wall_s"),
            peak_rss_kb=d.get("peak_rss_kb"),
            git=d.get("git"),
            created_unix=d.get("created_unix"),
            schema=d.get("schema", SCHEMA_VERSION),
        )

    def write(
        self, ledger_dir: Union[str, pathlib.Path, None] = None
    ) -> pathlib.Path:
        """Persist this record as ``<dir>/<kind>-<run_id>.json``."""
        directory = resolve_ledger_dir(ledger_dir)
        directory.mkdir(parents=True, exist_ok=True)
        safe_kind = "".join(
            c if c.isalnum() or c in "._-" else "_" for c in self.kind
        )
        path = directory / f"{safe_kind}-{self.run_id}.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @property
    def n_violations(self) -> int:
        inv = self.invariants or {}
        return len(inv.get("violations", ()))


def read_record(path: Union[str, pathlib.Path]) -> RunRecord:
    """Load one record file; raises ``ValueError`` on damaged content."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a ledger record: {exc}") from exc
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(f"{path}: not a ledger record (no 'kind' field)")
    return RunRecord.from_dict(data)


def read_ledger(
    ledger_dir: Union[str, pathlib.Path, None] = None,
) -> List[RunRecord]:
    """All records in a ledger directory, sorted by (key, run_id).

    ``baseline.json`` (the frozen comparison target) is skipped.
    """
    directory = resolve_ledger_dir(ledger_dir)
    records: List[RunRecord] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        if path.name == "baseline.json":
            continue
        records.append(read_record(path))
    records.sort(key=lambda r: (r.key, r.run_id))
    return records


def read_baseline(path: Union[str, pathlib.Path]) -> List[RunRecord]:
    """Load a frozen baseline file: ``{"records": [...]}`` or a list."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a baseline file: {exc}") from exc
    if isinstance(data, dict):
        data = data.get("records", [])
    if not isinstance(data, list):
        raise ValueError(f"{path}: baseline must hold a list of records")
    return [RunRecord.from_dict(d) for d in data]


class LedgerSink:
    """A :class:`~repro.obs.export.MetricsSink` that writes run records.

    Construct with the run's identity; each ``emit(snapshot)`` wraps the
    snapshot into a :class:`RunRecord` (stamping git SHA, wall time and
    any attached profiler/invariant verdicts) and persists it.  The path
    of the most recent record is kept in :attr:`last_path`.
    """

    def __init__(
        self,
        *,
        kind: str,
        algorithm: str,
        generator: str,
        config: Optional[dict] = None,
        seed: Optional[int] = None,
        ledger_dir: Union[str, pathlib.Path, None] = None,
        profiler=None,
        invariants=None,
        wall_s: Optional[float] = None,
        profile_info: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.algorithm = algorithm
        self.generator = generator
        self.config = dict(config or {})
        self.seed = seed
        self.ledger_dir = ledger_dir
        self.profiler = profiler
        self.invariants = invariants
        self.wall_s = wall_s
        #: extra entries merged into the record's ``profile`` section —
        #: the sampler's stats and artifact path land here.  The whole
        #: section sits under :data:`NONDETERMINISTIC_PREFIXES`, so
        #: nothing in it can ever trip the regression sentinel.
        self.profile_info = dict(profile_info or {})
        self.last_path: Optional[pathlib.Path] = None
        self._t0 = time.perf_counter()

    def emit(self, snapshot: dict) -> None:
        profile = None
        wall = (
            self.wall_s
            if self.wall_s is not None
            else time.perf_counter() - self._t0
        )
        rss = None
        if self.profiler is not None:
            report = self.profiler.report()
            profile = report.to_dict()
            wall = report.total_wall_s or wall
            for phase in report.phases:
                if phase.peak_rss_kb is not None:
                    rss = phase.peak_rss_kb
        if self.profile_info:
            profile = dict(profile or {})
            profile.update(self.profile_info)
        verdicts = None
        if self.invariants is not None:
            verdicts = self.invariants.verdicts()
        record = RunRecord(
            kind=self.kind,
            algorithm=self.algorithm,
            generator=self.generator,
            config=self.config,
            seed=self.seed,
            metrics=snapshot,
            invariants=verdicts,
            profile=profile,
            wall_s=wall,
            peak_rss_kb=rss,
            git=git_sha(),
            created_unix=time.time(),
        )
        self.last_path = record.write(self.ledger_dir)


# ---------------------------------------------------------------------- #
# The regression sentinel
# ---------------------------------------------------------------------- #
def flatten_metrics(record: RunRecord) -> Dict[str, float]:
    """Numeric leaves of a record's gated sections, as dotted keys.

    Only ``metrics.*`` and ``invariants.*`` participate; wall-clock
    sections (:data:`NONDETERMINISTIC_PREFIXES`) are dropped, as is the
    raw violation list (its *count* is gated instead).
    """
    flat: Dict[str, float] = {}

    def walk(prefix: str, obj) -> None:
        if any(prefix.startswith(p) for p in NONDETERMINISTIC_PREFIXES):
            return
        if isinstance(obj, bool):
            flat[prefix] = float(obj)
        elif isinstance(obj, (int, float)):
            flat[prefix] = float(obj)
        elif isinstance(obj, dict):
            for k, v in obj.items():
                walk(f"{prefix}.{k}" if prefix else str(k), v)

    walk("metrics", record.metrics)
    inv = dict(record.invariants or {})
    inv.pop("violations", None)
    walk("invariants", inv)
    flat["invariants.n_violations"] = float(record.n_violations)
    return flat


def _tolerance_for(key: str, *tolerance_maps: Dict[str, float]) -> float:
    """First match wins: earlier maps beat later ones, and within a map
    longer (more specific) patterns beat shorter ones."""
    for tolerances in tolerance_maps:
        for pattern in sorted(tolerances, key=len, reverse=True):
            if key == pattern or fnmatch.fnmatch(key, pattern):
                return tolerances[pattern]
    return 0.0


@dataclass(frozen=True, slots=True)
class Drift:
    """One metric's movement between two records."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    rel: float  #: relative drift (inf when one side is missing)
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.rel <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel": self.rel,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


def diff_records(
    baseline: RunRecord,
    current: RunRecord,
    tolerances: Optional[Dict[str, float]] = None,
) -> List[Drift]:
    """Per-metric drift between two records (all metrics, failing first).

    The violation count is special-cased: *new* violations always fail,
    regardless of tolerance configuration.  Caller-supplied patterns
    take precedence over :data:`DEFAULT_TOLERANCES`, so a catch-all
    like ``*=0.1`` really loosens everything.
    """
    tol_maps = (
        (tolerances, DEFAULT_TOLERANCES) if tolerances
        else (DEFAULT_TOLERANCES,)
    )
    a = flatten_metrics(baseline)
    b = flatten_metrics(current)
    drifts: List[Drift] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va is None or vb is None:
            rel = float("inf")
        elif va == vb:
            rel = 0.0
        else:
            rel = abs(vb - va) / max(1e-300, abs(va), abs(vb))
        t = _tolerance_for(key, *tol_maps)
        if key == "invariants.n_violations":
            # new violations are never tolerable; disappearing ones are
            t = float("inf") if (vb or 0.0) <= (va or 0.0) else 0.0
        drifts.append(
            Drift(metric=key, baseline=va, current=vb, rel=rel, tolerance=t)
        )
    drifts.sort(key=lambda d: (d.ok, d.metric))
    return drifts


@dataclass
class RegressReport:
    """Outcome of matching a ledger against a frozen baseline."""

    compared: List[Tuple[RunRecord, RunRecord, List[Drift]]]
    missing: List[RunRecord]  #: baseline keys with no current record
    new: List[RunRecord]  #: current records the baseline doesn't know

    @property
    def failures(self) -> List[Tuple[RunRecord, Drift]]:
        return [
            (cur, d)
            for _, cur, drifts in self.compared
            for d in drifts
            if not d.ok
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines: List[str] = []
        for base, cur, drifts in self.compared:
            bad = [d for d in drifts if not d.ok]
            status = "ok" if not bad else f"{len(bad)} regression(s)"
            lines.append(
                f"{cur.kind}/{cur.algorithm}/{cur.generator} "
                f"[{config_hash(cur.config)}]: {len(drifts)} metrics, "
                f"{status}"
            )
            lines.extend("  " + line for line in render_drifts(bad))
        for rec in self.missing:
            lines.append(
                f"{rec.kind}/{rec.algorithm}/{rec.generator}: baseline "
                "record has no current counterpart (not gated)"
            )
        for rec in self.new:
            lines.append(
                f"{rec.kind}/{rec.algorithm}/{rec.generator}: new record "
                "(absent from baseline, not gated)"
            )
        if not lines:
            lines.append("nothing to compare (empty ledger and baseline)")
        lines.append(
            "regress: PASS" if self.ok else
            f"regress: FAIL ({len(self.failures)} metric(s) drifted)"
        )
        return "\n".join(lines)


def regress(
    current: Iterable[RunRecord],
    baseline: Iterable[RunRecord],
    tolerances: Optional[Dict[str, float]] = None,
) -> RegressReport:
    """Match current records against a baseline by identity key.

    Records pair up on ``(kind, algorithm, generator, config_hash)``.
    Matched pairs are compared with :func:`diff_records`; unmatched
    records on either side are reported but do not gate (adding a new
    benchmark must not break CI; removing one is visible in review).
    """
    by_key: Dict[Tuple, List[RunRecord]] = {}
    for rec in baseline:
        by_key.setdefault(rec.key, []).append(rec)
    compared, new = [], []
    seen = set()
    for rec in current:
        matches = by_key.get(rec.key)
        if not matches:
            new.append(rec)
            continue
        seen.add(rec.key)
        compared.append(
            (matches[0], rec, diff_records(matches[0], rec, tolerances))
        )
    missing = [
        rec
        for key, matches in by_key.items()
        if key not in seen
        for rec in matches
    ]
    return RegressReport(compared=compared, missing=missing, new=new)


def render_drifts(drifts: Iterable[Drift]) -> List[str]:
    """Terminal lines for a drift list (shared by ``obs diff``/``regress``)."""
    lines = []
    for d in drifts:
        mark = "ok " if d.ok else "DRIFT"
        lines.append(
            f"{mark} {d.metric}: {d.baseline!r} -> {d.current!r} "
            f"(rel {d.rel:.3g}, tol {d.tolerance:.3g})"
        )
    return lines


def parse_tolerances(specs: Iterable[str]) -> Dict[str, float]:
    """Parse ``PATTERN=REL`` CLI specs into a tolerance mapping."""
    out: Dict[str, float] = {}
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(
                f"tolerance spec {spec!r} is not of the form PATTERN=REL"
            )
        try:
            out[pattern] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"tolerance spec {spec!r}: {value!r} is not a number"
            ) from exc
    return out
