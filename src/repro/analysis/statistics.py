"""Aggregation statistics for multi-seed experiments.

Competitive-ratio measurements vary across seeds; experiments report a
point estimate with a confidence interval rather than bare means.  This
module provides:

- :func:`summarize` — mean, standard deviation, min/max;
- :func:`bootstrap_ci` — a percentile bootstrap confidence interval for
  the mean (no normality assumption — ratio distributions are skewed);
- :class:`Summary` — the bundle, with compact formatting for tables.

All randomness is seeded; everything is NumPy-vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one measured quantity over seeds."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.3f}"
        return f"{self.mean:.3f} [{self.ci_low:.3f}, {self.ci_high:.3f}]"


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``."""
    xs = np.asarray(values, dtype=float)
    if xs.size == 0:
        raise ValueError("need at least one value")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if xs.size == 1:
        return float(xs[0]), float(xs[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, xs.size, size=(n_resamples, xs.size))
    means = xs[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def summarize(
    values: Sequence[float], *, confidence: float = 0.95, seed: int = 0
) -> Summary:
    """Full summary of a sample (mean, spread, bootstrap CI)."""
    xs = np.asarray(values, dtype=float)
    if xs.size == 0:
        raise ValueError("need at least one value")
    lo, hi = bootstrap_ci(xs, confidence=confidence, seed=seed)
    return Summary(
        n=int(xs.size),
        mean=float(xs.mean()),
        std=float(xs.std(ddof=1)) if xs.size > 1 else 0.0,
        min=float(xs.min()),
        max=float(xs.max()),
        ci_low=lo,
        ci_high=hi,
    )
