"""Analysis: binary strings, competitive ratios, closed-form bounds."""

from .binary_strings import (
    binary,
    expected_max_zero_run,
    lemma59_bound,
    lsb_zero_run,
    max_zero_run,
    max_zero_run_all,
    sample_max_zero_run,
    sum_max_zero_run,
)
from .competitive import (
    GrowthFit,
    RatioEstimate,
    best_law,
    fit_growth,
    measure_ratio,
)
from .statistics import Summary, bootstrap_ci, summarize
from .theory import (
    cdff_aligned_upper_bound,
    cdff_binary_upper_bound,
    ff_nonclairvoyant_upper_bound,
    ha_gn_bound,
    ha_upper_bound,
    log2_safe,
    loglog_mu,
    lower_bound_sqrt_log,
    rentang_upper_bound,
    sqrt_log_mu,
)

__all__ = [
    "binary",
    "max_zero_run",
    "lsb_zero_run",
    "max_zero_run_all",
    "expected_max_zero_run",
    "sum_max_zero_run",
    "sample_max_zero_run",
    "lemma59_bound",
    "RatioEstimate",
    "measure_ratio",
    "GrowthFit",
    "fit_growth",
    "best_law",
    "Summary",
    "bootstrap_ci",
    "summarize",
    "log2_safe",
    "sqrt_log_mu",
    "loglog_mu",
    "ha_upper_bound",
    "ha_gn_bound",
    "cdff_binary_upper_bound",
    "cdff_aligned_upper_bound",
    "rentang_upper_bound",
    "ff_nonclairvoyant_upper_bound",
    "lower_bound_sqrt_log",
]
