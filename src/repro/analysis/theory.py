"""Closed forms of every bound in Table 1, for overlaying on measurements.

Each function maps μ to the corresponding competitive-ratio bound.  The
constants exposed here are the ones the paper's proofs actually yield
(e.g. HA's ratio is at most ``2 + 8√log μ`` against ``OPT_R(σ′)`` before
the 16× reduction loss), so experiments can check the *provable* constants,
not just the asymptotic order.
"""

from __future__ import annotations

import math

__all__ = [
    "log2_safe",
    "sqrt_log_mu",
    "loglog_mu",
    "ha_upper_bound",
    "ha_gn_bound",
    "cdff_binary_upper_bound",
    "cdff_aligned_upper_bound",
    "rentang_upper_bound",
    "ff_nonclairvoyant_upper_bound",
    "lower_bound_sqrt_log",
]


def log2_safe(mu: float) -> float:
    """``max(1, log₂ μ)`` — the paper's ``log μ`` with the μ→1 corner guarded."""
    return max(1.0, math.log2(max(mu, 1.0)))


def sqrt_log_mu(mu: float) -> float:
    """``√log₂ μ`` — the order of Table 1's general-input bounds."""
    return math.sqrt(log2_safe(mu))


def loglog_mu(mu: float) -> float:
    """``log₂ log₂ μ`` (guarded) — the order of the aligned-input bound."""
    return max(1.0, math.log2(log2_safe(mu)))


def ha_gn_bound(mu: float) -> float:
    """Lemma 3.3: HA keeps at most ``2 + 4√log μ`` GN bins open."""
    return 2.0 + 4.0 * sqrt_log_mu(mu)


def ha_upper_bound(mu: float) -> float:
    """Theorem 3.2's explicit constant chain.

    ``HA_t ≤ 2 + 8√log μ · max(1, k_t / 4√log μ) ≤ (2 + 8√log μ)·OPT_R^t(σ′)``
    and Corollary 3.4 loses another factor 16, so
    ``HA(σ) ≤ 16·(2 + 8√log μ)·OPT_R(σ)`` — the provable (loose) constant.
    """
    return 16.0 * (2.0 + 8.0 * sqrt_log_mu(mu))


def cdff_binary_upper_bound(mu: float) -> float:
    """Proposition 5.3: ``CDFF(σ_μ) ≤ (2 log log μ + 1)·OPT_R(σ_μ)``."""
    return 2.0 * loglog_mu(mu) + 1.0


def cdff_aligned_upper_bound(mu: float) -> float:
    """Theorem 5.1's explicit constant: ``(8 + 16 log log μ)·OPT_R(σ)``."""
    return 8.0 + 16.0 * loglog_mu(mu)


def rentang_upper_bound(mu: float, n: int) -> float:
    """Ren & Tang's ``μ^{1/n} + n + 3`` upper bound (μ known)."""
    return mu ** (1.0 / max(n, 1)) + n + 3.0


def ff_nonclairvoyant_upper_bound(mu: float) -> float:
    """Tang et al. [13]: First-Fit is ``μ + 4`` competitive (non-clairvoyant)."""
    return mu + 4.0


def lower_bound_sqrt_log(mu: float) -> float:
    """Theorem 4.3's constant: any online algorithm is at least
    ``√log μ / 8`` competitive against OPT_R on the adversary's input
    (inequality (4): ``OPT_R ≤ 8/√log μ · ON``)."""
    return sqrt_log_mu(mu) / 8.0
