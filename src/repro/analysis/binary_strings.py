"""Binary-string machinery behind CDFF's analysis (Section 5.1).

The paper's surprising observation: on the binary input σ_μ, CDFF's
open-bin count at time ``t⁺`` is exactly ``max_0(binary(t)) + 1`` — one
plus the longest run of zeros in the binary representation of ``t``
(Corollary 5.8).  Averaging over ``t`` reduces Proposition 5.3 to the
longest-zero-run statistics of uniform random bit strings: Lemma 5.9 shows
``E[max_0] ≤ 2 log n`` for ``n`` i.i.d. fair bits, and Corollary 5.10
transfers this to ``Σ_t max_0(binary(t)) ≤ 2 μ log log μ``.

All of those quantities are computed here, both exactly (full enumeration,
vectorised) and by sampling.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "binary",
    "max_zero_run",
    "lsb_zero_run",
    "max_zero_run_all",
    "expected_max_zero_run",
    "sum_max_zero_run",
    "sample_max_zero_run",
    "lemma59_bound",
]


def binary(t: int, width: int) -> str:
    """``binary(t)`` — the ``width``-bit binary representation of ``t``."""
    if t < 0 or (width < 1 and t > 0) or t >= 2**max(width, 0):
        raise ValueError(f"t={t} does not fit in {width} bits")
    return format(t, f"0{width}b")


def max_zero_run(bits: str | int, width: int | None = None) -> int:
    """``max_0(b)`` — longest run of consecutive zeros in a bit string.

    Accepts either a string of 0/1 characters or an integer with an
    explicit ``width``.
    """
    if isinstance(bits, int):
        if width is None:
            raise ValueError("width is required for integer input")
        bits = binary(bits, width)
    best = cur = 0
    for ch in bits:
        if ch == "0":
            cur += 1
            best = max(best, cur)
        elif ch == "1":
            cur = 0
        else:
            raise ValueError(f"not a bit string: {bits!r}")
    return best


def lsb_zero_run(t: int) -> int:
    """Length of the zero run starting at the least significant bit.

    Observation 3: on σ_μ, ``1 + lsb_zero_run(t)`` items arrive at time
    ``t > 0`` (``t = 0`` behaves like a run of all ``log μ`` zeros).
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    if t == 0:
        raise ValueError("t=0 has an unbounded trailing-zero run; handle separately")
    return (t & -t).bit_length() - 1


def max_zero_run_all(n: int) -> np.ndarray:
    """``max_0(b)`` for every ``b ∈ {0,1}^n``, as an array of length 2^n.

    Vectorised dynamic programme over bit positions: for each prefix we
    track the current trailing-zero run and the best run so far.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    size = 1 << n
    values = np.arange(size, dtype=np.uint64)
    best = np.zeros(size, dtype=np.int64)
    cur = np.zeros(size, dtype=np.int64)
    for pos in range(n):
        bit = (values >> np.uint64(pos)) & np.uint64(1)
        cur = np.where(bit == 0, cur + 1, 0)
        best = np.maximum(best, cur)
    return best


def expected_max_zero_run(n: int) -> float:
    """``E[max_0(b)]`` for ``n`` i.i.d. fair bits, exactly (enumeration)."""
    if n > 26:
        raise ValueError(f"exact enumeration over 2^{n} strings is too large")
    return float(max_zero_run_all(n).mean())


def sum_max_zero_run(mu: int) -> int:
    """``Σ_{t=0}^{μ-1} max_0(binary(t))`` with ``log μ``-bit representations.

    This is exactly the quantity Corollary 5.10 bounds by ``2 μ log log μ``.
    """
    if mu < 1 or (mu & (mu - 1)) != 0:
        raise ValueError(f"μ must be a positive power of two, got {mu}")
    n = mu.bit_length() - 1
    if n == 0:
        return 0
    return int(max_zero_run_all(n).sum())


def sample_max_zero_run(
    n: int, samples: int, *, seed: int = 0
) -> np.ndarray:
    """Monte-Carlo samples of ``max_0`` over ``n`` i.i.d. fair bits."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(samples, n), dtype=np.int64)
    best = np.zeros(samples, dtype=np.int64)
    cur = np.zeros(samples, dtype=np.int64)
    for pos in range(n):
        col = bits[:, pos]
        cur = np.where(col == 0, cur + 1, 0)
        best = np.maximum(best, cur)
    return best


def lemma59_bound(n: int) -> float:
    """Lemma 5.9's bound ``2 log₂ n`` on ``E[max_0]`` (``n ≥ 2``)."""
    if n < 2:
        return float(n)  # degenerate: E[max_0] ≤ n trivially
    return 2.0 * math.log2(n)
