"""Competitive-ratio measurement and growth-law fitting.

A measured "competitive ratio" on one input is ``ALG(σ) / OPT(σ)`` for a
chosen OPT reference.  Because exact OPT is not always affordable, ratios
are reported as intervals: dividing by the OPT *upper* bound gives a
certified lower estimate of the ratio, dividing by the OPT *lower* bound a
certified upper estimate.  Experiments aggregate these over seeds and μ
values and fit growth laws (``c·√log μ``, ``c·log log μ``, …) by least
squares to compare against Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.simulation import simulate
from ..core.validate import audit
from ..offline.bounds import OptSandwich
from ..offline.optimal import opt_reference

__all__ = ["RatioEstimate", "measure_ratio", "fit_growth", "GrowthFit"]


@dataclass(frozen=True)
class RatioEstimate:
    """ALG/OPT with OPT known only as a sandwich."""

    algorithm: str
    cost: float
    opt: OptSandwich

    @property
    def lower(self) -> float:
        """Certified lower bound on the true ratio."""
        return self.cost / self.opt.upper if self.opt.upper > 0 else math.inf

    @property
    def upper(self) -> float:
        """Certified upper bound on the true ratio."""
        return self.cost / self.opt.lower if self.opt.lower > 0 else math.inf

    @property
    def point(self) -> float:
        """Best point estimate (against the OPT lower bound, conservative)."""
        return self.upper

    def __str__(self) -> str:
        if self.opt.exact:
            return f"{self.algorithm}: ratio={self.lower:.3f}"
        return f"{self.algorithm}: ratio∈[{self.lower:.3f}, {self.upper:.3f}]"


def measure_ratio(
    algorithm_factory: Callable[[], object],
    instance: Instance,
    *,
    capacity: float = 1.0,
    verify: bool = True,
    max_exact: int = 26,
) -> RatioEstimate:
    """Run the algorithm, audit the packing, and compare with OPT_R."""
    result = simulate(algorithm_factory(), instance, capacity=capacity)
    if verify:
        audit(result)
    opt = opt_reference(instance, capacity=capacity, max_exact=max_exact)
    return RatioEstimate(result.algorithm, result.cost, opt)


@dataclass(frozen=True)
class GrowthFit:
    """Least-squares fit ``ratio ≈ a·g(μ) + b`` for a growth law ``g``."""

    law: str
    a: float
    b: float
    residual: float  #: RMS residual of the fit

    def predict(self, g_value: float) -> float:
        return self.a * g_value + self.b


def fit_growth(
    mus: Sequence[float],
    ratios: Sequence[float],
    law: Callable[[float], float],
    *,
    name: str = "g",
) -> GrowthFit:
    """Fit ``ratio = a·law(μ) + b`` by least squares."""
    x = np.asarray([law(m) for m in mus], dtype=float)
    y = np.asarray(ratios, dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two (μ, ratio) points")
    A = np.column_stack([x, np.ones_like(x)])
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    resid = float(np.sqrt(np.mean((A @ coef - y) ** 2)))
    return GrowthFit(law=name, a=float(coef[0]), b=float(coef[1]), residual=resid)


def best_law(
    mus: Sequence[float],
    ratios: Sequence[float],
    laws: Iterable[tuple[str, Callable[[float], float]]],
) -> GrowthFit:
    """The law with the smallest RMS residual — used to sanity-check that
    measured growth matches the predicted order, not a competing one."""
    fits = [fit_growth(mus, ratios, law, name=name) for name, law in laws]
    return min(fits, key=lambda f: f.residual)
