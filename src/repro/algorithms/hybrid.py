"""The Hybrid Algorithm (HA) — the paper's O(√log μ) contribution.

Algorithm 1 of the paper.  HA classifies each arriving item ``r`` by its
type ``T = (i, c)`` — duration class ``i`` with ``length ∈ (2^{i-1}, 2^i]``
and arrival window ``c`` with ``arrival ∈ ((c-1)·2^i, c·2^i]`` — and keeps
two kinds of bins:

- **GN** (general) bins shared by all types, packed Any-Fit; and
- **CD** (classify-by-duration) bins, each dedicated to a single type.

Upon arrival of ``r`` of type ``T``:

1. if an open CD bin for ``T`` exists, pack ``r`` Any-Fit among the CD bins
   of type ``T`` (opening a new CD bin if none fits);
2. otherwise, if the total load of *active* type-``T`` items (including
   ``r``) is at most the threshold ``1/(2√i)``, pack ``r`` Any-Fit among the
   GN bins (opening a new GN bin if none fits);
3. otherwise open the first CD bin for type ``T`` and put ``r`` in it.

HA needs no advance knowledge of μ — the classification adapts as longer
items arrive.  Lemma 3.3 guarantees the number of open GN bins never
exceeds ``2 + 4√log μ``; the CD bins are charged to OPT through the
departure-alignment reduction (Lemma 3.5), giving Theorem 3.2's
``O(√log μ)`` competitive ratio.

The ``threshold`` and ``rule`` parameters exist for the ablation
experiments (ABL.THRESH, ABL.ANYFIT): the paper's footnote 1 notes any
Any-Fit rule works, and the threshold shape ``1/(2√i)`` is exactly what
balances the GN load sum ``Σ 1/√i ≈ 2√log μ`` against the CD-bin charging
argument.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..core.bins import Bin
from ..core.item import Item
from .anyfit import FIRST_FIT, FitRule
from .base import OnlineAlgorithm, item_type

__all__ = ["HybridAlgorithm", "sqrt_threshold", "GN_TAG", "CD_TAG"]

GN_TAG = "GN"
CD_TAG = "CD"

#: threshold(i) -> max total active type load that may still go to GN bins.
ThresholdFn = Callable[[int], float]


def sqrt_threshold(i: int) -> float:
    """The paper's threshold ``1/(2√i)``."""
    return 1.0 / (2.0 * math.sqrt(i))


class HybridAlgorithm(OnlineAlgorithm):
    """Azar & Vainstein's Hybrid Algorithm (Algorithm 1).

    Parameters
    ----------
    threshold:
        Per-class GN admission threshold; defaults to ``1/(2√i)``.
    rule:
        Any-Fit rule used both over GN bins and over a type's CD bins
        (footnote 1 of the paper).
    """

    def __init__(
        self,
        *,
        threshold: ThresholdFn = sqrt_threshold,
        rule: FitRule = FIRST_FIT,
        name: Optional[str] = None,
    ) -> None:
        self.threshold = threshold
        self.rule = rule
        self.name = name or "HybridAlgorithm"
        self._gn_bins: List[Bin] = []
        self._cd_bins: Dict[tuple[int, int], List[Bin]] = {}
        self._type_load: Dict[tuple[int, int], float] = {}
        self._type_of: Dict[int, tuple[int, int]] = {}
        self._max_gn_open = 0

    def reset(self) -> None:
        self._gn_bins = []
        self._cd_bins = {}
        self._type_load = {}
        self._type_of = {}
        self._max_gn_open = 0

    # ------------------------------------------------------------------ #
    @property
    def max_gn_open(self) -> int:
        """Peak simultaneous GN bins — Lemma 3.3 bounds this by 2+4√log μ."""
        return self._max_gn_open

    def gn_open(self) -> int:
        return len(self._gn_bins)

    def cd_open(self) -> int:
        """k_t — total open CD bins right now (Lemma 3.5's quantity)."""
        return sum(len(v) for v in self._cd_bins.values())

    def active_type_load(self, T: tuple[int, int]) -> float:
        return self._type_load.get(T, 0.0)

    # ------------------------------------------------------------------ #
    def place(self, item: Item, sim) -> Bin:
        T = item_type(item)
        self._type_of[item.uid] = T
        self._type_load[T] = self._type_load.get(T, 0.0) + item.size
        d = self._type_load[T]

        cd = self._cd_bins.get(T)
        if cd:  # an open CD bin for this type exists → CD lane, Any-Fit
            return self._place_cd(item, T, sim)

        i, _ = T
        if d <= self.threshold(i) + 1e-12:
            return self._place_gn(item, sim)

        # threshold crossed: open the first CD bin for this type
        b = sim.open_bin(tag=(CD_TAG, T))
        self._cd_bins.setdefault(T, []).append(b)
        return b

    def _place_gn(self, item: Item, sim) -> Bin:
        candidates = [b for b in self._gn_bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=(GN_TAG,))
        self._gn_bins.append(b)
        self._max_gn_open = max(self._max_gn_open, len(self._gn_bins))
        return b

    def _place_cd(self, item: Item, T: tuple[int, int], sim) -> Bin:
        bins = self._cd_bins.setdefault(T, [])
        candidates = [b for b in bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=(CD_TAG, T))
        bins.append(b)
        return b

    # ------------------------------------------------------------------ #
    def notify_departure(self, item: Item, bin_: Bin, sim) -> None:
        T = self._type_of.pop(item.uid, None)
        if T is not None:
            self._type_load[T] = self._type_load.get(T, 0.0) - item.size
            if self._type_load[T] <= 1e-12:
                self._type_load.pop(T, None)

    def notify_close(self, bin_: Bin, sim) -> None:
        tag = bin_.tag
        if tag and tag[0] == GN_TAG:
            self._gn_bins = [b for b in self._gn_bins if b.uid != bin_.uid]
        elif tag and tag[0] == CD_TAG:
            T = tag[1]
            bins = self._cd_bins.get(T)
            if bins is not None:
                remaining = [b for b in bins if b.uid != bin_.uid]
                if remaining:
                    self._cd_bins[T] = remaining
                else:
                    del self._cd_bins[T]
