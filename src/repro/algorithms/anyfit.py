"""The Any-Fit family: First/Best/Worst/Next/Last/Random-Fit.

These are the classical baselines.  First-Fit is special in two ways:

- in the **non-clairvoyant** setting it is near-optimal — ``μ + 4``
  competitive (Tang et al. [13]), matching the ``μ`` lower bound of
  Li et al. [7] up to an additive constant (Table 1, row 3);
- in the **clairvoyant** setting it is still ``Ω(μ)``-competitive (the
  "Techniques" overview), which is why the paper's HA only uses First-Fit
  as one ingredient.

Each algorithm is expressed as an :class:`AnyFit` with a pluggable *fit
rule* choosing among the open bins that can accommodate the item; this same
rule object is reused inside HA (footnote 1 of the paper: "any Any-Fit
approach ... will work just as well").
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.bins import Bin
from ..core.item import Item
from .base import OnlineAlgorithm

__all__ = [
    "FitRule",
    "FIRST_FIT",
    "BEST_FIT",
    "WORST_FIT",
    "LAST_FIT",
    "AnyFit",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "NextFit",
    "RandomFit",
]

#: A fit rule maps (candidate bins that fit, item) -> chosen bin.
FitRule = Callable[[Sequence[Bin], Item], Bin]


def FIRST_FIT(candidates: Sequence[Bin], item: Item) -> Bin:
    """Earliest-opened bin."""
    return candidates[0]


def BEST_FIT(candidates: Sequence[Bin], item: Item) -> Bin:
    """Fullest bin (smallest residual); ties to the earliest-opened."""
    return min(candidates, key=lambda b: (b.residual(), b.uid))


def WORST_FIT(candidates: Sequence[Bin], item: Item) -> Bin:
    """Emptiest bin (largest residual); ties to the earliest-opened."""
    return max(candidates, key=lambda b: (b.residual(), -b.uid))


def LAST_FIT(candidates: Sequence[Bin], item: Item) -> Bin:
    """Most recently opened bin."""
    return candidates[-1]


# The four classical rules have O(log n) equivalents on the kernel's
# open-bin index; AnyFit dispatches to them through this attribute.
FIRST_FIT.indexed_query = "first_fit"
BEST_FIT.indexed_query = "best_fit"
WORST_FIT.indexed_query = "worst_fit"
LAST_FIT.indexed_query = "last_fit"


class AnyFit(OnlineAlgorithm):
    """Place each item by ``rule`` over all open bins that fit it.

    Opens a new bin only when no open bin fits — the defining Any-Fit
    property.

    The four classical rules carry an ``indexed_query`` attribute naming
    the equivalent :class:`~repro.algorithms.base.SimulationView`
    candidate query, which the placement kernel answers from its
    residual-sorted open-bin index in O(log n); custom rules (and sims
    without the query surface) fall back to the linear candidate scan.
    """

    def __init__(
        self,
        rule: FitRule = FIRST_FIT,
        *,
        name: Optional[str] = None,
        clairvoyant: bool = True,
    ) -> None:
        self.rule = rule
        self.name = name or f"AnyFit[{getattr(rule, '__name__', 'custom')}]"
        self.clairvoyant = clairvoyant
        self._query = getattr(rule, "indexed_query", None)

    def place(self, item: Item, sim) -> Bin:
        query = self._query
        if query is not None:
            lookup = getattr(sim, query, None)
            if lookup is not None:
                found = lookup(item)
                if found is not None:
                    return found
                return sim.open_bin(tag="anyfit")
        candidates = [b for b in sim.open_bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        return sim.open_bin(tag="anyfit")


class FirstFit(AnyFit):
    """Classical First-Fit (paper Section 2's definition).

    With ``clairvoyant=False`` this is exactly the ``μ + 4``-competitive
    algorithm of Table 1's non-clairvoyant row — FF never reads departure
    times, so the flag only controls what the simulator lets it *see*.
    """

    def __init__(self, *, clairvoyant: bool = True) -> None:
        super().__init__(FIRST_FIT, name="FirstFit", clairvoyant=clairvoyant)


class BestFit(AnyFit):
    def __init__(self, *, clairvoyant: bool = True) -> None:
        super().__init__(BEST_FIT, name="BestFit", clairvoyant=clairvoyant)


class WorstFit(AnyFit):
    def __init__(self, *, clairvoyant: bool = True) -> None:
        super().__init__(WORST_FIT, name="WorstFit", clairvoyant=clairvoyant)


class LastFit(AnyFit):
    def __init__(self, *, clairvoyant: bool = True) -> None:
        super().__init__(LAST_FIT, name="LastFit", clairvoyant=clairvoyant)


class NextFit(OnlineAlgorithm):
    """Keep a single active bin; open a new one when the item doesn't fit.

    Not an Any-Fit algorithm (it ignores older bins), included as the
    weakest classical baseline.
    """

    name = "NextFit"

    def __init__(self) -> None:
        self._active: Optional[Bin] = None

    def reset(self) -> None:
        self._active = None

    def place(self, item: Item, sim) -> Bin:
        active = self._active
        if active is not None and active.fits(item):
            is_open = getattr(sim, "is_open", None)
            if (
                is_open(active.uid)
                if is_open is not None
                else active.uid in {b.uid for b in sim.open_bins}
            ):
                return active
        self._active = sim.open_bin(tag="nextfit")
        return self._active

    def notify_close(self, bin_: Bin, sim) -> None:
        if self._active is bin_:
            self._active = None


class RandomFit(OnlineAlgorithm):
    """Uniformly random choice among fitting bins (seeded baseline)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"RandomFit(seed={seed})"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def place(self, item: Item, sim) -> Bin:
        candidates = [b for b in sim.open_bins if b.fits(item)]
        if candidates:
            return candidates[int(self._rng.integers(len(candidates)))]
        return sim.open_bin(tag="randomfit")
