"""CDFF (Classify-by-Duration-First-Fit) — the paper's O(log log μ)
algorithm for **aligned inputs** (Algorithm 2).

Aligned inputs (Definition 2.1): items of length in ``(2^{i-1}, 2^i]`` may
only arrive at multiples of ``2^i``.  All arrival times are therefore
non-negative integers (class-0 lengths lie in ``(1/2, 1]`` and arrive at
integer times).

CDFF maintains *rows* of bins.  At any moment ``t`` let
``(2^{m_t-1}, 2^{m_t}]`` be the longest length interval for which items may
still arrive (``m_t`` is the number of trailing zero bits of ``t`` within
the current segment).  An arriving item of duration class ``i`` is packed
first-fit into **row** ``m_t − i``: longer items land in lower-indexed rows.
When a bin empties it is removed from its row.  The dynamism — which row a
class maps to changes with ``t`` — is precisely what improves the
competitive ratio exponentially over a static classify-by-duration (see the
ABL.ROWS ablation and Section 5.1's binary-string analysis).

Segmenting (Section 5 preamble): the input is decomposed online into
segments ``σ_0, σ_1, …`` — a segment starting at ``T₀`` covers
``[T₀, T₀+μ_seg]`` where ``μ_seg = 2^{⌈log₂ longest item at T₀⌉}`` — and
all items of a segment both arrive and depart inside it.  Within the batch
of simultaneous arrivals at ``T₀`` the row *keys* are not yet known (the
longest item may arrive last in the arbitrary order), but items of distinct
classes never share a row at ``T₀``, so CDFF buckets the batch by class and
binds buckets to absolute row keys ``m₀ − i`` once the batch ends — this is
exactly the paper's "adapts as larger items arrive" remark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.bins import Bin
from ..core.errors import AlignmentError
from ..core.item import Item
from .anyfit import FIRST_FIT, FitRule
from .base import OnlineAlgorithm

__all__ = ["CDFF", "StaticRowsCDFF", "aligned_class", "trailing_zeros"]


def aligned_class(length: float) -> int:
    """Duration class of an aligned item: ``i ≥ 0`` with length ∈ (2^{i-1}, 2^i].

    Aligned inputs assume lengths exceed 1/2 (class 0 is ``(1/2, 1]``);
    shorter lengths would arrive at non-integer multiples and are rejected.
    """
    if length <= 0.5:
        raise AlignmentError(
            f"aligned items must have length > 1/2, got {length}"
        )
    return max(0, math.ceil(math.log2(length) - 1e-12))


def trailing_zeros(n: int) -> int:
    """Number of trailing zero bits of a positive integer."""
    if n <= 0:
        raise ValueError(f"trailing_zeros needs a positive integer, got {n}")
    return (n & -n).bit_length() - 1


class CDFF(OnlineAlgorithm):
    """Azar & Vainstein's CDFF algorithm for aligned inputs (Algorithm 2)."""

    def __init__(self, *, rule: FitRule = FIRST_FIT, name: Optional[str] = None):
        self.rule = rule
        self.name = name or "CDFF"
        self._rows: Dict[int, List[Bin]] = {}
        self._row_of_bin: Dict[int, int] = {}
        self._seg_start: Optional[int] = None
        self._seg_end: Optional[int] = None  # None while the T0 batch is open
        self._batch: Dict[int, List[Bin]] = {}
        self._placed_row: Dict[int, int] = {}  # item uid -> row key (for audits)

    def reset(self) -> None:
        self._rows = {}
        self._row_of_bin = {}
        self._seg_start = None
        self._seg_end = None
        self._batch = {}
        self._placed_row = {}

    # ------------------------------------------------------------------ #
    # Inspection (used by the figure renderers and the Lemma 5.5 tests)
    # ------------------------------------------------------------------ #
    def rows_snapshot(self) -> Dict[int, List[Bin]]:
        """Current row → bins mapping (batch buckets included if unbound)."""
        if self._batch:
            bound = self._bind_preview()
            return bound
        return {k: list(v) for k, v in self._rows.items() if v}

    def row_of_item(self, uid: int) -> int:
        """The row key item ``uid`` was packed into (after batch binding).

        While the T₀ batch is still open the key is computed against the
        largest class seen so far, matching what binding would produce.
        """
        marker = self._placed_row[uid]
        if marker < 0:
            m0 = max(self._batch) if self._batch else 0
            return m0 - (-marker - 1)
        return marker

    def _bind_preview(self) -> Dict[int, List[Bin]]:
        m0 = max(self._batch) if self._batch else 0
        rows = {k: list(v) for k, v in self._rows.items() if v}
        for i, bins in self._batch.items():
            if bins:
                rows.setdefault(m0 - i, []).extend(bins)
        return rows

    # ------------------------------------------------------------------ #
    def place(self, item: Item, sim) -> Bin:
        t = item.arrival
        ti = int(round(t))
        if abs(t - ti) > 1e-9 or ti < 0:
            raise AlignmentError(
                f"aligned arrivals must be non-negative integers, got {t}"
            )
        i = aligned_class(item.length)
        if ti % (2**i) != 0:
            raise AlignmentError(
                f"class-{i} item (length {item.length:g}) must arrive at a "
                f"multiple of {2**i}, got {ti}"
            )

        if self._seg_start is not None and ti > self._seg_start and self._seg_end is None:
            self._bind_batch()
        if self._seg_start is None or (
            self._seg_end is not None and ti >= self._seg_end
        ):
            self._start_segment(ti)

        assert self._seg_start is not None
        if ti == self._seg_start:  # batch of simultaneous arrivals at T0
            return self._place_batch(item, i, sim)
        return self._place_row(item, i, ti, sim)

    def _start_segment(self, t0: int) -> None:
        if any(self._rows.values()) or any(self._batch.values()):
            raise AlignmentError(
                f"new segment at t={t0} but bins from the previous segment "
                "are still occupied — the input is not aligned"
            )
        self._seg_start = t0
        self._seg_end = None
        self._batch = {}
        self._rows = {}
        self._row_of_bin = {}

    def _bind_batch(self) -> None:
        """Assign the T₀ buckets their absolute row keys m₀ − i."""
        assert self._seg_start is not None
        m0 = max(self._batch) if self._batch else 0
        for i, bins in self._batch.items():
            if not bins:
                continue
            row = m0 - i
            self._rows.setdefault(row, []).extend(bins)
            for b in bins:
                self._row_of_bin[b.uid] = row
        for uid, marker in list(self._placed_row.items()):
            if marker < 0:  # stored as -(class+1) while unbound
                self._placed_row[uid] = m0 - (-marker - 1)
        self._batch = {}
        self._seg_end = self._seg_start + 2**m0

    def _place_batch(self, item: Item, i: int, sim) -> Bin:
        bucket = self._batch.setdefault(i, [])
        candidates = [b for b in bucket if b.fits(item)]
        self._placed_row[item.uid] = -(i + 1)  # bound later
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=("cdff", self._seg_start, i))
        bucket.append(b)
        return b

    def _place_row(self, item: Item, i: int, ti: int, sim) -> Bin:
        assert self._seg_start is not None and self._seg_end is not None
        m_t = trailing_zeros(ti - self._seg_start)
        row = m_t - i
        if row < 0:
            raise AlignmentError(
                f"class-{i} item arrives at t={ti} (m_t={m_t}) — input is "
                "not aligned relative to the segment start"
            )
        self._placed_row[item.uid] = row
        bins = self._rows.setdefault(row, [])
        candidates = [b for b in bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=("cdff", self._seg_start, i))
        bins.append(b)
        self._row_of_bin[b.uid] = row
        return b

    # ------------------------------------------------------------------ #
    def notify_close(self, bin_: Bin, sim) -> None:
        row = self._row_of_bin.pop(bin_.uid, None)
        if row is not None:
            bins = self._rows.get(row)
            if bins is not None:
                self._rows[row] = [b for b in bins if b.uid != bin_.uid]
            return
        # the bin may still be in an unbound batch bucket
        for i, bucket in self._batch.items():
            if any(b.uid == bin_.uid for b in bucket):
                self._batch[i] = [b for b in bucket if b.uid != bin_.uid]
                return


class StaticRowsCDFF(OnlineAlgorithm):
    """Ablation: CDFF with *static* rows — class ``i`` always maps to its own
    row, regardless of ``t``.

    This is the "statically packing types into rows" strawman the paper's
    Techniques section contrasts CDFF against; on binary inputs it opens one
    bin per active class (Θ(log μ) of them) instead of CDFF's
    ``max_0(binary(t)) + 1``, and the ABL.ROWS experiment shows the gap.
    """

    name = "StaticRowsCDFF"

    def __init__(self, *, rule: FitRule = FIRST_FIT) -> None:
        self.rule = rule
        self._rows: Dict[int, List[Bin]] = {}

    def reset(self) -> None:
        self._rows = {}

    def place(self, item: Item, sim) -> Bin:
        i = aligned_class(item.length)
        bins = self._rows.setdefault(i, [])
        candidates = [b for b in bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=("static-cdff", i))
        bins.append(b)
        return b

    def notify_close(self, bin_: Bin, sim) -> None:
        _, i = bin_.tag  # type: ignore[misc]
        bins = self._rows.get(i)
        if bins is not None:
            self._rows[i] = [b for b in bins if b.uid != bin_.uid]
