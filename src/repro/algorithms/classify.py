"""Classify-by-duration algorithms — the prior state of the art.

Two variants:

- :class:`ClassifyByDuration` — items whose length falls in
  ``(base^{k-1}, base^k]`` are packed first-fit among bins dedicated to
  class ``k``.  With ``base=2`` this is the classical ``O(log μ)``
  approach the paper's "Techniques" section mentions; no knowledge of μ
  is needed.
- :class:`RenTang` — the ``μ^{1/n} + n + 3``-competitive algorithm of
  Ren & Tang [10] (optimised over ``n`` this is ``O(log μ / log log μ)``,
  the best upper bound prior to this paper).  It partitions lengths into
  ``n`` geometric classes of ratio ``μ^{1/n}`` and runs first-fit per
  class; it needs μ in advance.

Both serve as baselines for experiment T1.GEN.UB: the paper's HA should
beat them, and their measured growth (``~log μ`` vs ``~log μ/log log μ`` vs
``~√log μ``) is part of Table 1's reproducible shape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.bins import Bin
from ..core.errors import InvalidItemError
from ..core.item import Item
from .anyfit import FIRST_FIT, FitRule
from .base import OnlineAlgorithm

__all__ = ["ClassifyByDuration", "RenTang", "optimal_rentang_n"]


class ClassifyByDuration(OnlineAlgorithm):
    """First-fit within geometric duration classes of ratio ``base``."""

    def __init__(self, base: float = 2.0, *, rule: FitRule = FIRST_FIT) -> None:
        if base <= 1.0:
            raise InvalidItemError(f"base must exceed 1, got {base}")
        self.base = base
        self.rule = rule
        self.name = f"ClassifyByDuration(base={base:g})"
        self._class_bins: Dict[int, List[Bin]] = {}

    def reset(self) -> None:
        self._class_bins = {}

    def _class_of(self, item: Item) -> int:
        return math.ceil(math.log(item.length, self.base) - 1e-12)

    def place(self, item: Item, sim) -> Bin:
        k = self._class_of(item)
        bins = self._class_bins.setdefault(k, [])
        candidates = [b for b in bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=("class", k))
        bins.append(b)
        return b

    def notify_close(self, bin_: Bin, sim) -> None:
        _, k = bin_.tag  # type: ignore[misc]
        bins = self._class_bins.get(k)
        if bins is not None:
            self._class_bins[k] = [b for b in bins if b.uid != bin_.uid]


def optimal_rentang_n(mu: float) -> int:
    """The integer ``n ≥ 1`` minimising ``μ^{1/n} + n + 3`` (Ren & Tang)."""
    if mu <= 1.0:
        return 1
    best_n, best_val = 1, mu + 4.0
    # the minimiser is ≈ ln μ / ln ln μ; scanning a safe window is cheap
    upper = max(2, int(4 * math.log2(mu)) + 2)
    for n in range(1, upper + 1):
        val = mu ** (1.0 / n) + n + 3.0
        if val < best_val:
            best_n, best_val = n, val
    return best_n


class RenTang(OnlineAlgorithm):
    """Ren & Tang's classify-by-duration algorithm with ``n`` classes.

    Lengths are assumed in ``[min_length, min_length·μ]``; class ``k``
    covers ``[min_length·ρ^k, min_length·ρ^{k+1})`` with ``ρ = μ^{1/n}``.

    Parameters
    ----------
    mu:
        The (known in advance) max/min length ratio.
    n:
        Number of geometric classes; defaults to the minimiser of
        ``μ^{1/n} + n + 3``.
    min_length:
        Smallest possible item length (1 after normalisation).
    """

    def __init__(
        self,
        mu: float,
        n: Optional[int] = None,
        *,
        min_length: float = 1.0,
        rule: FitRule = FIRST_FIT,
    ) -> None:
        if mu < 1.0:
            raise InvalidItemError(f"mu must be ≥ 1, got {mu}")
        self.mu = mu
        self.n = n if n is not None else optimal_rentang_n(mu)
        if self.n < 1:
            raise InvalidItemError(f"n must be ≥ 1, got {self.n}")
        self.min_length = min_length
        self.rho = mu ** (1.0 / self.n) if mu > 1 else 2.0
        self.rule = rule
        self.name = f"RenTang(mu={mu:g}, n={self.n})"
        self._class_bins: Dict[int, List[Bin]] = {}

    def reset(self) -> None:
        self._class_bins = {}

    def _class_of(self, item: Item) -> int:
        ratio = item.length / self.min_length
        if ratio < 1.0 - 1e-9 or ratio > self.mu * (1 + 1e-9):
            raise InvalidItemError(
                f"item length {item.length} outside the declared "
                f"[{self.min_length}, {self.min_length * self.mu}] range"
            )
        if self.rho <= 1.0:
            return 0
        k = int(math.floor(math.log(max(ratio, 1.0), self.rho) + 1e-12))
        return min(k, self.n - 1)

    def place(self, item: Item, sim) -> Bin:
        k = self._class_of(item)
        bins = self._class_bins.setdefault(k, [])
        candidates = [b for b in bins if b.fits(item)]
        if candidates:
            return self.rule(candidates, item)
        b = sim.open_bin(tag=("rt-class", k))
        bins.append(b)
        return b

    def notify_close(self, bin_: Bin, sim) -> None:
        _, k = bin_.tag  # type: ignore[misc]
        bins = self._class_bins.get(k)
        if bins is not None:
            self._class_bins[k] = [b for b in bins if b.uid != bin_.uid]
