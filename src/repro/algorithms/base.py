"""The online-algorithm protocol and shared classification helpers.

An online algorithm receives items one at a time through
:meth:`OnlineAlgorithm.place` and must return the bin the item goes into —
either an already-open bin taken from ``sim.open_bins`` or a fresh one
obtained from ``sim.open_bin(tag)``.  The simulator owns all bin state and
enforces capacity; algorithms keep only whatever private bookkeeping they
need (HA tracks per-type loads, CDFF tracks its rows).

The duration/arrival *type* ``T = (i, c)`` of Section 3 — ``length ∈
(2^{i-1}, 2^i]`` and ``arrival ∈ ((c-1)·2^i, c·2^i]`` — is implemented here
because both HA and the alignment reduction use it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import (
    Hashable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..core.bins import Bin
from ..core.errors import InvalidItemError
from ..core.item import Item

__all__ = [
    "OnlineAlgorithm",
    "SimulationView",
    "duration_class",
    "item_type",
    "type_departure_deadline",
    "first_fit_choice",
]


@runtime_checkable
class SimulationView(Protocol):
    """The facade every frontend hands to ``place()`` and the notify hooks.

    This is the formal contract between algorithms/adversaries and the
    simulation they run inside.  Three objects satisfy it — the
    :class:`~repro.core.kernel.PlacementKernel` itself (adversaries drive
    it directly), the batch
    :class:`~repro.core.simulation.IncrementalSimulation`, and the
    streaming :class:`~repro.engine.loop.Engine` — and because the latter
    two are thin adapters over the former, every method has exactly one
    implementation of its semantics.

    The candidate queries (:meth:`first_fit` … :meth:`fitting_bins`)
    mirror the classical Any-Fit rules and run in O(log n) via the
    kernel's open-bin index; algorithms with bespoke selection logic can
    still scan :attr:`open_bins` directly.
    """

    @property
    def time(self) -> float:
        """The simulation clock (``-inf`` before the first event)."""
        ...

    @property
    def capacity(self) -> float:
        """Bin capacity (1.0 in the paper)."""
        ...

    @property
    def algorithm(self):
        """The online algorithm this simulation is driving."""
        ...

    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        ...

    @property
    def open_bin_count(self) -> int:
        """Number of currently open bins (O(1))."""
        ...

    @property
    def cost_so_far(self) -> float:
        """Accumulated usage time up to the current clock (O(1))."""
        ...

    def open_bin(self, tag: Hashable = None) -> Bin:
        """Open a fresh bin (inside ``place()`` only; one per placement)."""
        ...

    def is_open(self, uid: int) -> bool:
        """Whether bin ``uid`` is currently open (O(1))."""
        ...

    def first_fit(self, item: Item) -> Optional[Bin]:
        """Earliest-opened open bin that fits ``item``, else ``None``."""
        ...

    def best_fit(self, item: Item) -> Optional[Bin]:
        """Fullest fitting bin (ties earliest-opened), else ``None``."""
        ...

    def worst_fit(self, item: Item) -> Optional[Bin]:
        """Emptiest fitting bin (ties earliest-opened), else ``None``."""
        ...

    def last_fit(self, item: Item) -> Optional[Bin]:
        """Latest-opened open bin that fits ``item``, else ``None``."""
        ...

    def fitting_bins(self, item: Item) -> list[Bin]:
        """All open bins that fit ``item``, oldest first."""
        ...


def duration_class(length: float, *, min_class: int = 1) -> int:
    """The duration class ``i`` with ``length ∈ (2^{i-1}, 2^i]``.

    ``min_class=1`` folds lengths in ``[1, 2]`` into ``i = 1`` (DESIGN.md §5):
    the paper assumes lengths ≥ 1 and ``i ≥ 1`` so the HA threshold
    ``1/(2√i)`` is well defined.  Pass ``min_class=0`` for the raw class
    (used by CDFF, whose smallest interval is ``(1/2, 1]``).
    """
    if length <= 0 or not math.isfinite(length):
        raise InvalidItemError(f"length must be positive and finite, got {length}")
    i = math.ceil(math.log2(length) - 1e-12)
    return max(min_class, i)


def item_type(item: Item, *, min_class: int = 1) -> tuple[int, int]:
    """The paper's type ``T = (i, c)`` of an item (Section 3)."""
    i = duration_class(item.length, min_class=min_class)
    width = 2.0**i
    # c with arrival ∈ ((c-1)·2^i, c·2^i]; arrivals at exactly c·2^i get c.
    c = math.ceil(item.arrival / width - 1e-12)
    return (i, c)


def type_departure_deadline(T: tuple[int, int]) -> float:
    """Departure time ``(c+1)·2^i`` the reduction assigns to type ``T`` items."""
    i, c = T
    return (c + 1) * 2.0**i


class OnlineAlgorithm(ABC):
    """Protocol for online MinUsageTime packing algorithms.

    Attributes
    ----------
    name:
        Human-readable identifier used in result tables.
    clairvoyant:
        When ``False``, the simulator masks departure times from every item
        the algorithm sees.
    """

    name: str = "online"
    clairvoyant: bool = True

    def reset(self) -> None:
        """Clear private state; called once before a simulation starts."""

    @abstractmethod
    def place(self, item: Item, sim: "SimulationView") -> Bin:
        """Choose the bin for ``item``.

        ``sim`` satisfies the :class:`SimulationView` protocol (the
        placement kernel or one of its frontends); use ``sim.open_bins``
        (or the indexed ``sim.first_fit``/``best_fit``/… queries) to
        inspect open bins and ``sim.open_bin(tag)`` to open a new one.
        Must return the chosen bin.
        """

    def notify_departure(self, item: Item, bin_: Bin, sim) -> None:
        """Hook: ``item`` just left ``bin_`` (bin may now be empty)."""

    def notify_close(self, bin_: Bin, sim) -> None:
        """Hook: ``bin_`` just became empty and was closed."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def first_fit_choice(
    bins: Sequence[Bin], item: Item
) -> Optional[Bin]:
    """The earliest-opened bin in ``bins`` that fits ``item``, else ``None``."""
    for b in bins:
        if b.fits(item):
            return b
    return None
