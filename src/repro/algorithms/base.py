"""The online-algorithm protocol and shared classification helpers.

An online algorithm receives items one at a time through
:meth:`OnlineAlgorithm.place` and must return the bin the item goes into —
either an already-open bin taken from ``sim.open_bins`` or a fresh one
obtained from ``sim.open_bin(tag)``.  The simulator owns all bin state and
enforces capacity; algorithms keep only whatever private bookkeeping they
need (HA tracks per-type loads, CDFF tracks its rows).

The duration/arrival *type* ``T = (i, c)`` of Section 3 — ``length ∈
(2^{i-1}, 2^i]`` and ``arrival ∈ ((c-1)·2^i, c·2^i]`` — is implemented here
because both HA and the alignment reduction use it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Hashable, Optional, Sequence

from ..core.bins import Bin
from ..core.errors import InvalidItemError
from ..core.item import Item

__all__ = [
    "OnlineAlgorithm",
    "duration_class",
    "item_type",
    "type_departure_deadline",
    "first_fit_choice",
]


def duration_class(length: float, *, min_class: int = 1) -> int:
    """The duration class ``i`` with ``length ∈ (2^{i-1}, 2^i]``.

    ``min_class=1`` folds lengths in ``[1, 2]`` into ``i = 1`` (DESIGN.md §5):
    the paper assumes lengths ≥ 1 and ``i ≥ 1`` so the HA threshold
    ``1/(2√i)`` is well defined.  Pass ``min_class=0`` for the raw class
    (used by CDFF, whose smallest interval is ``(1/2, 1]``).
    """
    if length <= 0 or not math.isfinite(length):
        raise InvalidItemError(f"length must be positive and finite, got {length}")
    i = math.ceil(math.log2(length) - 1e-12)
    return max(min_class, i)


def item_type(item: Item, *, min_class: int = 1) -> tuple[int, int]:
    """The paper's type ``T = (i, c)`` of an item (Section 3)."""
    i = duration_class(item.length, min_class=min_class)
    width = 2.0**i
    # c with arrival ∈ ((c-1)·2^i, c·2^i]; arrivals at exactly c·2^i get c.
    c = math.ceil(item.arrival / width - 1e-12)
    return (i, c)


def type_departure_deadline(T: tuple[int, int]) -> float:
    """Departure time ``(c+1)·2^i`` the reduction assigns to type ``T`` items."""
    i, c = T
    return (c + 1) * 2.0**i


class OnlineAlgorithm(ABC):
    """Protocol for online MinUsageTime packing algorithms.

    Attributes
    ----------
    name:
        Human-readable identifier used in result tables.
    clairvoyant:
        When ``False``, the simulator masks departure times from every item
        the algorithm sees.
    """

    name: str = "online"
    clairvoyant: bool = True

    def reset(self) -> None:
        """Clear private state; called once before a simulation starts."""

    @abstractmethod
    def place(self, item: Item, sim) -> Bin:
        """Choose the bin for ``item``.

        ``sim`` is the running
        :class:`~repro.core.simulation.IncrementalSimulation`; use
        ``sim.open_bins`` to inspect open bins and ``sim.open_bin(tag)`` to
        open a new one.  Must return the chosen bin.
        """

    def notify_departure(self, item: Item, bin_: Bin, sim) -> None:
        """Hook: ``item`` just left ``bin_`` (bin may now be empty)."""

    def notify_close(self, bin_: Bin, sim) -> None:
        """Hook: ``bin_`` just became empty and was closed."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def first_fit_choice(
    bins: Sequence[Bin], item: Item
) -> Optional[Bin]:
    """The earliest-opened bin in ``bins`` that fits ``item``, else ``None``."""
    for b in bins:
        if b.fits(item):
            return b
    return None
