"""Clairvoyant greedy heuristics beyond the paper's algorithms.

The paper's algorithms use clairvoyance only through duration *classes*.
A natural question for practitioners: does using the exact departure
times greedily help?  :class:`LeastExpansion` is that heuristic — it
packs each item into the open bin whose usage-time *increase* is
smallest, opening a new bin only when every placement would cost at least
as much as a fresh bin (whose cost is the item's full length).

It is a strong practical baseline (often the best policy on cloud-like
traces) but carries no worst-case guarantee; the EXT.GREEDY experiment
shows it too falls to the Section 4 adversary, reinforcing that HA's
threshold structure — not raw clairvoyance — is what earns O(√log μ).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.bins import Bin
from ..core.errors import ClairvoyanceError
from ..core.item import Item
from .base import OnlineAlgorithm

__all__ = ["LeastExpansion"]


class LeastExpansion(OnlineAlgorithm):
    """Pack into the fitting bin whose busy period grows the least.

    For a bin whose latest departure (over current *and past* residents,
    since the bin stays open until its last resident leaves) is ``e`` and
    an item departing at ``f``, the usage increase is ``max(0, f − e)``.
    A new bin costs the item's full length.  Ties prefer the
    earliest-opened bin (first-fit order).

    ``slack`` (≥ 0) biases against opening: a new bin is opened only when
    the best increase exceeds ``slack · length``; ``slack = 1`` is the
    pure cost comparison.
    """

    def __init__(self, *, slack: float = 1.0, name: Optional[str] = None):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.slack = slack
        self.name = name or (
            "LeastExpansion" if slack == 1.0 else f"LeastExpansion(slack={slack:g})"
        )
        self._bin_end: Dict[int, float] = {}

    def reset(self) -> None:
        self._bin_end = {}

    def place(self, item: Item, sim) -> Bin:
        if item.departure is None:
            raise ClairvoyanceError(f"{self.name} needs departure times")
        best: Optional[Bin] = None
        best_cost = self.slack * item.length
        for b in sim.open_bins:
            if not b.fits(item):
                continue
            end = self._bin_end.get(b.uid, b.opened_at)
            cost = max(0.0, item.departure - end)
            if cost < best_cost - 1e-12:
                best = b
                best_cost = cost
        if best is None:
            best = sim.open_bin(tag="least-expansion")
        self._bin_end[best.uid] = max(
            self._bin_end.get(best.uid, 0.0), item.departure
        )
        return best

    def notify_close(self, bin_: Bin, sim) -> None:
        self._bin_end.pop(bin_.uid, None)
