"""Online packing algorithms: baselines and the paper's HA and CDFF."""

from .anyfit import (
    BEST_FIT,
    FIRST_FIT,
    LAST_FIT,
    WORST_FIT,
    AnyFit,
    BestFit,
    FirstFit,
    FitRule,
    LastFit,
    NextFit,
    RandomFit,
    WorstFit,
)
from .base import (
    OnlineAlgorithm,
    SimulationView,
    duration_class,
    first_fit_choice,
    item_type,
    type_departure_deadline,
)
from .cdff import CDFF, StaticRowsCDFF, aligned_class, trailing_zeros
from .classify import ClassifyByDuration, RenTang, optimal_rentang_n
from .greedy import LeastExpansion
from .hybrid import CD_TAG, GN_TAG, HybridAlgorithm, sqrt_threshold

__all__ = [
    "OnlineAlgorithm",
    "SimulationView",
    "duration_class",
    "item_type",
    "type_departure_deadline",
    "first_fit_choice",
    "AnyFit",
    "FitRule",
    "FIRST_FIT",
    "BEST_FIT",
    "WORST_FIT",
    "LAST_FIT",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "NextFit",
    "RandomFit",
    "ClassifyByDuration",
    "RenTang",
    "optimal_rentang_n",
    "LeastExpansion",
    "HybridAlgorithm",
    "sqrt_threshold",
    "GN_TAG",
    "CD_TAG",
    "CDFF",
    "StaticRowsCDFF",
    "aligned_class",
    "trailing_zeros",
]
