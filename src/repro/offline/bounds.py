"""Closed-form offline bounds on OPT (Section 2–3 of the paper).

Lower bounds on ``OPT_R`` (hence also on ``OPT_NR``):

- the *time–space* bound ``OPT_R ≥ d(σ)``,
- the *span* bound ``OPT_R ≥ span(σ)``,
- the ceil-load bound ``OPT_R ≥ ∫⌈S_t⌉ dt`` — which dominates both
  (``⌈S⌉ ≥ S`` gives time–space; ``⌈S⌉ ≥ 1`` on the support gives span).

Upper bounds on ``OPT_R`` (Lemma 3.1):

- ``OPT_R ≤ ∫ 2⌈S_t⌉ dt``,
- ``OPT_R ≤ 2·d(σ) + 2·span(σ)``.

These are the quantities every experiment sandwiches OPT with when the
exact oracle (:mod:`repro.offline.optimal`) is too expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.profile import load_profile

__all__ = [
    "demand_bound",
    "span_bound",
    "ceil_load_bound",
    "lemma31_ceil_upper",
    "lemma31_demand_span_upper",
    "opt_sandwich",
    "OptSandwich",
]


def demand_bound(instance: Instance) -> float:
    """``d(σ)`` — the time–space lower bound on OPT_R."""
    return instance.demand


def span_bound(instance: Instance) -> float:
    """``span(σ)`` — the span lower bound on OPT_R."""
    return instance.span


def ceil_load_bound(instance: Instance) -> float:
    """``∫⌈S_t⌉ dt`` — the strongest of the paper's closed-form lower bounds."""
    return load_profile(instance).ceil_integral()


def lemma31_ceil_upper(instance: Instance) -> float:
    """Lemma 3.1(1): ``OPT_R ≤ ∫ 2⌈S_t⌉ dt``."""
    return 2.0 * ceil_load_bound(instance)


def lemma31_demand_span_upper(instance: Instance) -> float:
    """Lemma 3.1(2): ``OPT_R ≤ 2 d(σ) + 2 span(σ)``."""
    return 2.0 * instance.demand + 2.0 * instance.span


@dataclass(frozen=True, slots=True)
class OptSandwich:
    """A certified interval ``lower ≤ OPT_R ≤ upper``."""

    lower: float
    upper: float

    @property
    def exact(self) -> bool:
        return abs(self.upper - self.lower) <= 1e-9 * max(1.0, self.upper)

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise ValueError(
                f"invalid sandwich: lower {self.lower} > upper {self.upper}"
            )


def opt_sandwich(instance: Instance) -> OptSandwich:
    """The closed-form sandwich on OPT_R from the bounds above."""
    lower = max(
        demand_bound(instance), span_bound(instance), ceil_load_bound(instance)
    )
    upper = min(lemma31_ceil_upper(instance), lemma31_demand_span_upper(instance))
    return OptSandwich(lower=lower, upper=max(lower, upper))
