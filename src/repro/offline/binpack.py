"""Exact classical (static) bin packing — the inner oracle of OPT_R.

Because repacking is free, the paper's repacking optimum factorises over
time: ``OPT_R(σ) = ∫ BP(active items at t) dt`` where ``BP`` is the
classical bin-packing optimum of the momentarily active size multiset (see
DESIGN.md §1).  This module provides ``BP``:

- :func:`ffd` — First-Fit-Decreasing, the upper-bound heuristic;
- :func:`l2_lower_bound` — Martello–Toth's L2 lower bound;
- :func:`min_bins` — exact branch-and-bound (FFD seed, L2 pruning,
  dominance and symmetry breaking), practical to ~30 items;
- :func:`min_bins_bounded` — exact when small, (lower, upper) sandwich
  otherwise.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.bins import LOAD_EPS

__all__ = ["ffd", "l2_lower_bound", "min_bins", "min_bins_bounded"]


def ffd(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """Number of bins First-Fit-Decreasing uses (an upper bound on BP)."""
    bins: list[float] = []
    for s in sorted(sizes, reverse=True):
        for k, load in enumerate(bins):
            if load + s <= capacity + LOAD_EPS:
                bins[k] = load + s
                break
        else:
            bins.append(s)
    return len(bins)


def l2_lower_bound(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """Martello–Toth L2: a lower bound on the bin-packing optimum.

    ``L2 = max_α |{s > c−α}| + max(0, ⌈(Σ_{s∈(α, c−α]} s − free capacity)/c⌉)``
    maximised over thresholds ``α ∈ [0, c/2]`` drawn from the size set.
    """
    if not sizes:
        return 0
    c = capacity
    xs = sorted(sizes)
    best = max(1, math.ceil(sum(xs) / c - 1e-9))
    # candidate thresholds: 0, every small size, and c/2 itself (the c/2
    # threshold makes every pair of >c/2 items conflict, i.e. counts them)
    alphas = {0.0, c / 2} | {s for s in xs if s <= c / 2 + LOAD_EPS}
    for alpha in alphas:
        big = [s for s in xs if s > c - alpha + LOAD_EPS]
        mid = [s for s in xs if alpha - LOAD_EPS <= s <= c - alpha + LOAD_EPS]
        # Note: 'mid' includes sizes exactly equal to the boundaries; the
        # bound remains valid for any partition choice.
        free = sum(max(0.0, c - s) for s in big)
        extra = math.ceil((sum(mid) - free) / c - 1e-9)
        best = max(best, len(big) + max(0, extra))
    return best


def min_bins(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """Exact minimum number of capacity-``capacity`` bins for ``sizes``."""
    items = sorted((s for s in sizes), reverse=True)
    if not items:
        return 0
    if any(s > capacity + LOAD_EPS for s in items):
        raise ValueError("an item exceeds the bin capacity")
    best = ffd(items, capacity)
    lower = l2_lower_bound(items, capacity)
    if best <= lower:
        return best

    n = len(items)
    loads: list[float] = []
    best_found = best

    def dfs(idx: int) -> None:
        nonlocal best_found
        if idx == n:
            best_found = min(best_found, len(loads))
            return
        if len(loads) >= best_found:
            return
        # L1-style pruning on the remaining volume
        remaining = sum(items[idx:])
        free = sum(capacity - l for l in loads)
        need = len(loads) + max(0, math.ceil((remaining - free) / capacity - 1e-9))
        if need >= best_found:
            return
        s = items[idx]
        tried: set[float] = set()
        for k, load in enumerate(loads):
            if load + s <= capacity + LOAD_EPS:
                key = round(load, 12)
                if key in tried:  # bins with equal load are interchangeable
                    continue
                tried.add(key)
                loads[k] = load + s
                dfs(idx + 1)
                loads[k] = load
                if best_found <= lower:
                    return
        if len(loads) + 1 < best_found:
            loads.append(s)
            dfs(idx + 1)
            loads.pop()

    dfs(0)
    return best_found


def min_bins_bounded(
    sizes: Sequence[float], capacity: float = 1.0, *, max_exact: int = 26
) -> tuple[int, int]:
    """``(lower, upper)`` on BP; equal when exact computation is affordable."""
    if len(sizes) <= max_exact:
        v = min_bins(sizes, capacity)
        return v, v
    return l2_lower_bound(sizes, capacity), ffd(sizes, capacity)
