"""OPT oracles: exact OPT_R, exact OPT_NR for tiny inputs, and sandwiches.

- :func:`opt_repacking` exploits the factorisation
  ``OPT_R(σ) = ∫ BP(active at t) dt``: between consecutive event points the
  active multiset is constant, so OPT_R is a finite sum of
  exact-bin-packing values times segment durations.  When a segment has too
  many active items for the exact solver, the segment contributes a
  certified (L2, FFD) sandwich instead, and the overall result is an
  :class:`~repro.offline.bounds.OptSandwich`.
- :func:`opt_nonrepacking` enumerates partitions of the items into feasible
  co-location groups (cost of a group = measure of the union of its
  intervals) with branch-and-bound — exact but exponential, guarded by
  ``max_items``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.bins import LOAD_EPS
from ..core.errors import InvalidInstanceError
from ..core.instance import Instance
from ..core.item import Item
from .bounds import OptSandwich, opt_sandwich
from .binpack import min_bins_bounded

__all__ = ["opt_repacking", "opt_nonrepacking", "opt_reference"]


def opt_repacking(
    instance: Instance, *, capacity: float = 1.0, max_exact: int = 26
) -> OptSandwich:
    """``OPT_R(σ)`` as a certified sandwich (exact when segments are small).

    A single event sweep maintains the active size multiset; segments whose
    active multiset repeats reuse the cached bin-packing value, so highly
    periodic inputs (σ_μ, adversary schedules) cost almost nothing beyond
    the sweep itself.
    """
    if len(instance) == 0:
        return OptSandwich(0.0, 0.0)
    events: list[tuple[float, int, int]] = []  # (time, kind 0=dep 1=arr, idx)
    for k, it in enumerate(instance):
        events.append((it.arrival, 1, k))
        events.append((it.departure, 0, k))  # type: ignore[arg-type]
    events.sort()
    sizes = [it.size for it in instance]
    active: dict[int, float] = {}
    cache: dict[tuple[float, ...], tuple[int, int]] = {}
    lower = upper = 0.0
    pos, n_ev = 0, len(events)
    while pos < n_ev:
        t = events[pos][0]
        while pos < n_ev and events[pos][0] == t:
            _, kind, idx = events[pos]
            pos += 1
            if kind == 0:
                active.pop(idx, None)
            else:
                active[idx] = sizes[idx]
        if pos >= n_ev or not active:
            continue
        duration = events[pos][0] - t
        key = tuple(sorted(active.values()))
        if key not in cache:
            cache[key] = min_bins_bounded(key, capacity, max_exact=max_exact)
        lo, hi = cache[key]
        lower += lo * duration
        upper += hi * duration
    return OptSandwich(lower, upper)


def _group_cost(items: Sequence[Item]) -> float:
    """Measure of the union of the group's intervals (its bin's usage)."""
    from ..core.intervals import union_measure

    return union_measure((it.arrival, it.departure) for it in items)  # type: ignore[misc]


def _fits_group(group: list[Item], item: Item, capacity: float) -> bool:
    """Whether ``item`` can join ``group`` without exceeding ``capacity``.

    Load is checked at every arrival point inside the candidate's interval
    (the load profile is right-continuous, so arrivals are the only places a
    maximum can appear).
    """
    overl = [g for g in group if g.overlaps(item)]
    if not overl:
        return True
    checkpoints = {item.arrival}
    checkpoints.update(
        g.arrival for g in overl if item.arrival <= g.arrival < item.departure  # type: ignore[operator]
    )
    for t in checkpoints:
        load = item.size + sum(
            g.size for g in overl if g.arrival <= t < g.departure  # type: ignore[operator]
        )
        if load > capacity + LOAD_EPS:
            return False
    return True


def opt_nonrepacking(
    instance: Instance, *, capacity: float = 1.0, max_items: int = 12
) -> float:
    """Exact ``OPT_NR(σ)`` by branch-and-bound over co-location partitions."""
    n = len(instance)
    if n == 0:
        return 0.0
    if n > max_items:
        raise InvalidInstanceError(
            f"opt_nonrepacking is exponential; {n} items exceeds "
            f"max_items={max_items}"
        )
    items = list(instance)
    # seed: everything alone (always feasible)
    best = sum(it.length for it in items)
    lower_seed = opt_sandwich(instance).lower

    groups: list[list[Item]] = []

    def current_cost() -> float:
        return sum(_group_cost(g) for g in groups)

    def dfs(idx: int) -> None:
        nonlocal best
        if idx == n:
            best = min(best, current_cost())
            return
        it = items[idx]
        # optimistic completion: remaining items cost at least 0 extra
        if current_cost() >= best - 1e-12:
            return
        for g in groups:
            if _fits_group(g, it, capacity):
                g.append(it)
                dfs(idx + 1)
                g.pop()
        groups.append([it])
        dfs(idx + 1)
        groups.pop()
        if best <= lower_seed + 1e-12:
            return

    dfs(0)
    return best


def opt_reference(
    instance: Instance, *, capacity: float = 1.0, max_exact: int = 26
) -> OptSandwich:
    """The best available OPT_R sandwich: closed-form bounds ∩ exact oracle.

    The closed-form bounds assume unit capacity; for other capacities only
    the oracle is used.
    """
    oracle = opt_repacking(instance, capacity=capacity, max_exact=max_exact)
    if capacity != 1.0:
        return oracle
    closed = opt_sandwich(instance)
    return OptSandwich(
        max(closed.lower, oracle.lower), min(closed.upper, oracle.upper)
    )
