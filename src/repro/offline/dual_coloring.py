"""Offline non-repacking constant-factor packer — the Dual Coloring stand-in.

The paper invokes Ren & Tang's *Dual Coloring* algorithm only through its
guarantee (Theorem 4.2: ``DC(σ) ≤ 4·OPT_R(σ)``, non-repacking), using it to
transfer the Theorem 4.3 lower bound from OPT_R to OPT_NR.  The SPAA'16
construction itself is not reproduced in the paper; per DESIGN.md §4 we
substitute an offline non-repacking packer in the busy-time-scheduling
style that plays the same role:

1. *big* items (size > 1/2) each occupy a private bin — their total usage
   is ``Σ len ≤ 2 Σ size·len ≤ 2·d(σ) ≤ 2·OPT_R``;
2. *small* items (size ≤ 1/2) are packed first-fit in non-increasing order
   of interval length, with full interval-load feasibility checks.

The 4×OPT_R factor of the stand-in is verified empirically by experiment
THM4.2 over the workload families used in the lower-bound experiments; the
lower-bound experiment additionally reports ratios against the *exact*
OPT_R oracle so its conclusion does not hinge on this constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.bins import LOAD_EPS
from ..core.errors import PackingError
from ..core.instance import Instance
from ..core.item import Item
from ..core.profile import load_profile

__all__ = ["OfflineAssignment", "dual_coloring", "first_fit_decreasing_length"]


@dataclass(frozen=True)
class OfflineAssignment:
    """An offline packing: a partition of the items into co-located groups."""

    groups: tuple[tuple[Item, ...], ...]
    capacity: float = 1.0

    @property
    def cost(self) -> float:
        """Total usage time: Σ over groups of the span of the group."""
        return sum(self._group_span(g) for g in self.groups)

    @property
    def n_bins(self) -> int:
        return len(self.groups)

    @staticmethod
    def _group_span(group: Sequence[Item]) -> float:
        from ..core.intervals import union_measure

        return union_measure((it.arrival, it.departure) for it in group)  # type: ignore[misc]

    def audit(self) -> None:
        """Verify every group respects capacity at all times."""
        for k, g in enumerate(self.groups):
            peak = load_profile(g).max()
            if peak > self.capacity + LOAD_EPS:
                raise PackingError(
                    f"offline group {k} overloaded: peak {peak:.9f}"
                )
        uids = [it.uid for g in self.groups for it in g]
        if len(uids) != len(set(uids)):
            raise PackingError("an item appears in two offline groups")


def _fits(group: List[Item], item: Item, capacity: float) -> bool:
    checkpoints = {item.arrival}
    checkpoints.update(
        g.arrival
        for g in group
        if item.arrival <= g.arrival < item.departure  # type: ignore[operator]
    )
    for t in checkpoints:
        load = item.size + sum(
            g.size for g in group if g.arrival <= t < g.departure  # type: ignore[operator]
        )
        if load > capacity + LOAD_EPS:
            return False
    return True


def first_fit_decreasing_length(
    items: Sequence[Item], *, capacity: float = 1.0
) -> OfflineAssignment:
    """Offline first-fit in non-increasing interval-length order."""
    order = sorted(
        items, key=lambda it: (-(it.departure - it.arrival), it.arrival, it.uid)  # type: ignore[operator]
    )
    groups: List[List[Item]] = []
    for it in order:
        for g in groups:
            if _fits(g, it, capacity):
                g.append(it)
                break
        else:
            groups.append([it])
    return OfflineAssignment(tuple(tuple(g) for g in groups), capacity)


def dual_coloring(instance: Instance, *, capacity: float = 1.0) -> OfflineAssignment:
    """The Dual-Coloring stand-in: private bins for big items, FFD-by-length
    for the rest (see module docstring and DESIGN.md §4)."""
    big = [it for it in instance if it.size > capacity / 2 + LOAD_EPS]
    small = [it for it in instance if it.size <= capacity / 2 + LOAD_EPS]
    small_assignment = first_fit_decreasing_length(small, capacity=capacity)
    groups = tuple((it,) for it in big) + small_assignment.groups
    return OfflineAssignment(groups, capacity)
