"""The constructive repacking packer behind Lemma 3.1.

Lemma 3.1's proof observes that a repacking algorithm may maintain the
invariant *any two open bins have combined load strictly greater than 1*:
whenever two bins sum to ≤ 1 their contents are merged.  Under the
invariant at most one bin has load ≤ 1/2, so the open-bin count ``n``
satisfies ``n < 2·S_t + 1 ≤ 2⌈S_t⌉ + 1``, i.e. ``n ≤ 2⌈S_t⌉``, and the
total usage is at most ``∫ 2⌈S_t⌉ dt ≤ 2·d(σ) + 2·span(σ)``.

:func:`waterfill` simulates exactly that: first-fit insertion, then a merge
pass after every event.  It returns the usage cost together with the
open-bin-count step function so the pointwise guarantee can be audited
(experiment LEM3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bins import LOAD_EPS
from ..core.instance import Instance
from ..core.profile import LoadProfile

__all__ = ["waterfill", "WaterfillResult"]


@dataclass(frozen=True)
class WaterfillResult:
    """Outcome of the Lemma 3.1 constructive repacking."""

    cost: float
    profile: LoadProfile  #: number of open bins over time

    @property
    def max_open(self) -> int:
        return int(self.profile.max())


def waterfill(instance: Instance, *, capacity: float = 1.0) -> WaterfillResult:
    """Run the merge-on-event repacking packer and return its usage cost."""
    if len(instance) == 0:
        return WaterfillResult(0.0, LoadProfile(np.asarray([0.0]), np.zeros(0)))

    events: list[tuple[float, int, int]] = []  # (time, kind 0=dep 1=arr, idx)
    for k, it in enumerate(instance):
        events.append((it.arrival, 1, k))
        events.append((it.departure, 0, k))  # type: ignore[arg-type]
    events.sort()

    bins: list[set[int]] = []  # sets of item indices
    loads: list[float] = []
    sizes = [it.size for it in instance]
    where: dict[int, int] = {}

    times: list[float] = []
    counts: list[int] = []

    def merge_pass() -> None:
        merged = True
        while merged:
            merged = False
            order = sorted(range(len(bins)), key=loads.__getitem__)
            for a_pos in range(len(order)):
                for b_pos in range(a_pos + 1, len(order)):
                    a, b = order[a_pos], order[b_pos]
                    if loads[a] + loads[b] <= capacity + LOAD_EPS:
                        for idx in bins[a]:
                            where[idx] = b
                        bins[b] |= bins[a]
                        loads[b] += loads[a]
                        bins[a].clear()
                        loads[a] = 0.0
                        merged = True
                        break
                if merged:
                    break
            # drop empty bins
            keep = [k for k in range(len(bins)) if bins[k]]
            if len(keep) != len(bins):
                remap = {old: new for new, old in enumerate(keep)}
                new_bins = [bins[k] for k in keep]
                new_loads = [loads[k] for k in keep]
                for idx, b in where.items():
                    where[idx] = remap[b]
                bins[:] = new_bins
                loads[:] = new_loads

    pos = 0
    n_ev = len(events)
    while pos < n_ev:
        t = events[pos][0]
        while pos < n_ev and events[pos][0] == t:
            _, kind, idx = events[pos]
            pos += 1
            if kind == 0:  # departure
                b = where.pop(idx)
                bins[b].discard(idx)
                loads[b] -= sizes[idx]
                if not bins[b]:
                    loads[b] = 0.0
            else:  # arrival: first-fit, else new bin
                for b in range(len(bins)):
                    if loads[b] + sizes[idx] <= capacity + LOAD_EPS:
                        bins[b].add(idx)
                        loads[b] += sizes[idx]
                        where[idx] = b
                        break
                else:
                    bins.append({idx})
                    loads.append(sizes[idx])
                    where[idx] = len(bins) - 1
        merge_pass()
        times.append(t)
        counts.append(sum(1 for b in bins if b))

    bps = np.asarray(times)
    vals = np.asarray(counts[:-1], dtype=float)
    profile = LoadProfile(bps, vals)
    return WaterfillResult(cost=profile.integral(), profile=profile)
