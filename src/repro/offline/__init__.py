"""Offline machinery: bounds, exact oracles, and offline packers."""

from .binpack import ffd, l2_lower_bound, min_bins, min_bins_bounded
from .bounds import (
    OptSandwich,
    ceil_load_bound,
    demand_bound,
    lemma31_ceil_upper,
    lemma31_demand_span_upper,
    opt_sandwich,
    span_bound,
)
from .dual_coloring import (
    OfflineAssignment,
    dual_coloring,
    first_fit_decreasing_length,
)
from .optimal import opt_nonrepacking, opt_reference, opt_repacking
from .waterfill import WaterfillResult, waterfill

__all__ = [
    "ffd",
    "l2_lower_bound",
    "min_bins",
    "min_bins_bounded",
    "OptSandwich",
    "demand_bound",
    "span_bound",
    "ceil_load_bound",
    "lemma31_ceil_upper",
    "lemma31_demand_span_upper",
    "opt_sandwich",
    "OfflineAssignment",
    "dual_coloring",
    "first_fit_decreasing_length",
    "opt_repacking",
    "opt_nonrepacking",
    "opt_reference",
    "WaterfillResult",
    "waterfill",
]
