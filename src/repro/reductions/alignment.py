"""Input reductions from Sections 3 and 5 of the paper.

Two transformations:

- :func:`align_departures` — the σ → σ′ reduction: every item of type
  ``T = (i, c)`` (length class ``i``, arrival window ``c``) has its
  departure delayed to ``(c+1)·2^i``.  Afterwards, items of the same type
  either depart together or do not intersect, each length grows by at most
  4×, and Corollary 3.4 gives ``OPT_R(σ′) ≤ 16·OPT_R(σ)`` for inputs whose
  active periods form one continuous interval.  The reduction is applied
  *only in the analysis* — HA and CDFF never see σ′.
- :func:`partition_aligned` — the online decomposition of an aligned input
  into mutually disjoint segments σ_0, σ_1, … (Section 5 preamble): a
  segment starting at ``t_0`` spans ``[t_0, t_0 + μ_seg]`` with
  ``μ_seg = 2^{⌈log₂ (longest item arriving at t_0)⌉}``, and every item
  arriving in the segment also departs inside it.
"""

from __future__ import annotations

import math
from typing import List

from ..algorithms.base import item_type, type_departure_deadline
from ..core.errors import AlignmentError
from ..core.instance import Instance
from ..core.item import Item

__all__ = [
    "align_departures",
    "partition_aligned",
    "is_aligned",
    "assert_aligned",
]


def align_departures(instance: Instance, *, min_class: int = 1) -> Instance:
    """The σ → σ′ reduction of Section 3.

    Each item's departure moves to ``(c+1)·2^i`` where ``(i, c)`` is its
    type.  Lengths increase by at most a factor of 4 (Observations 1–2).
    ``min_class=0`` applies the aligned-input variant of Section 5.2, where
    every arrival is already a multiple of ``2^i`` and the reduction simply
    rounds the departure up to the next multiple of ``2^i``.
    """

    def convert(item: Item) -> Item:
        T = item_type(item, min_class=min_class)
        deadline = type_departure_deadline(T)
        if deadline <= item.arrival:
            raise AlignmentError(
                f"reduction produced an empty interval for {item}"
            )
        return item.with_departure(max(deadline, item.departure))  # type: ignore[arg-type]

    return instance.map(convert)


def is_aligned(instance: Instance) -> bool:
    """Whether the instance satisfies Definition 2.1 (aligned input)."""
    try:
        assert_aligned(instance)
    except AlignmentError:
        return False
    return True


def assert_aligned(instance: Instance) -> None:
    """Raise :class:`AlignmentError` unless the input is aligned.

    Definition 2.1: items of length in ``(2^{i-1}, 2^i]`` arrive only at
    (non-negative integer) multiples of ``2^i``; lengths must exceed 1/2 so
    class 0 is ``(1/2, 1]``.
    """
    for it in instance:
        if it.length <= 0.5:
            raise AlignmentError(
                f"{it}: aligned items must have length > 1/2"
            )
        i = max(0, math.ceil(math.log2(it.length) - 1e-12))
        width = 2**i
        t = it.arrival
        if t < 0 or abs(t - round(t)) > 1e-9 or round(t) % width != 0:
            raise AlignmentError(
                f"{it}: class-{i} items must arrive at multiples of {width}"
            )


def partition_aligned(instance: Instance) -> List[Instance]:
    """Decompose an aligned input into disjoint segments σ_0, σ_1, …

    The decomposition is online-computable: a segment opens at the first
    remaining arrival ``t_0``, its horizon is ``t_0 + 2^{⌈log₂ μ'⌉}`` where
    ``μ'`` is the longest length arriving exactly at ``t_0``, and it
    contains every item arriving before the horizon.  The paper shows all
    such items also *depart* by the horizon; this function verifies that
    and raises :class:`AlignmentError` otherwise.
    """
    assert_aligned(instance)
    segments: List[Instance] = []
    remaining = list(instance)
    while remaining:
        t0 = remaining[0].arrival
        at_t0 = [it for it in remaining if it.arrival == t0]
        mu_prime = max(it.length for it in at_t0)
        horizon = t0 + 2 ** math.ceil(math.log2(mu_prime) - 1e-12)
        segment = [it for it in remaining if it.arrival < horizon]
        for it in segment:
            if it.departure > horizon + 1e-9:  # type: ignore[operator]
                raise AlignmentError(
                    f"{it} departs after the segment horizon {horizon} — "
                    "the input is not aligned"
                )
        segments.append(Instance(segment, reassign_uids=False))
        remaining = [it for it in remaining if it.arrival >= horizon]
    return segments
