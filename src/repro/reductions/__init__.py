"""Input reductions (Sections 3 and 5)."""

from .alignment import (
    align_departures,
    assert_aligned,
    is_aligned,
    partition_aligned,
)

__all__ = [
    "align_departures",
    "assert_aligned",
    "is_aligned",
    "partition_aligned",
]
