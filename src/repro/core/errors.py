"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidItemError",
    "InvalidInstanceError",
    "CapacityExceededError",
    "PackingError",
    "SimulationError",
    "CheckpointError",
    "ClairvoyanceError",
    "AlignmentError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class InvalidItemError(ReproError, ValueError):
    """An item violates the model (non-positive length, size outside (0,1], ...)."""


class InvalidInstanceError(ReproError, ValueError):
    """An instance violates the model (unsorted arrivals, duplicate ids, ...)."""


class CapacityExceededError(ReproError):
    """A placement would push a bin's momentary load above its capacity."""


class PackingError(ReproError):
    """A packing is internally inconsistent (unknown bin, item packed twice, ...)."""


class SimulationError(ReproError):
    """The simulation was driven incorrectly (time moved backwards, ...)."""


class CheckpointError(SimulationError):
    """A checkpoint cannot be used: truncated, corrupted, or wrong format.

    Subclasses :class:`SimulationError` so existing ``except
    SimulationError`` handlers keep working; raised instead of bare
    pickle errors so a damaged file is diagnosable from the message.
    """


class ClairvoyanceError(ReproError):
    """A clairvoyant quantity was requested in a non-clairvoyant context.

    Raised e.g. when a clairvoyant algorithm receives an item whose departure
    is hidden, or when a non-clairvoyant run is asked for departure times.
    """


class AlignmentError(ReproError, ValueError):
    """An input does not satisfy the aligned-input definition (Def. 2.1)."""
