"""Results of a packing simulation and derived accounting.

:class:`PackingResult` is the immutable outcome of one run: the true items,
the item→bin assignment, and one :class:`~repro.core.bins.BinRecord` per bin.
The MinUsageTime objective (the paper's ``ON(σ)``) is the sum of per-bin
usages.  The result also exposes the open-bin-count step function
``ON_t(σ)`` (the paper's ``HA_t`` / ``CDFF_{t^+}``), whose integral equals
the cost — an identity the test-suite checks on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

import numpy as np

from .bins import BinRecord
from .errors import PackingError
from .item import Item
from .profile import LoadProfile

__all__ = ["PackingResult"]


@dataclass(frozen=True)
class PackingResult:
    """The audited outcome of simulating one algorithm on one input."""

    algorithm: str
    items: tuple[Item, ...]
    assignment: Dict[int, int]  #: item uid -> bin uid
    bins: tuple[BinRecord, ...]
    departed_at: Dict[int, float]  #: actual departure time per item uid
    capacity: float = 1.0

    # ------------------------------------------------------------------ #
    @property
    def cost(self) -> float:
        """Total usage time ``ON(σ) = Σ_bins span(items in bin)``."""
        return sum(rec.usage for rec in self.bins)

    @property
    def n_bins(self) -> int:
        """Total number of (busy periods of) bins ever opened."""
        return len(self.bins)

    @property
    def max_open(self) -> int:
        """The classical DBP objective: max simultaneous open bins."""
        prof = self.open_bins_profile()
        return int(prof.max())

    def bin_of(self, uid: int) -> BinRecord:
        """The record of the bin that held item ``uid``."""
        target = self.assignment.get(uid)
        if target is None:
            raise PackingError(f"item {uid} was never packed")
        for rec in self.bins:
            if rec.uid == target:
                return rec
        raise PackingError(f"bin {target} has no record")

    def items_of(self, bin_uid: int) -> tuple[Item, ...]:
        """The (true) items that were packed into bin ``bin_uid``."""
        return tuple(
            it for it in self.items if self.assignment.get(it.uid) == bin_uid
        )

    def true_interval(self, uid: int) -> tuple[float, float]:
        """The realised ``[arrival, departure)`` of item ``uid``.

        For adaptive items the departure comes from the recorded actual
        departure, not the (absent) scheduled one.
        """
        item = next(it for it in self.items if it.uid == uid)
        dep = self.departed_at.get(uid, item.departure)
        if dep is None:
            raise PackingError(f"item {uid} never departed")
        return item.arrival, dep

    # ------------------------------------------------------------------ #
    def open_bins_profile(self) -> LoadProfile:
        """``ON_t`` — number of open bins as a step function of time."""
        if not self.bins:
            return LoadProfile(np.asarray([0.0]), np.zeros(0))
        times = np.concatenate(
            [
                np.asarray([rec.opened_at for rec in self.bins]),
                np.asarray([rec.closed_at for rec in self.bins]),
            ]
        )
        deltas = np.concatenate(
            [np.ones(len(self.bins)), -np.ones(len(self.bins))]
        )
        order = np.argsort(times, kind="stable")
        times, deltas = times[order], deltas[order]
        bps, start_idx = np.unique(times, return_index=True)
        sums = np.add.reduceat(deltas, start_idx)
        values = np.cumsum(sums)[:-1]
        values = np.round(values)  # counts are integral
        return LoadProfile(bps, values)

    def open_bins_at(self, t: float) -> int:
        """Number of bins open at time ``t`` (right-continuous)."""
        return int(self.open_bins_profile()(t))

    def bins_with_tag(self, predicate) -> tuple[BinRecord, ...]:
        """Bin records whose tag satisfies ``predicate``."""
        return tuple(rec for rec in self.bins if predicate(rec.tag))

    def cost_of_tag(self, predicate) -> float:
        """Usage time restricted to bins whose tag satisfies ``predicate``."""
        return sum(rec.usage for rec in self.bins_with_tag(predicate))

    def summary(self) -> Mapping[str, Any]:
        """A small dict for tables and logging."""
        return {
            "algorithm": self.algorithm,
            "n_items": len(self.items),
            "n_bins": self.n_bins,
            "cost": self.cost,
            "max_open": self.max_open,
        }
