"""Struct-of-arrays item storage: the columnar data plane.

An :class:`ItemStore` keeps items as four parallel columns — C-double
``array('d')`` columns for arrival/departure/size plus an ``array('q')``
uid column — instead of a tuple of boxed :class:`~repro.core.item.Item`
dataclasses.  One stored item costs 28 bytes of column space instead of
a ~150-byte Python object, loaders can fill columns straight from parsed
text without materializing (and re-materializing) dataclasses, and the
hot simulation loop reads plain C doubles.

Unknown departures (:data:`~repro.core.item.UNKNOWN_DEPARTURE`) are
stored as NaN — NaN never validates as a real departure, so the sentinel
cannot collide with data — and surface as ``None`` again on any boxed
view.

Layering (who holds columns, who holds views)
---------------------------------------------
- **Stores hold columns.**  :class:`~repro.core.instance.Instance`, the
  trace loaders in :mod:`repro.workloads.io`, the streaming engine's
  chunked sources and the serve shards' decode scratch all keep their
  items in an :class:`ItemStore`.
- **Views are transient.**  Algorithm code keeps receiving real
  :class:`Item` objects — :meth:`ItemStore.item` materializes a lazy,
  already-validated view via :func:`item_view` (which skips
  ``__post_init__`` re-validation; rows were validated on
  :meth:`append`).  Nothing downstream of the kernel can tell columns
  from boxed storage, which is what keeps the refactor
  decision-for-decision invisible.

Slices are **zero-copy**: :meth:`ItemStore.slice` shares the parent's
column arrays and narrows a ``(start, stop)`` window, so slicing a
million-item instance allocates four references, not four copies.
Windowed (sliced) stores are read-only; only a root store accepts
:meth:`append`/:meth:`pop`/:meth:`clear`/:meth:`sort_by_arrival`.

Validation mirrors :class:`Item` exactly — same checks, same error
messages — so loaders report identical diagnostics whichever plane they
fill, and :meth:`validate_release_order` reuses the wording of
``Instance._validate``.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, Iterator, Optional, Tuple

from .errors import InvalidInstanceError, InvalidItemError
from .item import Item, item_view

__all__ = ["ItemStore", "validate_item_values"]

_INF = math.inf
_NAN = math.nan


def validate_item_values(
    arrival: float, departure: Optional[float], size: float
) -> None:
    """Validate an item triple without building an :class:`Item`.

    Raises :class:`InvalidItemError` with byte-identical messages to
    ``Item.__post_init__`` — the shared validation site for columnar
    decoders (loaders, the serve protocol, :meth:`ItemStore.append`).
    """
    if not (-_INF < arrival < _INF):  # False for NaN and both infinities
        raise InvalidItemError(f"arrival must be finite, got {arrival!r}")
    if departure is not None:
        if not (-_INF < departure < _INF):
            raise InvalidItemError(
                f"departure must be finite or None, got {departure!r}"
            )
        if departure <= arrival:
            raise InvalidItemError(
                "departure must be strictly after arrival "
                f"(got [{arrival}, {departure}))"
            )
    if not (0.0 < size <= 1.0):
        raise InvalidItemError(f"size must lie in (0, 1], got {size!r}")


class ItemStore:
    """A growable struct-of-arrays table of items.

    A *root* store owns its columns and may be appended to; a *windowed*
    store (from :meth:`slice`) shares the root's column arrays with a
    ``[start, stop)`` window and is read-only.  Rows are validated on
    :meth:`append` (same rules and messages as :class:`Item`), so views
    materialized later never re-validate.
    """

    __slots__ = (
        "arrivals",
        "departures",
        "sizes",
        "uids",
        "_start",
        "_stop",
        "_uid_rows",
    )

    def __init__(self) -> None:
        self.arrivals = array("d")
        self.departures = array("d")  # NaN encodes an unknown departure
        self.sizes = array("d")
        self.uids = array("q")
        self._start = 0
        self._stop: Optional[int] = None  # None: window tracks the columns
        self._uid_rows: Optional[dict[int, int]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_items(cls, items: Iterable[Item]) -> "ItemStore":
        """A root store holding a copy of ``items`` (uids preserved)."""
        store = cls()
        append = store.append
        for it in items:
            append(it.arrival, it.departure, it.size, it.uid)
        return store

    @classmethod
    def from_tuples(
        cls, triples: Iterable[Tuple[float, float, float]]
    ) -> "ItemStore":
        """A root store from ``(arrival, departure, size)`` triples."""
        store = cls()
        append = store.append
        for a, d, s in triples:
            append(a, d, s)
        return store

    def append(
        self,
        arrival: float,
        departure: Optional[float],
        size: float,
        uid: int = -1,
    ) -> int:
        """Validate and add one row; returns its row index.

        Only root stores accept appends — a windowed store shares its
        parent's arrays, and growing them would silently change every
        sibling window.
        """
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot append to a sliced ItemStore")
        if not (-_INF < arrival < _INF):
            raise InvalidItemError(f"arrival must be finite, got {arrival!r}")
        if departure is None:
            departure = _NAN
        elif not (-_INF < departure < _INF):
            raise InvalidItemError(
                f"departure must be finite or None, got {departure!r}"
            )
        elif departure <= arrival:
            raise InvalidItemError(
                "departure must be strictly after arrival "
                f"(got [{arrival}, {departure}))"
            )
        if not (0.0 < size <= 1.0):
            raise InvalidItemError(f"size must lie in (0, 1], got {size!r}")
        row = len(self.arrivals)
        self.arrivals.append(arrival)
        self.departures.append(departure)
        self.sizes.append(size)
        self.uids.append(uid)
        self._uid_rows = None
        return row

    def extend_columns(
        self,
        arrivals,
        departures,
        sizes,
        uid_start: Optional[int] = None,
    ) -> int:
        """Validate and bulk-append parallel rows (root stores only).

        ``departures`` entries may be ``None`` for unknown departures;
        an explicit NaN is rejected exactly like :meth:`append` rejects
        it.  The whole batch is validated **before** any column grows,
        so a bad row leaves the store unchanged; the raised
        :class:`InvalidItemError` carries the same message as
        :meth:`append` plus a ``row`` attribute with the offending
        batch index.  uids are filled sequentially from ``uid_start``
        (or -1, matching :meth:`append`'s default).  Returns the index
        of the first appended row.

        This is the loaders' fast path: three C-level ``array.extend``
        calls plus one tight validation loop, instead of one
        :meth:`append` call per row.
        """
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot append to a sliced ItemStore")
        n = len(arrivals)
        if len(departures) != n or len(sizes) != n:
            raise InvalidInstanceError(
                "column lengths differ: "
                f"{n} arrivals, {len(departures)} departures, "
                f"{len(sizes)} sizes"
            )
        for i in range(n):
            a = arrivals[i]
            d = departures[i]
            s = sizes[i]
            if d is None:
                if -_INF < a < _INF and 0.0 < s <= 1.0:
                    continue
            elif -_INF < a < _INF and 0.0 < s <= 1.0 and a < d < _INF:
                continue
            try:  # exact append()/Item message for the offending row
                validate_item_values(a, d, s)
            except InvalidItemError as exc:
                exc.row = i
                raise
        row = len(self.arrivals)
        self.arrivals.extend(arrivals)
        self.departures.extend(
            _NAN if d is None else d for d in departures
        )
        self.sizes.extend(sizes)
        start = -1 if uid_start is None else uid_start
        self.uids.extend(
            range(start, start + n) if uid_start is not None
            else (-1 for _ in range(n))
        )
        self._uid_rows = None
        return row

    def pop(self) -> None:
        """Drop the last row (root stores only) — the decode-failure path."""
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot pop from a sliced ItemStore")
        self.arrivals.pop()
        self.departures.pop()
        self.sizes.pop()
        self.uids.pop()
        self._uid_rows = None

    def clear(self) -> None:
        """Empty a root store in place (scratch-buffer reuse)."""
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot clear a sliced ItemStore")
        del self.arrivals[:]
        del self.departures[:]
        del self.sizes[:]
        del self.uids[:]
        self._uid_rows = None

    # ------------------------------------------------------------------ #
    # Shape and access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        stop = len(self.arrivals) if self._stop is None else self._stop
        return stop - self._start

    def columns(self):
        """The raw shared columns plus this store's window.

        Returns ``(arrivals, departures, sizes, uids, start, stop)``.
        The arrays are the live backing storage (shared with every
        sibling window) — callers must treat them as read-only and index
        only within ``[start, stop)``.  This is the hot-path accessor the
        kernel and engine loop over.
        """
        stop = len(self.arrivals) if self._stop is None else self._stop
        return (
            self.arrivals,
            self.departures,
            self.sizes,
            self.uids,
            self._start,
            stop,
        )

    def row(self, i: int) -> Tuple[float, Optional[float], float, int]:
        """Row ``i`` (window-relative) as an ``(a, d, s, uid)`` tuple."""
        j = self._index(i)
        d = self.departures[j]
        return (
            self.arrivals[j],
            None if d != d else d,
            self.sizes[j],
            self.uids[j],
        )

    def item(self, i: int) -> Item:
        """Row ``i`` (window-relative) as a lazy :class:`Item` view."""
        j = self._index(i)
        d = self.departures[j]
        return item_view(
            self.arrivals[j],
            None if d != d else d,
            self.sizes[j],
            self.uids[j],
        )

    def __getitem__(self, i):
        if isinstance(i, slice):
            start, stop, step = i.indices(len(self))
            if step != 1:
                out = ItemStore()
                for k in range(start, stop, step):
                    a, d, s, u = self.row(k)
                    out.append(a, d, s, u)
                return out
            return self.slice(start, stop)
        return self.item(i)

    def __iter__(self) -> Iterator[Item]:
        arr, dep, siz, uids, start, stop = self.columns()
        for j in range(start, stop):
            d = dep[j]
            yield item_view(arr[j], None if d != d else d, siz[j], uids[j])

    def _index(self, i: int) -> int:
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"row {i} out of range for {n} items")
        return self._start + i

    # ------------------------------------------------------------------ #
    # Zero-copy slicing
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int) -> "ItemStore":
        """A read-only window ``[start, stop)`` sharing these columns.

        O(1) and allocation-free in the row count: the child aliases the
        parent's array objects.  Appending to the root after slicing is
        allowed (the window's bounds are fixed, so it never sees the new
        rows).
        """
        n = len(self)
        if not (0 <= start <= stop <= n):
            raise InvalidInstanceError(
                f"slice [{start}, {stop}) out of range for {n} items"
            )
        child = object.__new__(ItemStore)
        child.arrivals = self.arrivals
        child.departures = self.departures
        child.sizes = self.sizes
        child.uids = self.uids
        child._start = self._start + start
        child._stop = self._start + stop
        child._uid_rows = None
        return child

    @property
    def is_view(self) -> bool:
        """Whether this store is a read-only window over shared columns."""
        return self._stop is not None or self._start != 0

    # ------------------------------------------------------------------ #
    # uid index
    # ------------------------------------------------------------------ #
    def row_of_uid(self, uid: int) -> int:
        """The window-relative row holding ``uid`` (lazy O(n) index build).

        Raises ``KeyError`` when absent.  Later duplicates win, matching
        dict-update semantics; stores built by :class:`Instance` have
        unique uids by validation.
        """
        index = self._uid_rows
        if index is None:
            uids, start = self.uids, self._start
            index = {
                uids[j]: j - start for j in range(start, start + len(self))
            }
            self._uid_rows = index
        return index[uid]

    def assign_sequential_uids(self) -> None:
        """Renumber uids to the window order ``0 .. n-1`` (root only)."""
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot renumber a sliced ItemStore")
        uids = self.uids
        for i in range(len(uids)):
            uids[i] = i
        self._uid_rows = None

    # ------------------------------------------------------------------ #
    # Ordering
    # ------------------------------------------------------------------ #
    def is_sorted(self) -> bool:
        """Whether arrivals are non-decreasing over the window."""
        arr, _, _, _, start, stop = self.columns()
        last = -_INF
        for j in range(start, stop):
            a = arr[j]
            if a < last:
                return False
            last = a
        return True

    def sort_by_arrival(self) -> None:
        """Stable in-place sort of all columns by arrival (root only).

        Ties keep their current (file/insertion) order — the
        simultaneous-arrival order is part of the input's semantics.
        No-op (and O(n)) when already sorted, the common case for
        generator output and ``dump_jsonl`` traces.
        """
        if self._stop is not None or self._start:
            raise InvalidInstanceError("cannot sort a sliced ItemStore")
        if self.is_sorted():
            return
        arr = self.arrivals
        order = sorted(range(len(arr)), key=arr.__getitem__)
        for name in ("arrivals", "departures", "sizes", "uids"):
            col = getattr(self, name)
            setattr(self, name, array(col.typecode, map(col.__getitem__, order)))
        self._uid_rows = None

    # ------------------------------------------------------------------ #
    # Instance-level validation (shared with Instance._validate)
    # ------------------------------------------------------------------ #
    def validate_release_order(
        self, *, require_departures: bool = True, check_uids: bool = True
    ) -> None:
        """Check the instance invariants over this window.

        Raises :class:`InvalidInstanceError` with the exact messages
        historically produced by ``Instance._validate``: known
        departures (optional), non-decreasing arrivals, unique uids
        (optional — skipped by callers that just assigned sequential
        uids, which are unique by construction).
        """
        arr, dep, _, uids, start, stop = self.columns()
        last = -_INF
        seen: Optional[set] = set() if check_uids else None
        for j in range(start, stop):
            if require_departures:
                d = dep[j]
                if d != d:
                    raise InvalidInstanceError(
                        "instance items must have known departures, "
                        f"got {self.item(j - start)}"
                    )
            a = arr[j]
            if a < last:
                raise InvalidInstanceError(
                    "items must be in non-decreasing arrival order "
                    f"({self.item(j - start)} arrives before {last:g})"
                )
            last = a
            if seen is not None:
                u = uids[j]
                if u in seen:
                    raise InvalidInstanceError(f"duplicate item uid {u}")
                seen.add(u)

    def __repr__(self) -> str:
        kind = "view" if self.is_view else "root"
        return f"ItemStore(n={len(self)}, {kind})"
