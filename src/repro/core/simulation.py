"""Batch frontends over the placement kernel.

Two entry points:

- :func:`simulate` — run an online algorithm over a complete
  :class:`~repro.core.instance.Instance` and return a
  :class:`~repro.core.result.PackingResult`.
- :class:`IncrementalSimulation` — feed items one at a time and inspect the
  algorithm's state between releases.  This is what adaptive adversaries
  (Section 4 of the paper, and the non-clairvoyant Ω(μ) construction) use:
  they watch how many bins the online algorithm has open *right now* and
  choose the next item (or a departure time) accordingly.

All simulation semantics — half-open intervals, departures-before-arrivals
at equal ``t``, release-order tie-breaks, bin-closes-when-empty,
clairvoyance masking, the pending-bin commit protocol — live in
:class:`~repro.core.kernel.PlacementKernel`; this module only adapts the
kernel to the batch calling conventions.  The streaming engine
(:mod:`repro.engine.loop`) wraps the *same* kernel, so batch/stream parity
holds by construction.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from .bins import Bin
from .instance import Instance
from .item import Item
from .kernel import PlacementKernel
from .result import PackingResult

__all__ = ["IncrementalSimulation", "simulate", "simulate_many"]


class IncrementalSimulation:
    """Drives one online algorithm over a stream of items.

    A thin, fully-recording adapter over
    :class:`~repro.core.kernel.PlacementKernel`: it keeps complete history
    (items, bin records, assignment, the ON_t event log) so
    :meth:`finish` can return an audited
    :class:`~repro.core.result.PackingResult`.

    Parameters
    ----------
    algorithm:
        An object satisfying the
        :class:`~repro.algorithms.base.OnlineAlgorithm` protocol.
    capacity:
        Bin capacity (1.0 in the paper; parameterisable so the
        bounded-parallelism setting of Shalom et al. — ``g`` unit slots — can
        be expressed as ``capacity=1`` with sizes ``1/g``, or directly as
        ``capacity=g`` with unit sizes).
    indexed:
        Maintain the kernel's O(log n) open-bin index (default).  Pass
        ``False`` for the plain linear-scan placement queries.
    listener:
        Optional :class:`~repro.core.kernel.KernelListener` (or sequence
        of them) observing every kernel event — the hook the
        observability layer (:mod:`repro.obs`) uses.
    """

    def __init__(
        self,
        algorithm,
        *,
        capacity: float = 1.0,
        indexed: bool = True,
        listener=None,
    ) -> None:
        self._kernel = PlacementKernel(
            algorithm,
            capacity=capacity,
            record=True,
            record_events=True,
            indexed=indexed,
            listener=listener,
            facade=self,
        )

    # ------------------------------------------------------------------ #
    # Inspection API (used by algorithms and adversaries)
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self):
        return self._kernel.algorithm

    @property
    def capacity(self) -> float:
        return self._kernel.capacity

    @property
    def time(self) -> float:
        return self._kernel.time

    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        return self._kernel.open_bins

    @property
    def open_bin_count(self) -> int:
        return self._kernel.open_bin_count

    @property
    def cost_so_far(self) -> float:
        """Usage time accumulated by closed bins plus open bins up to now."""
        return self._kernel.cost_so_far

    def is_open(self, uid: int) -> bool:
        """Whether bin ``uid`` is currently open (O(1))."""
        return self._kernel.is_open(uid)

    def open_bin(self, tag: Hashable = None) -> Bin:
        """Called *by the algorithm inside place()* to open a fresh bin.

        The returned bin must be the one ``place`` returns; opening more
        than one bin per placement is an error.
        """
        return self._kernel.open_bin(tag)

    # indexed candidate queries (SimulationView protocol)
    def first_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.first_fit(item)

    def best_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.best_fit(item)

    def worst_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.worst_fit(item)

    def last_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.last_fit(item)

    def fitting_bins(self, item: Item) -> list[Bin]:
        return self._kernel.fitting_bins(item)

    # ------------------------------------------------------------------ #
    # Driving API
    # ------------------------------------------------------------------ #
    def release(self, item: Item) -> Bin:
        """Release ``item`` to the algorithm and return the bin it chose."""
        return self._kernel.release(item)

    def depart(self, uid: int, time: float) -> None:
        """Force an adaptive item (released with unknown departure) out.

        Used by non-clairvoyant adversaries that decide departure times as a
        function of the algorithm's behaviour.
        """
        self._kernel.depart(uid, time)

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, processing scheduled departures."""
        self._kernel.run_until(time)

    def finish(self) -> PackingResult:
        """Process all remaining departures and return the final result."""
        return self._kernel.finish()

    def __repr__(self) -> str:
        return f"IncrementalSimulation({self._kernel!r})"


def simulate(
    algorithm,
    instance: Instance,
    *,
    capacity: float = 1.0,
    indexed: bool = True,
    listener=None,
) -> PackingResult:
    """Run ``algorithm`` over ``instance`` and return the audited result.

    ``listener`` (a :class:`~repro.core.kernel.KernelListener` or a
    sequence of them) observes every kernel event — this is how the
    observability layer (:mod:`repro.obs`) traces or meters a batch run
    without touching its semantics.
    """
    kernel = PlacementKernel(
        algorithm,
        capacity=capacity,
        record=True,
        indexed=indexed,
        listener=listener,
    )
    if isinstance(instance, Instance):
        # columnar fast path: release straight off the store's columns
        kernel.release_store(instance.store)
    else:
        release = kernel.release
        for item in instance:
            release(item)
    return kernel.finish()


def simulate_many(
    algorithm_factory, instances: Iterable[Instance], *, capacity: float = 1.0
) -> list[PackingResult]:
    """Run a fresh algorithm (from ``algorithm_factory``) on each instance."""
    return [
        simulate(algorithm_factory(), inst, capacity=capacity)
        for inst in instances
    ]
