"""The event-driven MinUsageTime packing simulator.

Two entry points:

- :func:`simulate` — run an online algorithm over a complete
  :class:`~repro.core.instance.Instance` and return a
  :class:`~repro.core.result.PackingResult`.
- :class:`IncrementalSimulation` — feed items one at a time and inspect the
  algorithm's state between releases.  This is what adaptive adversaries
  (Section 4 of the paper, and the non-clairvoyant Ω(μ) construction) use:
  they watch how many bins the online algorithm has open *right now* and
  choose the next item (or a departure time) accordingly.

Semantics (see DESIGN.md §5): intervals are half-open, departures at time
``t`` are processed before arrivals at ``t``, simultaneous arrivals are
handled strictly in release order, and a bin closes the moment it empties.

Clairvoyance is enforced by the simulator, not trusted to the algorithm: a
non-clairvoyant algorithm (``algorithm.clairvoyant == False``) receives
*masked* items — departure fields stripped — both for the item being placed
and for every item visible inside bins.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Hashable, Iterable, Optional

from .bins import Bin, BinRecord
from .errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from .instance import Instance
from .item import Item
from .result import PackingResult

__all__ = ["IncrementalSimulation", "simulate", "simulate_many"]


class IncrementalSimulation:
    """Drives one online algorithm over a stream of items.

    Parameters
    ----------
    algorithm:
        An object satisfying the
        :class:`~repro.algorithms.base.OnlineAlgorithm` protocol.
    capacity:
        Bin capacity (1.0 in the paper; parameterisable so the
        bounded-parallelism setting of Shalom et al. — ``g`` unit slots — can
        be expressed as ``capacity=1`` with sizes ``1/g``, or directly as
        ``capacity=g`` with unit sizes).
    """

    def __init__(self, algorithm, *, capacity: float = 1.0) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.algorithm = algorithm
        self.capacity = capacity
        self.time = -math.inf
        self._bin_uid = itertools.count()
        self._open: dict[int, Bin] = {}
        self._records: list[BinRecord] = []
        self._assignment: dict[int, int] = {}
        self._bin_items: dict[int, list[int]] = {}  # bin uid -> item uids ever
        self._items: list[Item] = []  # true items, release order
        self._departed_at: dict[int, float] = {}
        # (departure_time, seq, uid) heap of scheduled departures
        self._departures: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        self._item_bin: dict[int, Bin] = {}
        self._peak: dict[int, float] = {}
        self._pending_bin: Optional[Bin] = None
        self._open_count_events: list[tuple[float, int]] = []
        algorithm.reset()

    # ------------------------------------------------------------------ #
    # Inspection API (used by algorithms and adversaries)
    # ------------------------------------------------------------------ #
    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        return tuple(self._open.values())

    @property
    def open_bin_count(self) -> int:
        return len(self._open)

    @property
    def cost_so_far(self) -> float:
        """Usage time accumulated by closed bins plus open bins up to now."""
        closed = sum(rec.usage for rec in self._records)
        t = self.time if math.isfinite(self.time) else 0.0
        running = sum(t - b.opened_at for b in self._open.values())
        return closed + running

    def open_bin(self, tag: Hashable = None) -> Bin:
        """Called *by the algorithm inside place()* to open a fresh bin.

        The returned bin must be the one ``place`` returns; opening more
        than one bin per placement is an error.
        """
        if self._pending_bin is not None:
            raise PackingError("place() may open at most one new bin")
        b = Bin(next(self._bin_uid), self.capacity, self.time, tag)
        self._pending_bin = b
        return b

    # ------------------------------------------------------------------ #
    # Driving API
    # ------------------------------------------------------------------ #
    def release(self, item: Item) -> Bin:
        """Release ``item`` to the algorithm and return the bin it chose."""
        if item.arrival < self.time:
            raise SimulationError(
                f"items must be released in arrival order: {item} arrives at "
                f"{item.arrival} but the clock is at {self.time}"
            )
        self._advance(item.arrival)
        if item.departure is None and getattr(self.algorithm, "clairvoyant", True):
            raise ClairvoyanceError(
                f"clairvoyant algorithm {self.algorithm!r} received an item "
                "with unknown departure"
            )
        view = item if not _masking(self.algorithm) else item.masked()
        chosen = self.algorithm.place(view, self)
        bin_ = self._commit(item, view, chosen)
        if item.departure is not None:
            heapq.heappush(
                self._departures, (item.departure, next(self._seq), item.uid)
            )
        return bin_

    def depart(self, uid: int, time: float) -> None:
        """Force an adaptive item (released with unknown departure) out.

        Used by non-clairvoyant adversaries that decide departure times as a
        function of the algorithm's behaviour.
        """
        if time < self.time:
            raise SimulationError(
                f"departure at {time} is before the clock ({self.time})"
            )
        if uid not in self._item_bin:
            raise PackingError(f"item {uid} is not active")
        true_item = self._items[self._uid_index[uid]]
        if true_item.departure is not None:
            raise SimulationError(
                f"item {uid} has a scheduled departure at {true_item.departure}"
            )
        self._advance(time, inclusive=True)
        self._do_departure(uid, time)

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, processing scheduled departures."""
        if time < self.time:
            raise SimulationError("time may not move backwards")
        self._advance(time, inclusive=True)

    def finish(self) -> PackingResult:
        """Process all remaining departures and return the final result."""
        while self._departures:
            t, _, _ = self._departures[0]
            self._advance(t, inclusive=True)
        if self._open:
            alive = [b for b in self._open.values()]
            raise SimulationError(
                f"simulation finished with items still active in bins {alive}; "
                "adaptive items must be departed explicitly"
            )
        return PackingResult(
            algorithm=getattr(self.algorithm, "name", type(self.algorithm).__name__),
            items=tuple(self._items),
            assignment=dict(self._assignment),
            bins=tuple(self._records),
            departed_at=dict(self._departed_at),
            capacity=self.capacity,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @property
    def _uid_index(self) -> dict[int, int]:
        # small instances: rebuild lazily; cache on first use
        idx = getattr(self, "_uid_index_cache", None)
        if idx is None or len(idx) != len(self._items):
            idx = {it.uid: k for k, it in enumerate(self._items)}
            self._uid_index_cache = idx
        return idx

    def _advance(self, until: float, *, inclusive: bool = True) -> None:
        """Process scheduled departures with time ≤ ``until`` and move the clock."""
        while self._departures:
            t, _, uid = self._departures[0]
            if t > until or (not inclusive and t == until):
                break
            heapq.heappop(self._departures)
            self._do_departure(uid, t)
        self.time = max(self.time, until)

    def _do_departure(self, uid: int, t: float) -> None:
        self.time = max(self.time, t)
        bin_ = self._item_bin.pop(uid, None)
        if bin_ is None:
            return  # already departed (duplicate schedule), ignore
        removed = bin_._remove(uid)
        self._departed_at[uid] = t
        hook = getattr(self.algorithm, "notify_departure", None)
        if hook is not None:
            hook(removed, bin_, self)
        if bin_.n_items == 0:
            self._close(bin_, t)

    def _close(self, bin_: Bin, t: float) -> None:
        del self._open[bin_.uid]
        self._records.append(
            BinRecord(
                uid=bin_.uid,
                tag=bin_.tag,
                opened_at=bin_.opened_at,
                closed_at=t,
                item_uids=tuple(self._bin_items.pop(bin_.uid, ())),
                peak_load=self._peak.get(bin_.uid, 0.0),
            )
        )
        self._open_count_events.append((t, -1))
        hook = getattr(self.algorithm, "notify_close", None)
        if hook is not None:
            hook(bin_, self)

    def _commit(self, item: Item, view: Item, chosen) -> Bin:
        pending, self._pending_bin = self._pending_bin, None
        if not isinstance(chosen, Bin):
            raise PackingError(
                f"place() must return a Bin, got {chosen!r}"
            )
        if pending is not None and chosen is not pending:
            raise PackingError(
                "place() opened a new bin but returned a different one"
            )
        if pending is None and chosen.uid not in self._open:
            raise PackingError(
                f"place() returned bin {chosen.uid} which is not open"
            )
        chosen._add(view)
        if pending is not None:
            self._open[chosen.uid] = chosen
            self._open_count_events.append((self.time, +1))
        self._peak[chosen.uid] = max(
            self._peak.get(chosen.uid, 0.0), chosen.load
        )
        self._assignment[item.uid] = chosen.uid
        self._bin_items.setdefault(chosen.uid, []).append(item.uid)
        self._items.append(item)
        self._item_bin[item.uid] = chosen
        return chosen


def _masking(algorithm) -> bool:
    return not getattr(algorithm, "clairvoyant", True)


def simulate(algorithm, instance: Instance, *, capacity: float = 1.0) -> PackingResult:
    """Run ``algorithm`` over ``instance`` and return the audited result."""
    sim = IncrementalSimulation(algorithm, capacity=capacity)
    for item in instance:
        sim.release(item)
    return sim.finish()


def simulate_many(
    algorithm_factory, instances: Iterable[Instance], *, capacity: float = 1.0
) -> list[PackingResult]:
    """Run a fresh algorithm (from ``algorithm_factory``) on each instance."""
    return [
        simulate(algorithm_factory(), inst, capacity=capacity)
        for inst in instances
    ]
