"""Independent audit of packing results.

The simulator already enforces capacity at insertion time, but tests and
benchmarks re-verify every result *from scratch* here: feasibility is
recomputed from the raw item intervals and the assignment alone, without
trusting any state the simulator kept.  This is the "don't grade your own
homework" layer — any algorithm bug that slipped past the online checks
(e.g. an accounting error in bin close times) is caught by the audit.
"""

from __future__ import annotations

import math
from typing import Iterable

from .bins import LOAD_EPS
from .errors import PackingError
from .item import Item
from .profile import load_profile
from .result import PackingResult

__all__ = ["audit", "audit_cost", "check_feasible_bin"]


def check_feasible_bin(
    items: Iterable[Item], capacity: float = 1.0
) -> None:
    """Raise :class:`PackingError` if the items overload a single bin."""
    prof = load_profile(items)
    if prof.max() > capacity + LOAD_EPS:
        raise PackingError(
            f"bin overloaded: peak load {prof.max():.9f} > capacity {capacity}"
        )


def audit(result: PackingResult) -> None:
    """Fully re-verify a :class:`PackingResult`.  Raises on any violation.

    Checks, per bin:

    1. momentary load never exceeds capacity (recomputed from item data);
    2. the bin's busy time is one contiguous period exactly equal to
       ``[opened_at, closed_at)`` — i.e. the bin was closed on empty and
       never reused;
    3. every item is assigned to exactly one bin and every assignment points
       to a recorded bin;
    4. the recorded cost equals both the sum of per-bin usages and the
       integral of the open-bin-count profile.
    """
    bin_uids = {rec.uid for rec in result.bins}
    if len(bin_uids) != len(result.bins):
        raise PackingError("duplicate bin uids in result")
    seen: set[int] = set()
    for it in result.items:
        if it.uid in seen:
            raise PackingError(f"item {it.uid} appears twice")
        seen.add(it.uid)
        if it.uid not in result.assignment:
            raise PackingError(f"item {it.uid} was never assigned")
        if result.assignment[it.uid] not in bin_uids:
            raise PackingError(
                f"item {it.uid} assigned to unknown bin {result.assignment[it.uid]}"
            )

    for rec in result.bins:
        realised = [
            Item(a, d, it.size, uid=it.uid)
            for it in result.items_of(rec.uid)
            for (a, d) in [result.true_interval(it.uid)]
        ]
        if not realised:
            raise PackingError(f"bin {rec.uid} recorded with no items")
        check_feasible_bin(realised, result.capacity)
        prof = load_profile(realised)
        support = prof.support_measure()
        first = min(it.arrival for it in realised)
        last = max(it.departure for it in realised)  # type: ignore[arg-type]
        if not math.isclose(support, last - first, rel_tol=0, abs_tol=1e-9):
            raise PackingError(
                f"bin {rec.uid} has a gap in its busy period "
                f"(support {support:g} != {last - first:g}); bins must close on empty"
            )
        if not math.isclose(rec.opened_at, first, abs_tol=1e-9) or not math.isclose(
            rec.closed_at, last, abs_tol=1e-9
        ):
            raise PackingError(
                f"bin {rec.uid} records [{rec.opened_at}, {rec.closed_at}) but its "
                f"items span [{first}, {last})"
            )

    audit_cost(result)


def audit_cost(result: PackingResult) -> float:
    """Check the two cost accountings agree; return the cost."""
    per_bin = sum(rec.usage for rec in result.bins)
    profile_integral = result.open_bins_profile().integral()
    if not math.isclose(per_bin, profile_integral, rel_tol=1e-9, abs_tol=1e-9):
        raise PackingError(
            f"cost mismatch: Σ bin usage = {per_bin!r} but "
            f"∫ ON_t dt = {profile_integral!r}"
        )
    return per_bin
