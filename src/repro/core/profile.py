"""Piecewise-constant load profiles and their integrals (vectorised).

The load profile ``S_t(σ)`` — the total size of active items as a function
of time — drives every offline bound in the paper:

- the *time–space* bound ``OPT_R ≥ d(σ) = ∫ S_t dt``,
- the *span* bound ``OPT_R ≥ span(σ) = |{t : S_t > 0}|``,
- the ceil-load lower bound ``OPT_R ≥ ∫ ⌈S_t⌉ dt``, and
- Lemma 3.1's upper bound ``OPT_R ≤ ∫ 2⌈S_t⌉ dt ≤ 2·d(σ) + 2·span(σ)``.

Profiles are computed with a single NumPy event sweep: ``O(n log n)`` for
``n`` items, no per-time-step Python loop (per the HPC optimisation guide:
vectorise the hot path, keep the API simple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .errors import InvalidInstanceError
from .instance import Instance
from .item import Item

__all__ = ["LoadProfile", "load_profile", "step_function_integral"]

_EPS = 1e-12


@dataclass(frozen=True)
class LoadProfile:
    """A right-continuous step function of time.

    ``values[k]`` holds on ``[breakpoints[k], breakpoints[k+1])``; the
    function is 0 before ``breakpoints[0]`` and after ``breakpoints[-1]``.
    """

    breakpoints: np.ndarray  #: shape (m+1,), strictly increasing
    values: np.ndarray  #: shape (m,)

    def __post_init__(self) -> None:
        if self.breakpoints.ndim != 1 or self.values.ndim != 1:
            raise InvalidInstanceError("profile arrays must be 1-D")
        if len(self.breakpoints) != len(self.values) + 1:
            raise InvalidInstanceError(
                "breakpoints must have exactly one more entry than values"
            )
        if len(self.values) and np.any(np.diff(self.breakpoints) <= 0):
            raise InvalidInstanceError("breakpoints must be strictly increasing")

    # ------------------------------------------------------------------ #
    @property
    def durations(self) -> np.ndarray:
        return np.diff(self.breakpoints)

    def __call__(self, t: float) -> float:
        """Value at time ``t`` (right-continuous)."""
        if len(self.values) == 0:
            return 0.0
        if t < self.breakpoints[0] or t >= self.breakpoints[-1]:
            return 0.0
        k = int(np.searchsorted(self.breakpoints, t, side="right")) - 1
        return float(self.values[k])

    def integral(self) -> float:
        """``∫ S_t dt`` over the whole timeline."""
        if len(self.values) == 0:
            return 0.0
        return float(np.dot(self.values, self.durations))

    def ceil_integral(self) -> float:
        """``∫ ⌈S_t⌉ dt`` — the paper's main OPT_R lower bound.

        Tiny floating residues (≤ 1e-9) above an integer are not rounded up,
        so instances built from e.g. ten items of size 0.1 behave exactly.
        """
        if len(self.values) == 0:
            return 0.0
        vals = np.ceil(self.values - 1e-9)
        return float(np.dot(np.maximum(vals, 0.0), self.durations))

    def support_measure(self) -> float:
        """``span = |{t : S_t > 0}|``."""
        if len(self.values) == 0:
            return 0.0
        mask = self.values > _EPS
        return float(np.dot(mask.astype(float), self.durations))

    def max(self) -> float:
        if len(self.values) == 0:
            return 0.0
        return float(self.values.max())

    def map(self, fn) -> "LoadProfile":
        """A new profile with ``fn`` applied elementwise to the values."""
        return LoadProfile(self.breakpoints.copy(), np.asarray(fn(self.values)))

    def restricted(self, lo: float, hi: float) -> "LoadProfile":
        """The profile restricted to ``[lo, hi)``."""
        if hi <= lo:
            return LoadProfile(np.asarray([0.0]), np.zeros(0))
        if len(self.values) == 0:
            return LoadProfile(np.asarray([lo, hi]), np.zeros(1))
        bps = np.clip(self.breakpoints, lo, hi)
        keep = np.nonzero(np.diff(bps) > 0)[0]
        if len(keep) == 0:
            return LoadProfile(np.asarray([lo, hi]), np.zeros(1))
        new_bps = np.concatenate([bps[keep], [bps[keep[-1] + 1]]])
        return LoadProfile(new_bps, self.values[keep])


def load_profile(items: Iterable[Item] | Instance) -> LoadProfile:
    """Build the load profile ``S_t`` of a set of items in one NumPy sweep."""
    seq: Sequence[Item] = list(items)
    if not seq:
        return LoadProfile(np.asarray([0.0]), np.zeros(0))
    arr = np.asarray([it.arrival for it in seq])
    dep = np.asarray([it.departure for it in seq], dtype=float)
    if np.any(~np.isfinite(dep)):
        raise InvalidInstanceError("load profile requires known departures")
    size = np.asarray([it.size for it in seq])
    times = np.concatenate([arr, dep])
    deltas = np.concatenate([size, -size])
    order = np.argsort(times, kind="stable")
    times = times[order]
    deltas = deltas[order]
    # collapse simultaneous events so departures and arrivals at the same
    # instant net out (half-open interval semantics)
    bps, start_idx = np.unique(times, return_index=True)
    sums = np.add.reduceat(deltas, start_idx)
    values = np.cumsum(sums)[:-1]
    # kill floating noise around zero so support_measure is exact
    values[np.abs(values) < _EPS] = 0.0
    return LoadProfile(bps, values)


def step_function_integral(
    breakpoints: Sequence[float], values: Sequence[float]
) -> float:
    """Convenience: integral of an arbitrary step function."""
    return LoadProfile(np.asarray(breakpoints, dtype=float),
                       np.asarray(values, dtype=float)).integral()
