"""Instances: ordered collections of items with validated model invariants.

An :class:`Instance` is the paper's ``σ``.  Items are kept in *release
order*: non-decreasing arrival time, with ties preserved in construction
order (the paper lets simultaneous items arrive "with some arbitrary order";
the instance order **is** that order, and the simulator honours it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .errors import InvalidInstanceError
from .item import Item

__all__ = ["Instance", "InstanceStats"]


@dataclass(frozen=True, slots=True)
class InstanceStats:
    """Summary statistics of an instance (see Section 2 of the paper)."""

    n_items: int
    mu: float  #: max/min interval-length ratio
    min_length: float
    max_length: float
    demand: float  #: d(σ) = Σ s·l
    span: float  #: span(σ) = |∪ I(r)|
    max_load: float  #: max_t S_t(σ)
    total_size: float


class Instance(Sequence[Item]):
    """An immutable, validated sequence of items in release order."""

    __slots__ = ("_items", "_stats")

    def __init__(self, items: Iterable[Item], *, reassign_uids: bool = True):
        items = list(items)
        if reassign_uids:
            items = [
                Item(it.arrival, it.departure, it.size, uid=k)
                for k, it in enumerate(items)
            ]
        self._validate(items)
        self._items: tuple[Item, ...] = tuple(items)
        self._stats: InstanceStats | None = None

    @staticmethod
    def _validate(items: list[Item]) -> None:
        last_arrival = -math.inf
        seen_uids: set[int] = set()
        for it in items:
            if it.departure is None:
                raise InvalidInstanceError(
                    f"instance items must have known departures, got {it}"
                )
            if it.arrival < last_arrival:
                raise InvalidInstanceError(
                    "items must be in non-decreasing arrival order "
                    f"({it} arrives before {last_arrival:g})"
                )
            last_arrival = it.arrival
            if it.uid in seen_uids:
                raise InvalidInstanceError(f"duplicate item uid {it.uid}")
            seen_uids.add(it.uid)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(
        cls, triples: Iterable[tuple[float, float, float]]
    ) -> "Instance":
        """Build from ``(arrival, departure, size)`` triples, sorting by arrival.

        Ties in arrival keep the input order (stable sort), matching the
        paper's "arbitrary but fixed" simultaneous-arrival order.
        """
        items = [Item(a, d, s) for (a, d, s) in triples]
        items.sort(key=lambda it: it.arrival)
        return cls(items)

    def map(self, fn: Callable[[Item], Item]) -> "Instance":
        """A new instance with ``fn`` applied to every item (re-sorted, uids kept)."""
        items = sorted((fn(it) for it in self._items), key=lambda it: it.arrival)
        return Instance(items, reassign_uids=False)

    def shifted(self, delta: float) -> "Instance":
        return self.map(lambda it: it.shifted(delta))

    def scaled(self, factor: float) -> "Instance":
        return self.map(lambda it: it.scaled(factor))

    def normalized(self) -> "Instance":
        """Scaled so the minimum interval length is exactly 1.

        The paper's Section 3 assumes the shortest item has length ≥ 1; this
        helper makes any instance conform without changing μ or competitive
        ratios (MinUsageTime is homogeneous under time scaling).
        """
        if not self._items:
            return self
        m = min(it.length for it in self._items)
        return self.scaled(1.0 / m)

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx):  # type: ignore[override]
        if isinstance(idx, slice):
            return Instance(self._items[idx], reassign_uids=False)
        return self._items[idx]

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        st = self.stats
        return (
            f"Instance(n={st.n_items}, mu={st.mu:g}, span={st.span:g}, "
            f"demand={st.demand:g})"
        )

    # ------------------------------------------------------------------ #
    # Statistics (paper Section 2)
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> tuple[Item, ...]:
        return self._items

    @property
    def stats(self) -> InstanceStats:
        if self._stats is None:
            object.__setattr__(self, "_stats", self._compute_stats())
        assert self._stats is not None
        return self._stats

    def _compute_stats(self) -> InstanceStats:
        if not self._items:
            return InstanceStats(0, 1.0, math.inf, 0.0, 0.0, 0.0, 0.0, 0.0)
        from .intervals import union_measure

        lengths = [it.length for it in self._items]
        min_len, max_len = min(lengths), max(lengths)
        span = union_measure(
            (it.arrival, it.departure) for it in self._items  # type: ignore[misc]
        )
        # max load via a sweep over ±size events (departures first on ties)
        events: list[tuple[float, float]] = []
        for it in self._items:
            events.append((it.arrival, it.size))
            events.append((it.departure, -it.size))  # type: ignore[arg-type]
        events.sort()
        load = 0.0
        max_load = 0.0
        for _, ds in events:
            load += ds
            max_load = max(max_load, load)
        return InstanceStats(
            n_items=len(self._items),
            mu=max_len / min_len,
            min_length=min_len,
            max_length=max_len,
            demand=sum(it.demand for it in self._items),
            span=span,
            max_load=max_load,
            total_size=sum(it.size for it in self._items),
        )

    @property
    def mu(self) -> float:
        """μ — the max/min interval-length ratio."""
        return self.stats.mu

    @property
    def demand(self) -> float:
        """d(σ) — total space–time demand."""
        return self.stats.demand

    @property
    def span(self) -> float:
        """span(σ) — measure of time during which some item is active."""
        return self.stats.span

    def active_at(self, t: float) -> list[Item]:
        """The items active at time ``t`` (half-open semantics)."""
        return [it for it in self._items if it.active_at(t)]

    def load_at(self, t: float) -> float:
        """S_t(σ) — total size of items active at time ``t``."""
        return sum(it.size for it in self.active_at(t))

    def concat(self, other: "Instance") -> "Instance":
        """Merge two instances (items re-sorted by arrival, uids reassigned)."""
        merged = sorted(
            list(self._items) + list(other.items), key=lambda it: it.arrival
        )
        return Instance(merged)
