"""Instances: ordered collections of items with validated model invariants.

An :class:`Instance` is the paper's ``σ``.  Items are kept in *release
order*: non-decreasing arrival time, with ties preserved in construction
order (the paper lets simultaneous items arrive "with some arbitrary order";
the instance order **is** that order, and the simulator honours it).

Since the columnar refactor an instance is a thin validated view over an
:class:`~repro.core.store.ItemStore`: the items live as struct-of-arrays
columns, ``Instance[i]`` materializes a lazy boxed :class:`Item` view on
demand, and contiguous slices are zero-copy windows over the parent's
columns.  The sequence protocol, equality, hashing and every statistic
are unchanged — only the storage moved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .errors import InvalidInstanceError
from .item import Item, item_view
from .store import ItemStore

__all__ = ["Instance", "InstanceStats"]


@dataclass(frozen=True, slots=True)
class InstanceStats:
    """Summary statistics of an instance (see Section 2 of the paper)."""

    n_items: int
    mu: float  #: max/min interval-length ratio
    min_length: float
    max_length: float
    demand: float  #: d(σ) = Σ s·l
    span: float  #: span(σ) = |∪ I(r)|
    max_load: float  #: max_t S_t(σ)
    total_size: float


class Instance(Sequence[Item]):
    """An immutable, validated sequence of items in release order."""

    __slots__ = ("_store", "_stats", "_items_cache")

    def __init__(self, items: Iterable[Item], *, reassign_uids: bool = True):
        store = ItemStore.from_items(items)
        if reassign_uids:
            store.assign_sequential_uids()
        # sequential uids are unique by construction — the duplicate scan
        # (an O(n) set build) only runs for caller-supplied uids
        store.validate_release_order(check_uids=not reassign_uids)
        self._store = store
        self._stats: InstanceStats | None = None
        self._items_cache: tuple[Item, ...] | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(
        cls, triples: Iterable[tuple[float, float, float]]
    ) -> "Instance":
        """Build from ``(arrival, departure, size)`` triples, sorting by arrival.

        Ties in arrival keep the input order (stable sort), matching the
        paper's "arbitrary but fixed" simultaneous-arrival order.
        """
        store = ItemStore.from_tuples(triples)
        store.sort_by_arrival()
        return cls.from_store(store)

    @classmethod
    def from_store(
        cls, store: ItemStore, *, reassign_uids: bool = True
    ) -> "Instance":
        """Adopt ``store`` as an instance's backing columns (no copy).

        The store is validated (release order; known departures) and —
        by default — renumbered with sequential uids, exactly like
        ``Instance(items)``.  The caller must not mutate the store
        afterwards; loaders hand over ownership here.
        """
        if store.is_view:
            store = _copy_store(store)
        if reassign_uids:
            store.assign_sequential_uids()
        store.validate_release_order(check_uids=not reassign_uids)
        return cls._wrap(store)

    @classmethod
    def _wrap(cls, store: ItemStore) -> "Instance":
        """Trusted constructor: adopt an already-validated store as-is."""
        inst = object.__new__(cls)
        inst._store = store
        inst._stats = None
        inst._items_cache = None
        return inst

    def map(self, fn: Callable[[Item], Item]) -> "Instance":
        """A new instance with ``fn`` applied to every item (re-sorted, uids kept)."""
        items = sorted((fn(it) for it in self), key=lambda it: it.arrival)
        return Instance(items, reassign_uids=False)

    def shifted(self, delta: float) -> "Instance":
        return self.map(lambda it: it.shifted(delta))

    def scaled(self, factor: float) -> "Instance":
        return self.map(lambda it: it.scaled(factor))

    def normalized(self) -> "Instance":
        """Scaled so the minimum interval length is exactly 1.

        The paper's Section 3 assumes the shortest item has length ≥ 1; this
        helper makes any instance conform without changing μ or competitive
        ratios (MinUsageTime is homogeneous under time scaling).
        """
        if not len(self._store):
            return self
        m = min(it.length for it in self)
        return self.scaled(1.0 / m)

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, idx):  # type: ignore[override]
        if isinstance(idx, slice):
            sliced = self._store[idx]
            # a sub-window of a valid instance is itself valid (order and
            # uid uniqueness are hereditary) — adopt it unvalidated
            return Instance._wrap(sliced)
        return self._store.item(idx)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._store)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        a = self._store.columns()
        b = other._store.columns()
        if a[5] - a[4] != b[5] - b[4]:
            return False
        # Item equality excludes uid (compare=False), so instances match
        # on their (arrival, departure, size) columns alone
        for col in (0, 1, 2):
            ca, cb = a[col], b[col]
            oa, ob = a[4], b[4]
            for k in range(a[5] - a[4]):
                if ca[oa + k] != cb[ob + k]:
                    return False
        return True

    def __hash__(self) -> int:
        return hash(self.items)

    def __repr__(self) -> str:
        st = self.stats
        return (
            f"Instance(n={st.n_items}, mu={st.mu:g}, span={st.span:g}, "
            f"demand={st.demand:g})"
        )

    # ------------------------------------------------------------------ #
    # Statistics (paper Section 2)
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> ItemStore:
        """The backing :class:`ItemStore` (treat as read-only)."""
        return self._store

    @property
    def items(self) -> tuple[Item, ...]:
        if self._items_cache is None:
            object.__setattr__(self, "_items_cache", tuple(self._store))
        assert self._items_cache is not None
        return self._items_cache

    @property
    def stats(self) -> InstanceStats:
        if self._stats is None:
            object.__setattr__(self, "_stats", self._compute_stats())
        assert self._stats is not None
        return self._stats

    def _compute_stats(self) -> InstanceStats:
        arr, dep, siz, _, start, stop = self._store.columns()
        if start == stop:
            return InstanceStats(0, 1.0, math.inf, 0.0, 0.0, 0.0, 0.0, 0.0)
        from .intervals import union_measure

        # one columnwise pass; accumulation order matches the historical
        # per-item loops bit for bit (same values, same float op order)
        min_len = math.inf
        max_len = -math.inf
        demand = 0.0
        total_size = 0.0
        events: list[tuple[float, float]] = []
        push = events.append
        for j in range(start, stop):
            a = arr[j]
            d = dep[j]
            s = siz[j]
            length = d - a
            if length < min_len:
                min_len = length
            if length > max_len:
                max_len = length
            demand += s * length
            total_size += s
            push((a, s))
            push((d, -s))
        span = union_measure(
            (arr[j], dep[j]) for j in range(start, stop)
        )
        # max load via a sweep over ±size events (departures first on ties)
        events.sort()
        load = 0.0
        max_load = 0.0
        for _, ds in events:
            load += ds
            max_load = max(max_load, load)
        return InstanceStats(
            n_items=stop - start,
            mu=max_len / min_len,
            min_length=min_len,
            max_length=max_len,
            demand=demand,
            span=span,
            max_load=max_load,
            total_size=total_size,
        )

    @property
    def mu(self) -> float:
        """μ — the max/min interval-length ratio."""
        return self.stats.mu

    @property
    def demand(self) -> float:
        """d(σ) — total space–time demand."""
        return self.stats.demand

    @property
    def span(self) -> float:
        """span(σ) — measure of time during which some item is active."""
        return self.stats.span

    def active_at(self, t: float) -> list[Item]:
        """The items active at time ``t`` (half-open semantics)."""
        arr, dep, siz, uids, start, stop = self._store.columns()
        out = []
        for j in range(start, stop):
            a = arr[j]
            if t < a:
                continue
            d = dep[j]
            if d != d or t < d:
                out.append(
                    item_view(a, None if d != d else d, siz[j], uids[j])
                )
        return out

    def load_at(self, t: float) -> float:
        """S_t(σ) — total size of items active at time ``t``."""
        return sum(it.size for it in self.active_at(t))

    def concat(self, other: "Instance") -> "Instance":
        """Merge two instances (items re-sorted by arrival, uids reassigned)."""
        merged = sorted(
            list(self) + list(other), key=lambda it: it.arrival
        )
        return Instance(merged)


def _copy_store(view: ItemStore) -> ItemStore:
    """Materialize a windowed store as a fresh root store."""
    out = ItemStore()
    arr, dep, siz, uids, start, stop = view.columns()
    out.arrivals = arr[start:stop]
    out.departures = dep[start:stop]
    out.sizes = siz[start:stop]
    out.uids = uids[start:stop]
    return out
