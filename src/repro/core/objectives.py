"""Alternative goal functions (Section 1's motivation for MinUsageTime).

The introduction contrasts three objectives for dynamic bin packing:

- :func:`max_bins` — the traditional goal: the maximum number of bins ever
  open during the process;
- :func:`momentary_ratio` — compare the online algorithm to OPT at every
  moment and take the worst ratio of open-bin counts;
- :func:`usage_time` — MinUsageTime, the paper's objective: total busy
  time over all bins.

The paper's point: the first two "fail to distinguish between the case
where the online algorithm's cost is high throughout the entire process
and the case where it is only momentarily high".  The OBJ.MOTIVATION
experiment (:mod:`repro.experiments.objectives`) makes that concrete with
two packings that tie on max-bins but differ arbitrarily in usage time.
"""

from __future__ import annotations

import math

import numpy as np

from .instance import Instance
from .profile import LoadProfile, load_profile
from .result import PackingResult

__all__ = [
    "usage_time",
    "max_bins",
    "momentary_ratio",
    "optimal_bins_profile",
]


def usage_time(result: PackingResult) -> float:
    """MinUsageTime — the paper's objective (same as ``result.cost``)."""
    return result.cost


def max_bins(result: PackingResult) -> int:
    """The classical DBP objective: maximum simultaneously open bins."""
    return result.max_open


def optimal_bins_profile(
    instance: Instance, *, capacity: float = 1.0, max_exact: int = 26
) -> LoadProfile:
    """``OPT_R^t(σ)`` — the minimum feasible open-bin count over time.

    Piecewise constant between event points; uses the exact bin-packing
    oracle per segment (upper value of the sandwich when a segment is too
    large, so the momentary ratio below stays a certified *lower* bound).
    """
    from ..offline.binpack import min_bins_bounded

    if len(instance) == 0:
        return LoadProfile(np.asarray([0.0]), np.zeros(0))
    events: list[tuple[float, int, int]] = []
    for k, it in enumerate(instance):
        events.append((it.arrival, 1, k))
        events.append((it.departure, 0, k))  # type: ignore[arg-type]
    events.sort()
    sizes = [it.size for it in instance]
    active: dict[int, float] = {}
    bps: list[float] = []
    vals: list[float] = []
    pos, n_ev = 0, len(events)
    while pos < n_ev:
        t = events[pos][0]
        while pos < n_ev and events[pos][0] == t:
            _, kind, idx = events[pos]
            pos += 1
            if kind == 0:
                active.pop(idx, None)
            else:
                active[idx] = sizes[idx]
        bps.append(t)
        if pos < n_ev:
            _, hi = min_bins_bounded(
                sorted(active.values()), capacity, max_exact=max_exact
            )
            vals.append(float(hi))
    return LoadProfile(np.asarray(bps), np.asarray(vals))


def momentary_ratio(
    result: PackingResult, instance: Instance, *, max_exact: int = 26
) -> float:
    """``max_t ON_t / OPT_R^t`` — the momentary goal function.

    Certified lower bound on the true momentary ratio (OPT per moment is
    evaluated by its upper bound when inexact).
    """
    on = result.open_bins_profile()
    opt = optimal_bins_profile(
        instance, capacity=result.capacity, max_exact=max_exact
    )
    checkpoints = np.union1d(on.breakpoints, opt.breakpoints)
    worst = 0.0
    for t in checkpoints[:-1]:
        o = opt(float(t))
        n = on(float(t))
        if o > 0:
            worst = max(worst, n / o)
        elif n > 0:
            return math.inf
    return worst
