"""Bins and their usage-time accounting.

A bin has unit capacity (configurable) and is *open* from the moment its
first item is packed until the moment it becomes empty, at which point it is
closed and never reused (the paper notes this is w.l.o.g. for MinUsageTime).
Its usage time is therefore ``closed_at - opened_at``.

Bins carry an opaque ``tag`` so algorithms can mark them (HA tags bins
``("GN",)`` or ``("CD", type)``; CDFF tags them with their row index).  The
simulator owns all mutation; algorithms only read bins and return one from
``place``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

from .errors import CapacityExceededError, PackingError
from .item import Item

__all__ = ["Bin", "BinRecord", "LOAD_EPS"]

#: Tolerance for floating-point load comparisons.  Sizes like 1/3 must allow
#: exactly three per bin.
LOAD_EPS = 1e-9


class Bin:
    """A live bin inside a running simulation."""

    __slots__ = ("uid", "capacity", "tag", "opened_at", "_contents", "_load")

    def __init__(
        self,
        uid: int,
        capacity: float,
        opened_at: float,
        tag: Hashable = None,
    ) -> None:
        self.uid = uid
        self.capacity = capacity
        self.tag = tag
        self.opened_at = opened_at
        self._contents: Dict[int, Item] = {}
        self._load = 0.0

    # -- read API (what algorithms may use) ----------------------------- #
    @property
    def load(self) -> float:
        return self._load

    @property
    def contents(self) -> tuple[Item, ...]:
        """The items currently in the bin (views, in insertion order)."""
        return tuple(self._contents.values())

    @property
    def n_items(self) -> int:
        return len(self._contents)

    def residual(self) -> float:
        """Free capacity left in the bin."""
        return self.capacity - self._load

    def fits(self, item: Item) -> bool:
        """Whether ``item`` fits right now (momentary load check)."""
        return self._load + item.size <= self.capacity + LOAD_EPS

    def __contains__(self, uid: int) -> bool:
        return uid in self._contents

    def __repr__(self) -> str:
        return (
            f"Bin(uid={self.uid}, tag={self.tag!r}, load={self._load:.4g}, "
            f"n={len(self._contents)})"
        )

    # -- mutation (simulator only) --------------------------------------- #
    def _add(self, item: Item) -> None:
        if item.uid in self._contents:
            raise PackingError(f"item {item.uid} already in bin {self.uid}")
        if not self.fits(item):
            raise CapacityExceededError(
                f"item {item} (size {item.size}) does not fit in bin "
                f"{self.uid} (load {self._load:.6g}/{self.capacity})"
            )
        self._contents[item.uid] = item
        self._load += item.size

    def _remove(self, uid: int) -> Item:
        try:
            item = self._contents.pop(uid)
        except KeyError:
            raise PackingError(f"item {uid} not in bin {self.uid}") from None
        self._load -= item.size
        if not self._contents:
            self._load = 0.0  # kill floating residue on empty
        return item


@dataclass(frozen=True, slots=True)
class BinRecord:
    """The immutable post-mortem of one bin after a simulation."""

    uid: int
    tag: Any
    opened_at: float
    closed_at: float
    item_uids: tuple[int, ...]
    peak_load: float = field(default=0.0)

    @property
    def usage(self) -> float:
        """The MinUsageTime contribution of this bin."""
        return self.closed_at - self.opened_at
