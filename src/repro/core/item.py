"""Items of the MinUsageTime dynamic bin packing problem.

An item (the paper's ``r``) is a triple: an active interval
``I(r) = [arrival, departure)`` and a size ``s(r) ∈ (0, 1]``.  In the
clairvoyant setting the departure time is known upon arrival; the simulator
supports hiding it from non-clairvoyant algorithms (see
:meth:`Item.masked`) and *adaptive* items whose departure is genuinely
undetermined at release time (``departure=None``), which is what adaptive
non-clairvoyant adversaries need.

Intervals are treated as half-open for overlap/load purposes: an item
departing at time ``t`` and an item arriving at ``t`` never coexist.  This
matches the paper's ``t^-`` / ``t^+`` convention for aligned inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import InvalidItemError

__all__ = ["Item", "UNKNOWN_DEPARTURE", "item_view"]

#: Sentinel meaning "the departure time has not been revealed yet".
UNKNOWN_DEPARTURE: None = None


@dataclass(frozen=True, slots=True)
class Item:
    """A single request.

    Parameters
    ----------
    arrival:
        Time ``t_r`` at which the item must be packed.
    departure:
        Time ``f_r`` at which the item leaves its bin, or ``None`` when the
        departure is not (yet) known — used for adaptive adversaries and for
        masking clairvoyant information.
    size:
        Load ``s(r) ∈ (0, 1]`` the item occupies while active.
    uid:
        Unique identifier inside an instance.  Assigned by
        :class:`~repro.core.instance.Instance` when items are built through
        it; callers constructing raw items may pass their own.
    """

    arrival: float
    departure: Optional[float]
    size: float
    uid: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not math.isfinite(self.arrival):
            raise InvalidItemError(f"arrival must be finite, got {self.arrival!r}")
        if self.departure is not None:
            if not math.isfinite(self.departure):
                raise InvalidItemError(
                    f"departure must be finite or None, got {self.departure!r}"
                )
            if self.departure <= self.arrival:
                raise InvalidItemError(
                    "departure must be strictly after arrival "
                    f"(got [{self.arrival}, {self.departure}))"
                )
        if not (0.0 < self.size <= 1.0):
            raise InvalidItemError(f"size must lie in (0, 1], got {self.size!r}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def clairvoyant(self) -> bool:
        """Whether the departure time is visible on this item object."""
        return self.departure is not None

    @property
    def length(self) -> float:
        """Interval length ``l(I(r)) = f_r - t_r`` (requires a known departure)."""
        if self.departure is None:
            raise InvalidItemError("length of an item with unknown departure")
        return self.departure - self.arrival

    @property
    def demand(self) -> float:
        """Space–time demand ``s(r) · l(I(r))``."""
        return self.size * self.length

    def active_at(self, t: float) -> bool:
        """Whether the item is active at time ``t`` (half-open interval).

        Items with unknown departure are considered active at any
        ``t >= arrival``; the simulator tracks their true lifetime.
        """
        if t < self.arrival:
            return False
        return self.departure is None or t < self.departure

    def overlaps(self, other: "Item") -> bool:
        """Whether two (known-departure) items are simultaneously active."""
        if self.departure is None or other.departure is None:
            raise InvalidItemError("overlap test requires known departures")
        return self.arrival < other.departure and other.arrival < self.departure

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def masked(self) -> "Item":
        """A copy with the departure hidden (non-clairvoyant view)."""
        return replace(self, departure=None)

    def with_departure(self, departure: float) -> "Item":
        """A copy with the departure (re)set — used by the alignment reduction."""
        return replace(self, departure=departure)

    def shifted(self, delta: float) -> "Item":
        """A copy translated in time by ``delta``."""
        dep = None if self.departure is None else self.departure + delta
        return replace(self, arrival=self.arrival + delta, departure=dep)

    def scaled(self, factor: float) -> "Item":
        """A copy with times multiplied by ``factor > 0`` (sizes unchanged)."""
        if factor <= 0:
            raise InvalidItemError(f"scale factor must be positive, got {factor!r}")
        dep = None if self.departure is None else self.departure * factor
        return replace(self, arrival=self.arrival * factor, departure=dep)

    def __str__(self) -> str:  # compact, used in ASCII renderings
        dep = "?" if self.departure is None else f"{self.departure:g}"
        return f"r{self.uid}[{self.arrival:g},{dep})x{self.size:g}"


_new_item = Item.__new__
# bound slot descriptors: like object.__setattr__ but without the
# per-call attribute-name lookup (this is the hottest allocation site
# in the columnar data plane)
_set_arrival = Item.__dict__["arrival"].__set__
_set_departure = Item.__dict__["departure"].__set__
_set_size = Item.__dict__["size"].__set__
_set_uid = Item.__dict__["uid"].__set__


def item_view(
    arrival: float, departure: Optional[float], size: float, uid: int
) -> Item:
    """Build an :class:`Item` without re-running validation.

    The columnar data plane (:mod:`repro.core.store`) validates rows
    once on append; materializing a boxed view afterwards must not pay
    ``__post_init__`` again — at a million items per simulate() call the
    difference is the data plane's whole margin.  Only for values that
    have already passed :class:`Item`'s checks; everything else must go
    through the real constructor.
    """
    it = _new_item(Item)
    _set_arrival(it, arrival)
    _set_departure(it, departure)
    _set_size(it, size)
    _set_uid(it, uid)
    return it
