"""Core substrate: items, instances, load profiles, bins, the kernel.

Everything above this package (algorithms, adversaries, offline oracles,
experiments, the streaming engine) is built on these primitives.  The
single source of simulation semantics is
:class:`~repro.core.kernel.PlacementKernel`; ``simulate`` and
``IncrementalSimulation`` here (and :class:`repro.engine.Engine`) are
thin frontends over it.
"""

from .bins import Bin, BinRecord, LOAD_EPS
from .errors import (
    AlignmentError,
    CapacityExceededError,
    ClairvoyanceError,
    InvalidInstanceError,
    InvalidItemError,
    PackingError,
    ReproError,
    SimulationError,
)
from .instance import Instance, InstanceStats
from .intervals import (
    gaps,
    intersection_measure,
    merge_intervals,
    union_measure,
)
from .item import Item, UNKNOWN_DEPARTURE, item_view
from .kernel import KernelListener, OpenBinIndex, PlacementKernel
from .objectives import max_bins, momentary_ratio, optimal_bins_profile, usage_time
from .profile import LoadProfile, load_profile
from .result import PackingResult
from .simulation import IncrementalSimulation, simulate
from .store import ItemStore, validate_item_values
from .validate import audit, audit_cost, check_feasible_bin

__all__ = [
    "Bin",
    "BinRecord",
    "LOAD_EPS",
    "Item",
    "UNKNOWN_DEPARTURE",
    "item_view",
    "ItemStore",
    "validate_item_values",
    "Instance",
    "InstanceStats",
    "merge_intervals",
    "union_measure",
    "intersection_measure",
    "gaps",
    "LoadProfile",
    "load_profile",
    "usage_time",
    "max_bins",
    "momentary_ratio",
    "optimal_bins_profile",
    "PackingResult",
    "PlacementKernel",
    "OpenBinIndex",
    "KernelListener",
    "IncrementalSimulation",
    "simulate",
    "audit",
    "audit_cost",
    "check_feasible_bin",
    "ReproError",
    "InvalidItemError",
    "InvalidInstanceError",
    "CapacityExceededError",
    "PackingError",
    "SimulationError",
    "ClairvoyanceError",
    "AlignmentError",
]
