"""Half-open interval arithmetic.

The union measure of item intervals is the cost kernel of MinUsageTime
(a bin's usage is the measure of the union of its residents' intervals).
This module centralises that arithmetic; :mod:`repro.core.instance`,
:mod:`repro.offline.optimal` and :mod:`repro.offline.dual_coloring` all
build on it.

All intervals are half-open ``[lo, hi)`` with ``hi > lo``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "merge_intervals",
    "union_measure",
    "intersection_measure",
    "covers",
    "gaps",
]

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sorted, disjoint intervals whose union equals the input's union.

    Touching intervals (``a.hi == b.lo``) are merged — half-open semantics
    make their union connected.
    """
    ivs = sorted(intervals)
    if not ivs:
        return []
    for lo, hi in ivs:
        if hi <= lo:
            raise ValueError(f"invalid interval [{lo}, {hi})")
    merged: List[Interval] = [ivs[0]]
    for lo, hi in ivs[1:]:
        mlo, mhi = merged[-1]
        if lo > mhi:
            merged.append((lo, hi))
        elif hi > mhi:
            merged[-1] = (mlo, hi)
    return merged


def union_measure(intervals: Iterable[Interval]) -> float:
    """Total length of the union of the intervals."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


def intersection_measure(
    a: Sequence[Interval], b: Sequence[Interval]
) -> float:
    """Measure of (∪a) ∩ (∪b) by a two-pointer sweep over merged inputs."""
    ma, mb = merge_intervals(a), merge_intervals(b)
    i = j = 0
    total = 0.0
    while i < len(ma) and j < len(mb):
        lo = max(ma[i][0], mb[j][0])
        hi = min(ma[i][1], mb[j][1])
        if hi > lo:
            total += hi - lo
        if ma[i][1] <= mb[j][1]:
            i += 1
        else:
            j += 1
    return total


def covers(intervals: Iterable[Interval], point: float) -> bool:
    """Whether the union contains ``point`` (half-open)."""
    return any(lo <= point < hi for lo, hi in intervals)


def gaps(intervals: Iterable[Interval]) -> List[Interval]:
    """The maximal holes strictly between consecutive merged intervals."""
    merged = merge_intervals(intervals)
    return [
        (a_hi, b_lo)
        for (_, a_hi), (b_lo, _) in zip(merged, merged[1:])
        if b_lo > a_hi
    ]
