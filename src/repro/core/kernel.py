"""The placement kernel: single owner of all packing-simulation state.

Every frontend that drives an online algorithm — the batch
:func:`~repro.core.simulation.simulate`, the incremental
:class:`~repro.core.simulation.IncrementalSimulation` used by the
Section-4 adaptive adversaries, and the streaming
:class:`~repro.engine.loop.Engine` — is a thin adapter over one
:class:`PlacementKernel`.  The kernel owns, in one place:

- the **open-bin table** (insertion order = opening order = first-fit
  order) and the **pending-bin open/commit protocol** that validates
  every ``place()`` return;
- **capacity enforcement** (via :meth:`Bin._add`) and the paper's event
  semantics (DESIGN.md §5): half-open intervals, departures at ``t``
  processed before arrivals at ``t``, simultaneous arrivals strictly in
  release order, a bin closes the moment it empties;
- **clairvoyance masking** — the only place in the codebase that
  inspects ``algorithm.clairvoyant`` to decide what an algorithm may
  see (:attr:`PlacementKernel.masks_departures`);
- the **departure heap** and the adaptive-item set (items released with
  unknown departures, departed explicitly by adversaries);
- per-bin **usage/peak accounting** and the O(1) running-cost identity
  ``Σ_open (t - opened_at) = |open|·t - Σ_open opened_at``;
- the optional **ON_t event log** (``(time, ±1)`` open-count deltas)
  and record-mode history from which :meth:`result` builds an audited
  :class:`~repro.core.result.PackingResult`.

Because both frontends call the same ``release``/``depart``/``advance``
/``commit`` code, batch/stream parity holds **by construction**; the
sweep in :mod:`repro.engine.parity` remains only as a regression guard.

Indexed placement
-----------------
The kernel keeps an :class:`OpenBinIndex` over the open bins — a
residual-capacity-sorted list plus a max-residual segment tree in
opening order — so the Any-Fit candidate queries exposed on the facade
(:meth:`first_fit`, :meth:`best_fit`, :meth:`worst_fit`,
:meth:`last_fit`) run in O(log n) instead of scanning every open bin.
Construct with ``indexed=False`` to fall back to the plain linear scans
(same results; used as the benchmark baseline and as a safety valve).

Frontends integrate through two hooks passed at construction:

``facade``
    The object handed to ``algorithm.place(view, facade)`` and the
    notify hooks; defaults to the kernel itself.  Adapters pass
    themselves so algorithms keep seeing the familiar ``sim`` surface
    (the :class:`~repro.algorithms.base.SimulationView` protocol).
``listener``
    Receives ``on_advance`` / ``on_open`` / ``on_arrival`` /
    ``on_departure`` / ``on_close`` callbacks in exact event order; the
    streaming engine uses this to drive its incremental accounting,
    metrics and observer events without re-implementing any semantics.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from itertools import islice
from bisect import bisect_left, insort
from typing import Hashable, List, Optional, Tuple

from .bins import LOAD_EPS, Bin, BinRecord
from .errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from .item import Item, item_view
from .result import PackingResult

__all__ = [
    "PlacementKernel",
    "OpenBinIndex",
    "KernelListener",
    "ListenerFanout",
]

_NEG_INF = float("-inf")


class KernelListener:
    """Callback protocol for frontends observing kernel events.

    All methods are optional no-ops; the streaming engine overrides them
    to maintain :class:`~repro.engine.accounting.RunningAccounting`,
    metrics and observer events.  ``timed`` tells the kernel whether to
    measure per-departure wall time (for latency histograms).
    """

    timed: bool = False

    def on_advance(self, t: float) -> None:
        """The clock is about to move forward to ``t``."""

    def on_open(self, bin_: Bin) -> None:
        """``bin_`` was just committed as a new open bin."""

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        """``item`` was committed into ``bin_`` (``opened``: fresh bin)."""

    def on_departure(
        self,
        uid: int,
        removed: Item,
        bin_: Bin,
        t: float,
        closed: bool,
        elapsed: float,
    ) -> None:
        """Item ``uid`` left ``bin_`` at ``t`` (``closed``: bin emptied)."""

    def on_close(
        self, bin_: Bin, t: float, usage: float, peak: float, n_items: int
    ) -> None:
        """``bin_`` became empty and was closed at ``t``."""


class ListenerFanout(KernelListener):
    """Broadcast one kernel's event stream to several listeners.

    Pure dispatch — callbacks run in registration order and no event is
    reordered or filtered, so attaching an observability listener (e.g.
    :class:`repro.obs.trace.TracingListener`) next to a frontend's own
    accounting listener can never change semantics.  ``timed`` is the OR
    over members: one latency-hungry listener is enough to make the
    kernel measure per-departure wall time.
    """

    def __init__(self, listeners) -> None:
        self.listeners = list(listeners)

    @property
    def timed(self) -> bool:  # type: ignore[override]
        return any(listener.timed for listener in self.listeners)

    def on_advance(self, t: float) -> None:
        for listener in self.listeners:
            listener.on_advance(t)

    def on_open(self, bin_: Bin) -> None:
        for listener in self.listeners:
            listener.on_open(bin_)

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        for listener in self.listeners:
            listener.on_arrival(item, bin_, opened)

    def on_departure(
        self,
        uid: int,
        removed: Item,
        bin_: Bin,
        t: float,
        closed: bool,
        elapsed: float,
    ) -> None:
        for listener in self.listeners:
            listener.on_departure(uid, removed, bin_, t, closed, elapsed)

    def on_close(
        self, bin_: Bin, t: float, usage: float, peak: float, n_items: int
    ) -> None:
        for listener in self.listeners:
            listener.on_close(bin_, t, usage, peak, n_items)


class OpenBinIndex:
    """Indexed candidate lookup over the open bins.

    Two structures, updated on every load change:

    - ``_sorted``: ``(residual, uid)`` pairs in ascending order, backing
      O(log n) best-fit (leftmost residual ≥ size) and worst-fit (the
      max-residual group's smallest uid) queries;
    - a max-residual **segment tree** over *slots* (one per bin, in
      opening order), backing O(log n) first-fit (leftmost fitting slot)
      and last-fit (rightmost fitting slot) queries.  Closed bins leave
      ``-inf`` leaves behind; the tree compacts itself once dead slots
      outnumber the live ones.

    Thresholds use the same ``LOAD_EPS`` tolerance as :meth:`Bin.fits`;
    the kernel re-verifies every returned candidate with ``fits()`` so a
    one-ulp disagreement between ``load + size ≤ capacity + eps`` and
    ``residual ≥ size - eps`` can never overfill a bin.
    """

    _MIN_SLOTS = 64

    def __init__(self) -> None:
        self._sorted: List[Tuple[float, int]] = []
        self._key: dict[int, float] = {}  # uid -> key currently in _sorted
        self._slot_of: dict[int, int] = {}  # uid -> slot (opening order)
        self._slots: List[Optional[Bin]] = []
        self._size = self._MIN_SLOTS  # segment-tree leaf count (power of 2)
        self._tree: List[float] = [_NEG_INF] * (2 * self._size)
        self._dead = 0

    # -- maintenance (called by the kernel on every load change) -------- #
    def add(self, bin_: Bin) -> None:
        if len(self._slots) == self._size:
            self._rebuild()
        slot = len(self._slots)
        self._slots.append(bin_)
        self._slot_of[bin_.uid] = slot
        res = bin_.residual()
        self._set_leaf(slot, res)
        insort(self._sorted, (res, bin_.uid))
        self._key[bin_.uid] = res

    def update(self, bin_: Bin) -> None:
        uid = bin_.uid
        old = self._key[uid]
        new = bin_.residual()
        if new != old:
            del self._sorted[bisect_left(self._sorted, (old, uid))]
            insort(self._sorted, (new, uid))
            self._key[uid] = new
            self._set_leaf(self._slot_of[uid], new)

    def remove(self, bin_: Bin) -> None:
        uid = bin_.uid
        old = self._key.pop(uid)
        del self._sorted[bisect_left(self._sorted, (old, uid))]
        slot = self._slot_of.pop(uid)
        self._slots[slot] = None
        self._set_leaf(slot, _NEG_INF)
        self._dead += 1
        if self._dead > max(self._MIN_SLOTS, len(self._slot_of)):
            self._rebuild()

    # -- queries (thresholds already include the LOAD_EPS slack) -------- #
    def first_fit(self, threshold: float) -> Optional[Bin]:
        """Earliest-opened bin with residual ≥ ``threshold``."""
        tree = self._tree
        if tree[1] < threshold:
            return None
        i, size = 1, self._size
        while i < size:
            i <<= 1
            if tree[i] < threshold:
                i += 1
        return self._slots[i - size]

    def last_fit(self, threshold: float) -> Optional[Bin]:
        """Latest-opened bin with residual ≥ ``threshold``."""
        tree = self._tree
        if tree[1] < threshold:
            return None
        i, size = 1, self._size
        while i < size:
            i <<= 1
            if tree[i + 1] >= threshold:
                i += 1
        return self._slots[i - size]

    def best_fit(self, threshold: float) -> Optional[Bin]:
        """Fullest fitting bin: smallest ``(residual, uid)`` ≥ threshold."""
        i = bisect_left(self._sorted, (threshold,))
        if i == len(self._sorted):
            return None
        uid = self._sorted[i][1]
        return self._slots[self._slot_of[uid]]

    def worst_fit(self, threshold: float) -> Optional[Bin]:
        """Emptiest fitting bin; ties broken to the earliest-opened."""
        if not self._sorted or self._sorted[-1][0] < threshold:
            return None
        uid = self._sorted[bisect_left(self._sorted, (self._sorted[-1][0],))][1]
        return self._slots[self._slot_of[uid]]

    # -- internals ------------------------------------------------------ #
    def _set_leaf(self, slot: int, value: float) -> None:
        tree = self._tree
        i = self._size + slot
        tree[i] = value
        i >>= 1
        while i:
            left, right = tree[2 * i], tree[2 * i + 1]
            v = left if left >= right else right
            if tree[i] == v:
                break
            tree[i] = v
            i >>= 1

    def _rebuild(self) -> None:
        live = [b for b in self._slots if b is not None]
        size = self._MIN_SLOTS
        while size < 2 * len(live) + 1:
            size <<= 1
        self._size = size
        self._slots = live
        self._slot_of = {b.uid: k for k, b in enumerate(live)}
        self._dead = 0
        tree = [_NEG_INF] * (2 * size)
        for k, b in enumerate(live):
            tree[size + k] = self._key[b.uid]
        for i in range(size - 1, 0, -1):
            left, right = tree[2 * i], tree[2 * i + 1]
            tree[i] = left if left >= right else right
        self._tree = tree


class PlacementKernel:
    """Shared simulation state and semantics for every frontend.

    Parameters
    ----------
    algorithm:
        An object satisfying the
        :class:`~repro.algorithms.base.OnlineAlgorithm` protocol; it is
        ``reset()`` once at construction.
    capacity:
        Bin capacity (1.0 in the paper).
    record:
        Keep full history (items, bin records, assignment, departure
        times) so :meth:`result` can build a
        :class:`~repro.core.result.PackingResult`.  The batch frontends
        always record; the constant-memory streaming engine does not.
    record_events:
        Additionally keep the ``(time, ±1)`` ON_t open-count deltas in
        :attr:`open_count_events` (grows with the trace).
    indexed:
        Maintain the :class:`OpenBinIndex` for O(log n) candidate
        queries; ``False`` falls back to linear scans (identical
        results).
    listener:
        Optional :class:`KernelListener` receiving every event.
    facade:
        The ``sim`` object algorithms and notify hooks see; defaults to
        the kernel itself (adversaries drive the kernel directly).
    """

    def __init__(
        self,
        algorithm,
        *,
        capacity: float = 1.0,
        record: bool = False,
        record_events: bool = False,
        indexed: bool = True,
        listener: Optional[KernelListener] = None,
        facade=None,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.algorithm = algorithm
        self.capacity = capacity
        self.record = record
        self.time = -math.inf
        self.closed_usage = 0.0
        self.open_count_events: Optional[List[Tuple[float, int]]] = (
            [] if record_events else None
        )
        self._sum_opened_at = 0.0
        self._bin_uid = 0
        self._seq = 0
        self._open: dict[int, Bin] = {}
        self._departures: List[Tuple[float, int, int]] = []  # (t, seq, uid)
        self._item_bin: dict[int, Bin] = {}
        self._peak: dict[int, float] = {}  # open-bin uid -> peak load
        self._bin_count: dict[int, int] = {}  # open-bin uid -> items ever
        self._adaptive: set[int] = set()  # uids with unknown departure
        self._pending_bin: Optional[Bin] = None
        self._index: Optional[OpenBinIndex] = OpenBinIndex() if indexed else None
        if isinstance(listener, (list, tuple)):
            listener = (
                None
                if not listener
                else listener[0]
                if len(listener) == 1
                else ListenerFanout(listener)
            )
        self._listener = listener
        self._bind_listener(listener)
        self._facade = facade if facade is not None else self
        # record-mode history (stays empty unless record=True)
        self._items: List[Item] = []
        self._records: List[BinRecord] = []
        self._assignment: dict[int, int] = {}
        self._bin_items: dict[int, list[int]] = {}
        self._departed_at: dict[int, float] = {}
        algorithm.reset()
        # hot-path caches (recomputed on unpickle; see __setstate__)
        self._masked = self.masks_departures
        self._dep_hook = getattr(algorithm, "notify_departure", None)
        self._close_hook = getattr(algorithm, "notify_close", None)

    # ------------------------------------------------------------------ #
    # The facade surface (SimulationView protocol)
    # ------------------------------------------------------------------ #
    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        return tuple(self._open.values())

    @property
    def open_bin_count(self) -> int:
        return len(self._open)

    @property
    def cost_so_far(self) -> float:
        """Closed usage plus open bins' usage up to the clock, in O(1)."""
        t = self.time if math.isfinite(self.time) else 0.0
        return self.closed_usage + len(self._open) * t - self._sum_opened_at

    @property
    def masks_departures(self) -> bool:
        """Whether this run hides departure times from the algorithm.

        The *only* clairvoyance-masking decision site: both the batch
        simulator and the streaming engine see items through this flag.
        """
        return not getattr(self.algorithm, "clairvoyant", True)

    @property
    def has_active(self) -> bool:
        """Whether any item is still inside a bin."""
        return bool(self._item_bin)

    @property
    def indexed(self) -> bool:
        """Whether the O(log n) open-bin index is maintained."""
        return self._index is not None

    def set_indexed(self, flag: bool) -> None:
        """Switch the open-bin index on or off, mid-run.

        Turning it on rebuilds the index over the current open bins in
        opening order (identical query results from the next placement
        on); turning it off falls back to linear scans.  The restore
        paths use this to honour ``--no-index`` on resumed engines,
        whatever the checkpointed run used.
        """
        if flag and self._index is None:
            index = OpenBinIndex()
            for b in self._open.values():
                index.add(b)
            self._index = index
        elif not flag:
            self._index = None

    def is_open(self, uid: int) -> bool:
        """Whether bin ``uid`` is currently open (O(1))."""
        return uid in self._open

    def add_listener(self, listener: KernelListener) -> None:
        """Attach one more :class:`KernelListener` (fan-out on demand).

        Used by frontends to bolt observability (tracing, extra metrics)
        onto an already-constructed kernel — e.g. after a checkpoint
        restore, which drops listeners by design.
        """
        if self._listener is None:
            self._listener = listener
        elif isinstance(self._listener, ListenerFanout):
            self._listener.listeners.append(listener)
        else:
            self._listener = ListenerFanout([self._listener, listener])
        self._bind_listener(listener)

    def _bind_listener(self, listener) -> None:
        """Hand listeners that want it a back-reference to this kernel.

        A listener exposing ``bind(source)`` (e.g. the invariant
        monitors in :mod:`repro.obs.invariants`, which cross-check the
        O(1) cost identity) is bound on attach; fan-outs are unpacked so
        every member gets the call.  Plain listeners are untouched.
        """
        if listener is None:
            return
        if isinstance(listener, ListenerFanout):
            for member in listener.listeners:
                self._bind_listener(member)
            return
        bind = getattr(listener, "bind", None)
        if callable(bind):
            bind(self)

    def open_bin(self, tag: Hashable = None) -> Bin:
        """Called *by the algorithm inside place()* to open a fresh bin.

        The returned bin must be the one ``place`` returns; opening more
        than one bin per placement is an error.
        """
        if self._pending_bin is not None:
            raise PackingError("place() may open at most one new bin")
        b = Bin(self._bin_uid, self.capacity, self.time, tag)
        self._bin_uid += 1
        self._pending_bin = b
        return b

    # -- indexed candidate queries -------------------------------------- #
    def first_fit(self, item: Item) -> Optional[Bin]:
        """Earliest-opened open bin that fits ``item``, else ``None``."""
        if self._index is not None:
            b = self._index.first_fit(item.size - LOAD_EPS)
            if b is None or b.fits(item):
                return b
        for b in self._open.values():
            if b.fits(item):
                return b
        return None

    def best_fit(self, item: Item) -> Optional[Bin]:
        """Fullest fitting bin (ties to the earliest-opened), else ``None``."""
        if self._index is not None:
            b = self._index.best_fit(item.size - LOAD_EPS)
            if b is None or b.fits(item):
                return b
        best: Optional[Bin] = None
        best_key: Optional[Tuple[float, int]] = None
        for b in self._open.values():
            if b.fits(item):
                key = (b.residual(), b.uid)
                if best_key is None or key < best_key:
                    best, best_key = b, key
        return best

    def worst_fit(self, item: Item) -> Optional[Bin]:
        """Emptiest fitting bin (ties to the earliest-opened), else ``None``."""
        if self._index is not None:
            b = self._index.worst_fit(item.size - LOAD_EPS)
            if b is None or b.fits(item):
                return b
        best: Optional[Bin] = None
        best_res = _NEG_INF
        for b in self._open.values():
            r = b.residual()
            if r > best_res and b.fits(item):
                best, best_res = b, r
        return best

    def last_fit(self, item: Item) -> Optional[Bin]:
        """Latest-opened open bin that fits ``item``, else ``None``."""
        if self._index is not None:
            b = self._index.last_fit(item.size - LOAD_EPS)
            if b is None or b.fits(item):
                return b
        for b in reversed(self._open.values()):
            if b.fits(item):
                return b
        return None

    def fitting_bins(self, item: Item) -> list[Bin]:
        """All open bins that fit ``item``, oldest first (linear scan)."""
        return [b for b in self._open.values() if b.fits(item)]

    # ------------------------------------------------------------------ #
    # Driving API
    # ------------------------------------------------------------------ #
    def release(self, item: Item) -> Bin:
        """Release ``item`` to the algorithm and return the bin it chose.

        Processes all scheduled departures up to the item's arrival
        first (departures-before-arrivals at equal times).
        """
        if item.arrival < self.time:
            raise SimulationError(
                f"items must be released in arrival order: {item} arrives at "
                f"{item.arrival} but the clock is at {self.time}"
            )
        self._advance(item.arrival)
        masked = self._masked
        if item.departure is None and not masked:
            raise ClairvoyanceError(
                f"clairvoyant algorithm {self.algorithm!r} received an item "
                "with unknown departure"
            )
        view = item.masked() if masked else item
        return self._finish_release(item, view)

    def release_values(
        self,
        arrival: float,
        departure: Optional[float],
        size: float,
        uid: int,
    ) -> Bin:
        """Columnar :meth:`release`: the same semantics, from plain scalars.

        The hot path for store-backed frontends — no caller-side
        :class:`Item` allocation; the kernel builds exactly one
        (pre-validated) boxed view per arrival, two when masking hides
        the departure from the algorithm.  Values must already satisfy
        :class:`Item`'s invariants (store rows are validated on append).
        """
        if arrival < self.time:
            raise SimulationError(
                "items must be released in arrival order: "
                f"{item_view(arrival, departure, size, uid)} arrives at "
                f"{arrival} but the clock is at {self.time}"
            )
        self._advance(arrival)
        masked = self._masked
        if departure is None and not masked:
            raise ClairvoyanceError(
                f"clairvoyant algorithm {self.algorithm!r} received an item "
                "with unknown departure"
            )
        item = item_view(arrival, departure, size, uid)
        view = item_view(arrival, None, size, uid) if masked else item
        return self._finish_release(item, view)

    def release_store(self, store, start: int = 0, stop: Optional[int] = None):
        """Release rows ``[start, stop)`` of an :class:`ItemStore` in order.

        The batch ``simulate()`` loop: :meth:`release_values` semantics,
        hand-inlined straight over the store's columns — no per-row
        method dispatch, no ``_advance`` call when no departure is due —
        and returns the number of rows released.  Decision-for-decision
        identical to calling :meth:`release` on each row's item.
        """
        arr, dep, siz, uids, w0, w1 = store.columns()
        lo = w0 + start
        hi = w1 if stop is None else w0 + stop
        masked = self._masked
        place = self.algorithm.place
        facade = self._facade
        advance = self._advance
        commit = self._commit
        dq = self._departures
        push = heapq.heappush
        # zip iteration over the raw columns is ~2x cheaper than
        # per-index array reads; islice bounds it to the window
        for arrival, d, size, uid in islice(
            zip(arr, dep, siz, uids), lo, hi
        ):
            if arrival < self.time:
                raise SimulationError(
                    "items must be released in arrival order: "
                    f"{item_view(arrival, d if d == d else None, size, uid)} "
                    f"arrives at {arrival} but the clock is at {self.time}"
                )
            if dq and dq[0][0] <= arrival:
                advance(arrival)
            elif arrival > self.time:  # _advance's no-departure tail
                if self._listener is not None:
                    self._listener.on_advance(arrival)
                self.time = arrival
            departure = d if d == d else None
            if departure is None and not masked:
                raise ClairvoyanceError(
                    f"clairvoyant algorithm {self.algorithm!r} received an "
                    "item with unknown departure"
                )
            item = item_view(arrival, departure, size, uid)
            view = item_view(arrival, None, size, uid) if masked else item
            chosen = place(view, facade)
            opened = self._pending_bin is not None
            bin_ = commit(item, view, chosen, opened)
            if departure is not None:
                push(dq, (departure, self._seq, uid))
                self._seq += 1
            else:
                self._adaptive.add(uid)
            listener = self._listener
            if listener is not None:
                listener.on_arrival(item, bin_, opened)
        return hi - lo

    def _finish_release(self, item: Item, view: Item) -> Bin:
        """The shared tail of every release: place, commit, schedule."""
        chosen = self.algorithm.place(view, self._facade)
        opened = self._pending_bin is not None
        bin_ = self._commit(item, view, chosen, opened)
        if item.departure is not None:
            heapq.heappush(
                self._departures, (item.departure, self._seq, item.uid)
            )
            self._seq += 1
        else:
            self._adaptive.add(item.uid)
        if self._listener is not None:
            self._listener.on_arrival(item, bin_, opened)
        return bin_

    def depart(self, uid: int, time: float) -> None:
        """Force an adaptive item (unknown departure) out at ``time``.

        Used by non-clairvoyant adversaries that decide departure times
        as a function of the algorithm's behaviour.
        """
        if time < self.time:
            raise SimulationError(
                f"departure at {time} is before the clock ({self.time})"
            )
        if uid not in self._item_bin:
            raise PackingError(f"item {uid} is not active")
        if uid not in self._adaptive:
            raise SimulationError(
                f"item {uid} has a scheduled departure; only adaptive items "
                "may be departed explicitly"
            )
        self._advance(time)
        self._adaptive.discard(uid)
        self._do_departure(uid, time)

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, processing scheduled departures."""
        if time < self.time:
            raise SimulationError("time may not move backwards")
        self._advance(time)

    #: streaming-flavoured alias for :meth:`run_until`
    advance_to = run_until

    def drain(self) -> None:
        """Process every remaining scheduled departure.

        Raises if adaptive items are still active afterwards — those
        must be departed explicitly by whoever released them.
        """
        while self._departures:
            t, _, _ = self._departures[0]
            self._advance(t)
        if self._item_bin:
            alive = list(self._open.values())
            raise SimulationError(
                f"simulation finished with items still active in bins {alive}; "
                "adaptive items must be departed explicitly"
            )

    def result(self) -> PackingResult:
        """The audited :class:`PackingResult` (requires ``record=True``)."""
        if not self.record:
            raise SimulationError(
                "result() needs record=True; the constant-memory kernel "
                "keeps no per-item history — use the frontend's summary "
                "instead"
            )
        if self._item_bin:
            raise SimulationError("result() before the stream is drained")
        return PackingResult(
            algorithm=getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            ),
            items=tuple(self._items),
            assignment=dict(self._assignment),
            bins=tuple(self._records),
            departed_at=dict(self._departed_at),
            capacity=self.capacity,
        )

    def finish(self) -> PackingResult:
        """:meth:`drain` then :meth:`result` — the batch-style ending."""
        self.drain()
        return self.result()

    # ------------------------------------------------------------------ #
    # Internals — the one copy of the event semantics
    # ------------------------------------------------------------------ #
    def _advance(self, until: float) -> None:
        """Process scheduled departures ≤ ``until``, then move the clock."""
        dq = self._departures
        while dq:
            t, _, uid = dq[0]
            if t > until:
                break
            heapq.heappop(dq)
            self._do_departure(uid, t)
        if until > self.time:
            if self._listener is not None:
                self._listener.on_advance(until)
            self.time = until

    def _do_departure(self, uid: int, t: float) -> None:
        listener = self._listener
        timed = listener is not None and listener.timed
        t0 = _time.perf_counter() if timed else 0.0
        if t > self.time:
            if listener is not None:
                listener.on_advance(t)
            self.time = t
        bin_ = self._item_bin.pop(uid, None)
        if bin_ is None:
            return  # already departed (duplicate schedule), ignore
        removed = bin_._remove(uid)
        if self.record:
            self._departed_at[uid] = t
        hook = self._dep_hook
        if hook is not None:
            hook(removed, bin_, self._facade)
        closed = bin_.n_items == 0
        if closed:
            self._close(bin_, t)
        elif self._index is not None:
            self._index.update(bin_)
        if listener is not None:
            listener.on_departure(
                uid,
                removed,
                bin_,
                t,
                closed,
                _time.perf_counter() - t0 if timed else 0.0,
            )

    def _close(self, bin_: Bin, t: float) -> None:
        del self._open[bin_.uid]
        if self._index is not None:
            self._index.remove(bin_)
        peak = self._peak.pop(bin_.uid, 0.0)
        n_items = self._bin_count.pop(bin_.uid, 0)
        usage = t - bin_.opened_at
        self.closed_usage += usage
        self._sum_opened_at -= bin_.opened_at
        if not self._open:
            self._sum_opened_at = 0.0  # kill floating residue when idle
        if self.open_count_events is not None:
            self.open_count_events.append((t, -1))
        if self.record:
            self._records.append(
                BinRecord(
                    uid=bin_.uid,
                    tag=bin_.tag,
                    opened_at=bin_.opened_at,
                    closed_at=t,
                    item_uids=tuple(self._bin_items.pop(bin_.uid, ())),
                    peak_load=peak,
                )
            )
        if self._listener is not None:
            self._listener.on_close(bin_, t, usage, peak, n_items)
        hook = self._close_hook
        if hook is not None:
            hook(bin_, self._facade)

    def _commit(self, item: Item, view: Item, chosen, opened: bool) -> Bin:
        """Validate the algorithm's choice and commit the placement.

        The one pending-bin commit site: both frontends inherit its
        protocol checks (one new bin per placement, returned bin must be
        the pending one or already open) and capacity enforcement.
        """
        pending, self._pending_bin = self._pending_bin, None
        if not isinstance(chosen, Bin):
            raise PackingError(f"place() must return a Bin, got {chosen!r}")
        uid = chosen.uid
        if pending is not None:
            if chosen is not pending:
                raise PackingError(
                    "place() opened a new bin but returned a different one"
                )
            chosen._add(view)
            self._open[uid] = chosen
            self._sum_opened_at += chosen.opened_at
            if self._index is not None:
                self._index.add(chosen)
            if self.open_count_events is not None:
                self.open_count_events.append((self.time, +1))
            if self._listener is not None:
                self._listener.on_open(chosen)
        else:
            if uid not in self._open:
                raise PackingError(
                    f"place() returned bin {uid} which is not open"
                )
            chosen._add(view)
            if self._index is not None:
                self._index.update(chosen)
        load = chosen.load
        peak = self._peak
        if load > peak.get(uid, 0.0):
            peak[uid] = load
        counts = self._bin_count
        counts[uid] = counts.get(uid, 0) + 1
        self._item_bin[item.uid] = chosen
        if self.record:
            self._assignment[item.uid] = uid
            members = self._bin_items.get(uid)
            if members is None:
                self._bin_items[uid] = [item.uid]
            else:
                members.append(item.uid)
            self._items.append(item)
        return chosen

    # ------------------------------------------------------------------ #
    # Pickling (checkpointing): hooks are re-attached by the restorer
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_listener"] = None
        state["_facade"] = None
        # bound-method caches are recomputed on restore, not serialized
        state.pop("_dep_hook", None)
        state.pop("_close_hook", None)
        state.pop("_masked", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._facade is None:
            self._facade = self
        # also covers pre-columnar (v2-era) blobs, which lack the caches
        self._masked = self.masks_departures
        self._dep_hook = getattr(self.algorithm, "notify_departure", None)
        self._close_hook = getattr(self.algorithm, "notify_close", None)

    def __repr__(self) -> str:
        name = getattr(self.algorithm, "name", type(self.algorithm).__name__)
        return (
            f"PlacementKernel(algorithm={name!r}, t={self.time:g}, "
            f"open={len(self._open)}, cost={self.cost_so_far:.6g})"
        )
