"""Workload combinators: build complex traffic from simple pieces.

Generators produce base patterns; combinators compose them — the cloud
example's "calm trace + pathological burst" is `overlay(trace,
shift(burst, t))`.  All combinators return fresh validated instances and
never mutate inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import InvalidItemError
from ..core.instance import Instance
from ..core.item import Item

__all__ = ["overlay", "periodic", "perturb_sizes", "thin", "truncate"]


def overlay(*instances: Instance) -> Instance:
    """All items of all instances, merged into one timeline."""
    items = sorted(
        (it for inst in instances for it in inst), key=lambda it: it.arrival
    )
    return Instance([Item(it.arrival, it.departure, it.size) for it in items])


def periodic(instance: Instance, *, period: float, repeats: int) -> Instance:
    """``repeats`` copies of the instance, each shifted by ``period``.

    ``period`` must be positive; copies may overlap if the instance's
    activity outlasts the period (that's allowed — it models sustained
    load).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if repeats < 1:
        raise ValueError("repeats must be ≥ 1")
    copies = [instance.shifted(k * period) for k in range(repeats)]
    return overlay(*copies)


def perturb_sizes(
    instance: Instance,
    *,
    jitter: float,
    seed: int = 0,
    size_floor: float = 0.01,
) -> Instance:
    """Multiply every size by ``U(1−jitter, 1+jitter)``, clipped to (0, 1].

    Useful for robustness studies: does a policy's behaviour depend on
    exact sizes (the FF traps do) or only on the rough load profile?
    """
    if not (0.0 <= jitter < 1.0):
        raise ValueError("jitter must be in [0, 1)")
    rng = np.random.default_rng(seed)
    triples = []
    for it in instance:
        factor = float(rng.uniform(1.0 - jitter, 1.0 + jitter))
        size = min(1.0, max(size_floor, it.size * factor))
        triples.append((it.arrival, it.departure, size))
    return Instance.from_tuples(triples)


def thin(instance: Instance, *, keep: float, seed: int = 0) -> Instance:
    """Keep each item independently with probability ``keep``.

    At least one item is always retained (the earliest) so downstream code
    never sees an unexpectedly empty instance.
    """
    if not (0.0 < keep <= 1.0):
        raise ValueError("keep must be in (0, 1]")
    rng = np.random.default_rng(seed)
    kept = [it for it in instance if rng.uniform() < keep]
    if not kept:
        kept = [instance[0]]
    return Instance([Item(it.arrival, it.departure, it.size) for it in kept])


def truncate(instance: Instance, *, horizon: float) -> Instance:
    """Drop items arriving at or after ``horizon``; clip departures to it.

    Items whose whole interval lies beyond the horizon vanish; items
    straddling it are shortened (their size is unchanged — this models a
    hard end of the observation window, as trace collection does).
    """
    triples = []
    for it in instance:
        if it.arrival >= horizon:
            continue
        dep = min(it.departure, horizon)  # type: ignore[type-var]
        if dep <= it.arrival:
            continue
        triples.append((it.arrival, float(dep), it.size))
    return Instance.from_tuples(triples)
