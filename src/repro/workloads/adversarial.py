"""Deterministic adversarial item sequences (Section 4).

:func:`sigma_star` is Definition 4.1's σ*_t: at time ``t``, one item of
each length ``1, 2, 4, …, 2^{log μ}``, released shortest-to-longest, each
with load ``1/√(log μ)``.  The Theorem 4.3 adversary
(:mod:`repro.adversary.sqrt_log`) releases *prefixes* of these sequences
adaptively; this module provides the raw material and some fixed
(non-adaptive) hard inputs used as stress workloads.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..core.instance import Instance
from ..core.item import Item

__all__ = [
    "sigma_star",
    "sigma_star_items",
    "full_adversary_schedule",
    "ff_trap",
    "cbd_trap",
]


def _check_mu(mu: int) -> int:
    if mu < 2 or (mu & (mu - 1)) != 0:
        raise ValueError(f"μ must be a power of two ≥ 2, got {mu}")
    return int(math.log2(mu))


def sigma_star_items(t: float, mu: int) -> List[tuple[float, float, float]]:
    """σ*_t as ``(arrival, departure, size)`` triples, shortest first."""
    n = _check_mu(mu)
    load = 1.0 / math.sqrt(n) if n > 0 else 1.0
    load = min(load, 1.0)
    return [(t, t + float(2**i), load) for i in range(n + 1)]


def sigma_star(t: float, mu: int) -> Instance:
    """Definition 4.1's σ*_t as an :class:`Instance`."""
    return Instance.from_tuples(sigma_star_items(t, mu))


def full_adversary_schedule(mu: int) -> Instance:
    """The *non-adaptive* worst case: the complete σ*_{t_i} at every
    ``t_i = i``, ``i = 0..μ−1``.

    The adaptive adversary releases prefixes; this fixed input releases
    everything and is a useful dense stress workload (it makes every online
    algorithm pay, just without the per-algorithm tailoring).
    """
    triples: list[tuple[float, float, float]] = []
    for i in range(mu):
        triples.extend(sigma_star_items(float(i), mu))
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)


def ff_trap(mu: int, *, pairs: int | None = None, eps: float = 0.01) -> Instance:
    """A deterministic instance on which First-Fit pays Ω(μ).

    At time 0, release ``pairs`` alternating (pin, block) couples: a *pin*
    of size ε living ``[0, μ]`` followed by a *block* of size ``1 − ε``
    living ``[0, 1]``.  Under First-Fit each pin lands in the freshest bin
    (all older ones are exactly full) and the following block fills that
    bin to exactly 1 — so every couple opens a new bin, and after the
    blocks depart, ``pairs`` bins stay open until μ, each pinned by one
    ε-item.  FF pays ≈ pairs·μ while OPT packs all pins into one bin:
    OPT ≈ μ + pairs.  With ``pairs = ⌊1/ε⌋`` the ratio is Θ(min(1/ε, μ)).

    This is the "First-Fit ... is known to be at least Ω(μ)-competitive"
    claim of the paper's Techniques section, made concrete.  HA (and
    classify-by-duration) escape it: the pins form a single duration class
    that crosses HA's threshold and gets consolidated into CD bins.
    """
    if mu < 2:
        raise ValueError("μ must be ≥ 2")
    k = pairs if pairs is not None else min(int(1 / eps), mu)
    if k * eps > 1.0 + 1e-9:
        raise ValueError("pairs·eps must be ≤ 1 so OPT can consolidate pins")
    triples: list[tuple[float, float, float]] = []
    for _ in range(k):
        triples.append((0.0, float(mu), eps))
        triples.append((0.0, 1.0, 1.0 - eps))
    return Instance.from_tuples(triples)


def cbd_trap(mu: int, *, rounds: int | None = None,
             size: float | None = None) -> Instance:
    """A deterministic instance on which classify-by-duration pays Ω(log μ).

    Every round ``t = 0, 1, …`` releases one *tiny* item of each length
    ``1, 2, …, μ``.  A class-``i`` item lives ``2^i`` rounds, so ``2^i``
    of them are concurrently active and the steady-state total load is
    ``≈ 2μ·size``; the default ``size = 1/(2μ)`` keeps it ≤ 1 so OPT uses
    a single bin (cost ≈ span ≈ 2μ) while per-class packing holds one
    near-empty bin per class open at all times (cost ≈ (log μ+1)·μ) —
    ratio Θ(log μ).  First-Fit and HA pay O(1) here; the trap isolates the
    cost of *static* duration classification.
    """
    n = _check_mu(mu)
    if size is None:
        size = 1.0 / (2.0 * mu)
    if (n + 1) * size > 1.0 + 1e-9:
        raise ValueError("size too large: one bin must hold a whole σ*_t")
    r = rounds if rounds is not None else mu
    triples: list[tuple[float, float, float]] = []
    for i in range(r):
        t = float(i)
        triples.extend((t, t + float(2**j), size) for j in range(n + 1))
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)
