"""Synthetic cloud workloads — the paper's motivating application.

The introduction motivates clairvoyant MinUsageTime DBP with cloud-based
networks: users request a bandwidth share of a server for a period that can
be accurately predicted at arrival (e.g. cloud gaming, Li et al. [8]).
Production traces are not available offline (DESIGN.md §4, substitution 2),
so this module synthesises session workloads exercising the same code path:

- :func:`cloud_gaming` — diurnally modulated Poisson arrivals, bounded
  heavy-tailed (log-normal) session durations, bandwidth-fraction sizes
  concentrated on a few "quality tiers";
- :func:`batch_jobs` — bursty batch submissions with nested durations, the
  regime where classify-by-duration baselines lose to HA;
- :func:`bounded_parallelism` — the Shalom et al. [12] setting: every item
  has size exactly ``1/g`` (a machine serves at most ``g`` jobs).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.instance import Instance

__all__ = ["cloud_gaming", "batch_jobs", "bounded_parallelism"]


def cloud_gaming(
    horizon: float,
    *,
    seed: int = 0,
    base_rate: float = 2.0,
    peak_factor: float = 3.0,
    day_length: float = 24.0,
    mean_session: float = 1.0,
    sigma: float = 0.8,
    max_session: float = 16.0,
    tiers: Sequence[float] = (0.125, 0.25, 0.5),
    tier_weights: Sequence[float] = (0.5, 0.35, 0.15),
) -> Instance:
    """Synthetic cloud-gaming sessions.

    Arrivals follow an inhomogeneous Poisson process whose intensity swings
    between ``base_rate`` and ``base_rate·peak_factor`` over a ``day_length``
    cycle (thinning construction).  Durations are log-normal with mean
    ``mean_session``, truncated to ``[mean_session/8, max_session]`` so μ is
    bounded and known.  Sizes come from discrete bandwidth tiers.
    """
    rng = np.random.default_rng(seed)
    lam_max = base_rate * peak_factor
    t = 0.0
    arrivals: list[float] = []
    while True:
        t += float(rng.exponential(1.0 / lam_max))
        if t >= horizon:
            break
        phase = 2.0 * math.pi * t / day_length
        lam_t = base_rate * (1.0 + (peak_factor - 1.0) * 0.5 * (1.0 + math.sin(phase)))
        if rng.uniform() <= lam_t / lam_max:
            arrivals.append(t)
    if not arrivals:
        arrivals = [0.0]
    n = len(arrivals)
    durations = rng.lognormal(math.log(mean_session), sigma, size=n)
    durations = np.clip(durations, mean_session / 8.0, max_session)
    tier_p = np.asarray(tier_weights, dtype=float)
    tier_p = tier_p / tier_p.sum()
    sizes = rng.choice(np.asarray(tiers, dtype=float), size=n, p=tier_p)
    triples = [
        (float(a), float(a + d), float(s))
        for a, d, s in zip(arrivals, durations, sizes)
    ]
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)


def batch_jobs(
    n_bursts: int,
    jobs_per_burst: int,
    *,
    seed: int = 0,
    burst_spacing: float = 4.0,
    mu: float = 64.0,
    size_low: float = 0.05,
    size_high: float = 0.5,
) -> Instance:
    """Bursty batch submissions with nested (geometric) durations.

    Every burst releases jobs whose lengths are powers of two up to μ — the
    nested-duration pattern that makes per-class packing wasteful and that
    the adversary of Section 4 exploits.
    """
    rng = np.random.default_rng(seed)
    n_classes = int(math.log2(mu)) + 1
    triples: list[tuple[float, float, float]] = []
    for b in range(n_bursts):
        t = b * burst_spacing + float(rng.uniform(0, burst_spacing / 4))
        for _ in range(jobs_per_burst):
            i = int(rng.integers(0, n_classes))
            length = float(2**i)
            size = float(rng.uniform(size_low, size_high))
            triples.append((t, t + length, size))
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)


def bounded_parallelism(
    g: int,
    n_items: int,
    mu: float,
    *,
    seed: int = 0,
    horizon: Optional[float] = None,
) -> Instance:
    """The Shalom et al. [12] setting: all items have size exactly ``1/g``.

    Their lower bound construction is the ancestor of the paper's Section 4
    adversary; this generator reproduces the *uniform-size* regime so
    experiments can compare it with the general case.
    """
    if g < 1:
        raise ValueError("g must be a positive integer")
    rng = np.random.default_rng(seed)
    horizon = horizon if horizon is not None else 4.0 * mu
    arrivals = rng.uniform(0.0, horizon, size=n_items - 1)
    lengths = np.exp(rng.uniform(0.0, math.log(max(mu, 1 + 1e-12)), size=n_items - 1))
    triples = [(0.0, float(mu), 1.0 / g)]
    triples += [
        (float(a), float(a + l), 1.0 / g) for a, l in zip(arrivals, lengths)
    ]
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)
