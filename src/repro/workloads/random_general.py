"""General (unaligned) random workloads for the clairvoyant experiments.

All generators return instances normalised to minimum length 1 (the
Section 3 convention).  Lengths are drawn log-uniformly over ``[1, μ]`` so
every duration class ``i ∈ {1..log μ}`` is populated — the regime in which
the classify-by-duration baselines pay their ``log μ`` factor and HA's
threshold matters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.instance import Instance

__all__ = ["uniform_random", "poisson_random", "staircase"]


def uniform_random(
    n_items: int,
    mu: float,
    *,
    seed: int = 0,
    horizon: Optional[float] = None,
    size_low: float = 0.02,
    size_high: float = 1.0,
) -> Instance:
    """Arrivals uniform on ``[0, horizon]``, lengths log-uniform on ``[1, μ]``.

    Two anchor items (lengths exactly 1 and μ) pin the instance's μ to the
    requested value.
    """
    if mu < 1:
        raise ValueError(f"μ must be ≥ 1, got {mu}")
    if n_items < 2:
        raise ValueError("need at least two items (the anchors)")
    rng = np.random.default_rng(seed)
    horizon = horizon if horizon is not None else 4.0 * mu
    arrivals = rng.uniform(0.0, horizon, size=n_items - 2)
    lengths = np.exp(rng.uniform(0.0, np.log(max(mu, 1.0 + 1e-12)), size=n_items - 2))
    sizes = rng.uniform(size_low, size_high, size=n_items)
    triples = [(0.0, mu, float(sizes[0])), (0.0, 1.0, float(sizes[1]))]
    triples += [
        (float(a), float(a + l), float(s))
        for a, l, s in zip(arrivals, lengths, sizes[2:])
    ]
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)


def poisson_random(
    rate: float,
    mu: float,
    horizon: float,
    *,
    seed: int = 0,
    size_low: float = 0.02,
    size_high: float = 1.0,
) -> Instance:
    """Poisson arrivals of intensity ``rate``; lengths log-uniform on [1, μ]."""
    if rate <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = np.random.default_rng(seed)
    n = int(rng.poisson(rate * horizon))
    arrivals = np.sort(rng.uniform(0.0, horizon, size=n))
    lengths = np.exp(rng.uniform(0.0, np.log(max(mu, 1.0 + 1e-12)), size=n))
    sizes = rng.uniform(size_low, size_high, size=n)
    triples = [(0.0, mu, float(rng.uniform(size_low, size_high)))]
    triples += [
        (float(a), float(a + l), float(s))
        for a, l, s in zip(arrivals, lengths, sizes)
    ]
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)


def staircase(mu: float, *, levels: Optional[int] = None, size: float = 0.3) -> Instance:
    """A deterministic nested-duration instance: at time 0 release one item
    of each length ``1, 2, 4, …, μ``.  This is one batch of the adversary's
    σ*₀ sequence and a useful deterministic smoke workload."""
    import math

    n = levels if levels is not None else int(math.log2(mu)) + 1
    triples = [(0.0, float(2**i), size) for i in range(n)]
    return Instance.from_tuples(triples)
