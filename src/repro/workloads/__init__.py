"""Workload generators: random, aligned, adversarial, cloud-style."""

from .adversarial import (
    cbd_trap,
    ff_trap,
    full_adversary_schedule,
    sigma_star,
    sigma_star_items,
)
from .aligned import aligned_random, binary_input
from .cloud import batch_jobs, bounded_parallelism, cloud_gaming
from .combinators import overlay, periodic, perturb_sizes, thin, truncate
from .io import (
    dump_jsonl,
    dumps_csv,
    dumps_jsonl,
    iter_jsonl,
    load_csv,
    load_jsonl,
    loads_csv,
    loads_jsonl,
    save_csv,
)
from .random_general import poisson_random, staircase, uniform_random

__all__ = [
    "sigma_star",
    "sigma_star_items",
    "full_adversary_schedule",
    "ff_trap",
    "cbd_trap",
    "binary_input",
    "aligned_random",
    "cloud_gaming",
    "batch_jobs",
    "bounded_parallelism",
    "uniform_random",
    "poisson_random",
    "staircase",
    "save_csv",
    "load_csv",
    "dumps_csv",
    "loads_csv",
    "dump_jsonl",
    "load_jsonl",
    "dumps_jsonl",
    "loads_jsonl",
    "iter_jsonl",
    "overlay",
    "periodic",
    "perturb_sizes",
    "thin",
    "truncate",
]
