"""Aligned and binary inputs (Definitions 2.1 and 5.2).

- :func:`binary_input` — the paper's σ_μ: for every class
  ``i ∈ {0, …, log μ}``, items of duration ``2^i`` arrive at times
  ``0, 2^i, 2·2^i, …, μ − 2^i``, all with load ``1/log μ``.  This is the
  structured worst case CDFF's analysis is built on (Figures 2–3).
- :func:`aligned_random` — random inputs satisfying Definition 2.1: a
  class-``i`` item may only arrive at multiples of ``2^i``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.instance import Instance
from ..core.item import Item

__all__ = ["binary_input", "aligned_random"]


def binary_input(mu: int, *, size: Optional[float] = None) -> Instance:
    """The binary input σ_μ of Definition 5.2 (μ a power of two, ≥ 2).

    ``size`` defaults to ``1/(log₂ μ + 1)``.  The paper states loads of
    ``1/log μ`` and "at any moment there are log μ active items", but
    Definition 5.2 spans classes ``i ∈ {0, …, log μ}`` — that is
    ``log μ + 1`` simultaneously active items (Figure 2 shows four rows for
    σ_8), so a load of ``1/log μ`` would overflow bin ``b₀¹`` at
    ``t = μ − 1`` where Lemma 5.5 maps *all* items to it.  The off-by-one
    correction ``1/(log μ + 1)`` restores the invariant the proof of
    Lemma 5.5 uses ("no bin of type ``b_i¹`` will ever be full") and makes
    Corollary 5.8 an exact identity — see EXPERIMENTS.md (COR5.8).
    """
    if mu < 2 or (mu & (mu - 1)) != 0:
        raise ValueError(f"μ must be a power of two ≥ 2, got {mu}")
    n = int(math.log2(mu))
    s = size if size is not None else 1.0 / (n + 1)
    items = []
    for i in range(n + 1):
        length = 2**i
        for c in range(mu // length):
            items.append((float(c * length), float(c * length + length), s))
    items.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(items)


def aligned_random(
    mu: int,
    n_items: int,
    *,
    seed: int = 0,
    horizon: Optional[int] = None,
    size_low: float = 0.05,
    size_high: float = 1.0,
    class_weights: Optional[np.ndarray] = None,
) -> Instance:
    """A random aligned input with classes ``0..log₂ μ``.

    Each item draws a class ``i`` (uniform by default), an arrival that is a
    multiple of ``2^i`` inside ``[0, horizon − 2^i]``, a length of exactly
    ``2^i`` (so the departure stays before the next class boundary, which
    Definition 2.1 forces anyway for arrivals strictly inside a window),
    and a uniform size.  An anchor item of length μ at time 0 is always
    included so the instance's μ equals the requested value and the
    Section 5 partition starts cleanly.
    """
    if mu < 2 or (mu & (mu - 1)) != 0:
        raise ValueError(f"μ must be a power of two ≥ 2, got {mu}")
    if n_items < 1:
        raise ValueError("need at least one item")
    n = int(math.log2(mu))
    horizon = horizon if horizon is not None else mu
    if horizon < mu:
        raise ValueError("horizon must be at least μ")
    rng = np.random.default_rng(seed)
    weights = (
        np.full(n + 1, 1.0 / (n + 1))
        if class_weights is None
        else np.asarray(class_weights, dtype=float) / np.sum(class_weights)
    )
    if len(weights) != n + 1:
        raise ValueError(f"class_weights must have {n + 1} entries")

    triples: list[tuple[float, float, float]] = [
        (0.0, float(mu), float(rng.uniform(size_low, size_high)))
    ]
    classes = rng.choice(n + 1, size=n_items - 1, p=weights)
    for i in classes:
        width = 2**int(i)
        slots = horizon // width
        c = int(rng.integers(0, slots))
        arrival = float(c * width)
        # any length in (2^{i-1}, 2^i] keeps the item inside its window;
        # sample one so lengths are not all powers of two
        length = float(rng.uniform(max(width / 2, 0.5001), width)) if width > 1 \
            else float(rng.uniform(0.5001, 1.0))
        size = float(rng.uniform(size_low, size_high))
        triples.append((arrival, arrival + length, size))
    triples.sort(key=lambda tpl: tpl[0])
    return Instance.from_tuples(triples)
