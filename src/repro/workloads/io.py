"""Instance serialisation: CSV and JSONL save/load, plus trace streaming.

A downstream user's traces arrive as files; this module round-trips
instances through two formats:

- CSV with a fixed header::

      arrival,departure,size
      0.0,4.0,0.5

- JSON Lines, one object per item (the streaming engine's native
  format — ``repro.engine.stream.iter_jsonl`` replays these files in
  constant memory)::

      {"arrival": 0.0, "departure": 4.0, "size": 0.5}

Rows are re-sorted by arrival on (whole-file) load — stable, preserving
file order for ties, since the simultaneous-arrival order is part of the
input's semantics.  :func:`iter_jsonl` does **not** sort: it yields items
in file order so that traces never need to fit in RAM; writers are
expected to emit arrival-ordered lines (both :func:`dump_jsonl` and the
generators do).

All loaders decode straight into :class:`~repro.core.store.ItemStore`
columns — no per-line :class:`Item` dataclass is materialized, which is
where whole-file loading gets its speed and its flat memory profile.
Validation happens on the store append, so a bad row still raises
:class:`InvalidInstanceError` carrying the 1-based line number with the
same message the boxed loaders produced.  :func:`iter_jsonl_stores` and
:func:`iter_csv_stores` stream a large trace as bounded column chunks —
the engine's constant-memory columnar sources.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Iterator, Optional, Union

from ..core.errors import InvalidInstanceError, InvalidItemError
from ..core.instance import Instance
from ..core.item import Item, item_view
from ..core.store import ItemStore, validate_item_values

__all__ = [
    "save_csv",
    "load_csv",
    "dumps_csv",
    "loads_csv",
    "dump_jsonl",
    "load_jsonl",
    "dumps_jsonl",
    "loads_jsonl",
    "iter_jsonl",
    "iter_jsonl_stores",
    "iter_csv_stores",
]

_HEADER = ["arrival", "departure", "size"]

#: default rows per chunk for the ``iter_*_stores`` streaming readers
CHUNK_ROWS = 4096


def dumps_csv(instance: Instance) -> str:
    """The instance as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_HEADER)
    for it in instance:
        writer.writerow([repr(it.arrival), repr(it.departure), repr(it.size)])
    return buf.getvalue()


def loads_csv(text: str) -> Instance:
    """Parse CSV text into an :class:`Instance`."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return Instance([])
    header = [h.strip().lower() for h in rows[0]]
    if header != _HEADER:
        raise InvalidInstanceError(
            f"expected header {_HEADER!r}, got {rows[0]!r}"
        )
    store = ItemStore()
    append = store.append
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != 3:
            raise InvalidInstanceError(
                f"line {lineno}: expected 3 columns, got {len(row)}"
            )
        try:
            append(float(row[0]), float(row[1]), float(row[2]))
        except ValueError as exc:  # includes InvalidItemError
            raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    store.sort_by_arrival()
    return Instance.from_store(store)


def save_csv(instance: Instance, path: Union[str, pathlib.Path]) -> None:
    """Write the instance to ``path`` as CSV."""
    pathlib.Path(path).write_text(dumps_csv(instance))


def load_csv(path: Union[str, pathlib.Path]) -> Instance:
    """Read an instance from a CSV file."""
    return loads_csv(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------- #
# JSON Lines
# ---------------------------------------------------------------------- #
def _item_to_obj(it: Item) -> dict:
    return {"arrival": it.arrival, "departure": it.departure, "size": it.size}


def _decode_obj(obj: dict, lineno: int):
    """One parsed JSONL object as an ``(arrival, departure, size)`` triple."""
    if not isinstance(obj, dict):
        raise InvalidInstanceError(
            f"line {lineno}: expected a JSON object, got {type(obj).__name__}"
        )
    try:
        arrival = float(obj["arrival"])
        departure = obj["departure"]
        size = float(obj["size"])
    except KeyError as exc:
        raise InvalidInstanceError(
            f"line {lineno}: missing field {exc.args[0]!r}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    if departure is not None:
        departure = float(departure)
    return arrival, departure, size


def _obj_to_item(obj: dict, lineno: int, uid: int) -> Item:
    arrival, departure, size = _decode_obj(obj, lineno)
    try:
        return Item(arrival, departure, size, uid=uid)
    except InvalidItemError as exc:
        raise InvalidInstanceError(f"line {lineno}: {exc}") from exc


def _parse_jsonl_batch(batch):
    """Parse non-blank ``(lineno, text)`` JSONL lines into objects.

    Fast path: one C-level ``json.loads`` over the lines joined as a
    JSON array — an order of magnitude fewer interpreter round-trips
    than line-at-a-time decoding.  Any failure (or an element-count
    mismatch, which catches lines holding several comma-separated
    values that the array join would silently flatten) falls back to
    per-line parsing so errors carry the exact offending line number
    and message.
    """
    try:
        objs = json.loads("[" + ",".join(text for _, text in batch) + "]")
        if len(objs) == len(batch):
            return objs
    except ValueError:
        pass
    objs = []
    for lineno, text in batch:
        try:
            objs.append(json.loads(text))
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    return objs


def _append_objs(objs, batch, append, uid=None):
    """Decode parsed JSONL objects into store rows via ``append``.

    The happy path inlines the field extraction; on any failure the row
    is re-decoded through :func:`_decode_obj`/``append`` so the raised
    :class:`InvalidInstanceError` carries the same line number and
    message as the line-at-a-time loaders.  Returns the next uid when
    ``uid`` is given.
    """
    for i, obj in enumerate(objs):
        try:
            arrival = float(obj["arrival"])
            departure = obj["departure"]
            if departure is not None:
                departure = float(departure)
            size = float(obj["size"])
            if uid is None:
                append(arrival, departure, size)
            else:
                append(arrival, departure, size, uid)
                uid += 1
        except InvalidItemError as exc:  # append-time validation
            raise InvalidInstanceError(
                f"line {batch[i][0]}: {exc}"
            ) from exc
        except (KeyError, TypeError, ValueError):
            _decode_obj(obj, batch[i][0])  # raises with the line number
            raise  # pragma: no cover - _decode_obj always raises here
    return uid


def _extend_objs(objs, batch, store: ItemStore, uid=None):
    """Bulk-decode parsed JSONL objects into store columns.

    The fast path: three list comprehensions plus one
    :meth:`ItemStore.extend_columns` call per batch.  Any decode
    failure falls back to the row-at-a-time :func:`_append_objs` so the
    error carries the exact line number and message; a validation
    failure maps the store's ``row`` tag back to its source line.
    Returns the next uid when ``uid`` is given.
    """
    try:
        arrivals = [float(o["arrival"]) for o in objs]
        departures = [
            d if (d := o["departure"]) is None else float(d) for o in objs
        ]
        sizes = [float(o["size"]) for o in objs]
    except (KeyError, TypeError, ValueError):
        return _append_objs(objs, batch, store.append, uid)
    try:
        store.extend_columns(arrivals, departures, sizes, uid_start=uid)
    except InvalidItemError as exc:
        lineno = batch[getattr(exc, "row", 0)][0]
        raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    return None if uid is None else uid + len(objs)


def dumps_jsonl(instance: Instance) -> str:
    """The instance as JSON Lines text (one object per item)."""
    return "".join(json.dumps(_item_to_obj(it)) + "\n" for it in instance)


def loads_jsonl(text: str) -> Instance:
    """Parse JSON Lines text into an :class:`Instance` (re-sorted, stable)."""
    store = ItemStore()
    append = store.append
    batch = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if line:
            batch.append((lineno, line))
            if len(batch) >= CHUNK_ROWS:
                _extend_objs(_parse_jsonl_batch(batch), batch, store)
                batch.clear()
    if batch:
        _extend_objs(_parse_jsonl_batch(batch), batch, store)
    store.sort_by_arrival()
    return Instance.from_store(store)


def dump_jsonl(instance: Instance, path: Union[str, pathlib.Path]) -> None:
    """Write the instance to ``path`` as JSON Lines."""
    with pathlib.Path(path).open("w") as fh:
        for it in instance:
            fh.write(json.dumps(_item_to_obj(it)) + "\n")


def load_jsonl(path: Union[str, pathlib.Path]) -> Instance:
    """Read an instance from a JSON Lines file."""
    return loads_jsonl(pathlib.Path(path).read_text())


def iter_jsonl(path: Union[str, pathlib.Path]) -> Iterator[Item]:
    """Stream items from a JSON Lines file in **file order**, lazily.

    Memory stays constant in the trace length — this is what
    ``repro-dbp replay`` and the streaming engine consume.  Items get
    sequential uids in file order, which coincides with
    :class:`Instance` uids whenever the file is arrival-sorted (as
    :func:`dump_jsonl` output always is).
    """
    with pathlib.Path(path).open() as fh:
        uid = 0
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
            arrival, departure, size = _decode_obj(obj, lineno)
            try:
                validate_item_values(arrival, departure, size)
            except InvalidItemError as exc:
                raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
            yield item_view(arrival, departure, size, uid)
            uid += 1


def iter_jsonl_stores(
    path: Union[str, pathlib.Path],
    *,
    chunk_rows: int = CHUNK_ROWS,
    uid_start: int = 0,
) -> Iterator[ItemStore]:
    """Stream a JSONL trace as bounded :class:`ItemStore` chunks.

    The columnar twin of :func:`iter_jsonl`: file order, sequential uids
    (starting at ``uid_start``), constant memory — at most ``chunk_rows``
    rows are resident per chunk.  Feeding every chunk to
    :meth:`Engine.feed_store <repro.engine.loop.Engine.feed_store>`
    replays the trace with the exact decisions of the item-wise path.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    uid = uid_start
    batch = []
    with pathlib.Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line:
                batch.append((lineno, line))
                if len(batch) >= chunk_rows:
                    store = ItemStore()
                    uid = _extend_objs(
                        _parse_jsonl_batch(batch), batch, store, uid
                    )
                    batch.clear()
                    yield store
    if batch:
        store = ItemStore()
        _extend_objs(_parse_jsonl_batch(batch), batch, store, uid)
        yield store


def iter_csv_stores(
    path: Union[str, pathlib.Path],
    *,
    chunk_rows: int = CHUNK_ROWS,
    uid_start: int = 0,
) -> Iterator[ItemStore]:
    """Stream a CSV trace as bounded :class:`ItemStore` chunks (file order)."""
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    store = ItemStore()
    append = store.append
    uid = uid_start
    with pathlib.Path(path).open(newline="") as fh:
        reader = csv.reader(fh)
        header_seen = False
        for lineno, row in enumerate(reader, start=1):
            if not row:
                continue
            if not header_seen:
                header = [h.strip().lower() for h in row]
                if header != _HEADER:
                    raise InvalidInstanceError(
                        f"expected header {_HEADER!r}, got {row!r}"
                    )
                header_seen = True
                continue
            if len(row) != 3:
                raise InvalidInstanceError(
                    f"line {lineno}: expected 3 columns, got {len(row)}"
                )
            try:
                append(float(row[0]), float(row[1]), float(row[2]), uid)
            except ValueError as exc:  # includes InvalidItemError
                raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
            uid += 1
            if len(store) >= chunk_rows:
                yield store
                store = ItemStore()
                append = store.append
    if len(store):
        yield store
