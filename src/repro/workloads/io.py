"""Instance serialisation: CSV and JSONL save/load, plus trace streaming.

A downstream user's traces arrive as files; this module round-trips
instances through two formats:

- CSV with a fixed header::

      arrival,departure,size
      0.0,4.0,0.5

- JSON Lines, one object per item (the streaming engine's native
  format — ``repro.engine.stream.iter_jsonl`` replays these files in
  constant memory)::

      {"arrival": 0.0, "departure": 4.0, "size": 0.5}

Rows are re-sorted by arrival on (whole-file) load — stable, preserving
file order for ties, since the simultaneous-arrival order is part of the
input's semantics.  :func:`iter_jsonl` does **not** sort: it yields items
in file order so that traces never need to fit in RAM; writers are
expected to emit arrival-ordered lines (both :func:`dump_jsonl` and the
generators do).
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Iterator, Union

from ..core.errors import InvalidInstanceError, InvalidItemError
from ..core.instance import Instance
from ..core.item import Item

__all__ = [
    "save_csv",
    "load_csv",
    "dumps_csv",
    "loads_csv",
    "dump_jsonl",
    "load_jsonl",
    "dumps_jsonl",
    "loads_jsonl",
    "iter_jsonl",
]

_HEADER = ["arrival", "departure", "size"]


def dumps_csv(instance: Instance) -> str:
    """The instance as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_HEADER)
    for it in instance:
        writer.writerow([repr(it.arrival), repr(it.departure), repr(it.size)])
    return buf.getvalue()


def loads_csv(text: str) -> Instance:
    """Parse CSV text into an :class:`Instance`."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return Instance([])
    header = [h.strip().lower() for h in rows[0]]
    if header != _HEADER:
        raise InvalidInstanceError(
            f"expected header {_HEADER!r}, got {rows[0]!r}"
        )
    triples = []
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != 3:
            raise InvalidInstanceError(
                f"line {lineno}: expected 3 columns, got {len(row)}"
            )
        try:
            triple = (float(row[0]), float(row[1]), float(row[2]))
            Item(*triple, uid=0)  # validate here, where the line is known
        except ValueError as exc:  # includes InvalidItemError
            raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
        triples.append(triple)
    return Instance.from_tuples(triples)


def save_csv(instance: Instance, path: Union[str, pathlib.Path]) -> None:
    """Write the instance to ``path`` as CSV."""
    pathlib.Path(path).write_text(dumps_csv(instance))


def load_csv(path: Union[str, pathlib.Path]) -> Instance:
    """Read an instance from a CSV file."""
    return loads_csv(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------- #
# JSON Lines
# ---------------------------------------------------------------------- #
def _item_to_obj(it: Item) -> dict:
    return {"arrival": it.arrival, "departure": it.departure, "size": it.size}


def _obj_to_item(obj: dict, lineno: int, uid: int) -> Item:
    if not isinstance(obj, dict):
        raise InvalidInstanceError(
            f"line {lineno}: expected a JSON object, got {type(obj).__name__}"
        )
    try:
        arrival = float(obj["arrival"])
        departure = obj["departure"]
        size = float(obj["size"])
    except KeyError as exc:
        raise InvalidInstanceError(
            f"line {lineno}: missing field {exc.args[0]!r}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    if departure is not None:
        departure = float(departure)
    try:
        return Item(arrival, departure, size, uid=uid)
    except InvalidItemError as exc:
        raise InvalidInstanceError(f"line {lineno}: {exc}") from exc


def dumps_jsonl(instance: Instance) -> str:
    """The instance as JSON Lines text (one object per item)."""
    return "".join(json.dumps(_item_to_obj(it)) + "\n" for it in instance)


def loads_jsonl(text: str) -> Instance:
    """Parse JSON Lines text into an :class:`Instance` (re-sorted, stable)."""
    items = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
        items.append(_obj_to_item(obj, lineno, uid=len(items)))
    items.sort(key=lambda it: it.arrival)
    return Instance(items)


def dump_jsonl(instance: Instance, path: Union[str, pathlib.Path]) -> None:
    """Write the instance to ``path`` as JSON Lines."""
    with pathlib.Path(path).open("w") as fh:
        for it in instance:
            fh.write(json.dumps(_item_to_obj(it)) + "\n")


def load_jsonl(path: Union[str, pathlib.Path]) -> Instance:
    """Read an instance from a JSON Lines file."""
    return loads_jsonl(pathlib.Path(path).read_text())


def iter_jsonl(path: Union[str, pathlib.Path]) -> Iterator[Item]:
    """Stream items from a JSON Lines file in **file order**, lazily.

    Memory stays constant in the trace length — this is what
    ``repro-dbp replay`` and the streaming engine consume.  Items get
    sequential uids in file order, which coincides with
    :class:`Instance` uids whenever the file is arrival-sorted (as
    :func:`dump_jsonl` output always is).
    """
    with pathlib.Path(path).open() as fh:
        uid = 0
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
            yield _obj_to_item(obj, lineno, uid=uid)
            uid += 1
