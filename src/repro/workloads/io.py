"""Instance serialisation: CSV save/load and trace replay.

A downstream user's traces arrive as files; this module round-trips
instances through a simple CSV format::

    arrival,departure,size
    0.0,4.0,0.5
    ...

Rows are re-sorted by arrival on load (stable, preserving file order for
ties — the simultaneous-arrival order is part of the input's semantics).
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Union

from ..core.errors import InvalidInstanceError
from ..core.instance import Instance

__all__ = ["save_csv", "load_csv", "dumps_csv", "loads_csv"]

_HEADER = ["arrival", "departure", "size"]


def dumps_csv(instance: Instance) -> str:
    """The instance as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_HEADER)
    for it in instance:
        writer.writerow([repr(it.arrival), repr(it.departure), repr(it.size)])
    return buf.getvalue()


def loads_csv(text: str) -> Instance:
    """Parse CSV text into an :class:`Instance`."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return Instance([])
    header = [h.strip().lower() for h in rows[0]]
    if header != _HEADER:
        raise InvalidInstanceError(
            f"expected header {_HEADER!r}, got {rows[0]!r}"
        )
    triples = []
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != 3:
            raise InvalidInstanceError(
                f"line {lineno}: expected 3 columns, got {len(row)}"
            )
        try:
            triples.append((float(row[0]), float(row[1]), float(row[2])))
        except ValueError as exc:
            raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
    return Instance.from_tuples(triples)


def save_csv(instance: Instance, path: Union[str, pathlib.Path]) -> None:
    """Write the instance to ``path`` as CSV."""
    pathlib.Path(path).write_text(dumps_csv(instance))


def load_csv(path: Union[str, pathlib.Path]) -> Instance:
    """Read an instance from a CSV file."""
    return loads_csv(pathlib.Path(path).read_text())
