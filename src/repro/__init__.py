"""repro — a reproduction of *Tight Bounds for Clairvoyant Dynamic Bin
Packing* (Azar & Vainstein, SPAA 2017).

The package implements the MinUsageTime dynamic bin packing model, the
paper's two algorithms (the Hybrid Algorithm and CDFF), the Ω(√log μ)
adversary, the offline oracles the analysis compares against, and an
experiment harness regenerating every table and figure of the paper.

Quickstart::

    from repro import Instance, HybridAlgorithm, simulate, opt_reference

    sigma = Instance.from_tuples([(0, 4, 0.5), (0, 1, 0.5), (2, 6, 0.3)])
    result = simulate(HybridAlgorithm(), sigma)
    print(result.cost, opt_reference(sigma))
"""

from .adversary import (
    AdaptiveAdversary,
    AdversaryOutcome,
    NonClairvoyantAdversary,
    SqrtLogAdversary,
    realized_instance,
)
from .algorithms import (
    CDFF,
    AnyFit,
    BestFit,
    ClassifyByDuration,
    FirstFit,
    HybridAlgorithm,
    LastFit,
    LeastExpansion,
    NextFit,
    OnlineAlgorithm,
    RandomFit,
    RenTang,
    StaticRowsCDFF,
    WorstFit,
    duration_class,
    item_type,
)
from .analysis import (
    fit_growth,
    loglog_mu,
    measure_ratio,
    sqrt_log_mu,
)
from .core import (
    Bin,
    BinRecord,
    IncrementalSimulation,
    Instance,
    Item,
    LoadProfile,
    PackingResult,
    PlacementKernel,
    ReproError,
    audit,
    load_profile,
    max_bins,
    momentary_ratio,
    simulate,
    usage_time,
)
from .offline import (
    OptSandwich,
    ceil_load_bound,
    dual_coloring,
    opt_nonrepacking,
    opt_reference,
    opt_repacking,
    opt_sandwich,
    waterfill,
)
from .engine import (
    Engine,
    EngineMetrics,
    EngineSummary,
    check_parity,
    load_checkpoint,
    open_trace,
    parity_suite,
    replay,
    save_checkpoint,
)
from .reductions import align_departures, is_aligned, partition_aligned
from .workloads import (
    aligned_random,
    batch_jobs,
    binary_input,
    bounded_parallelism,
    cloud_gaming,
    dump_jsonl,
    full_adversary_schedule,
    load_csv,
    load_jsonl,
    poisson_random,
    save_csv,
    sigma_star,
    staircase,
    uniform_random,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Item",
    "Instance",
    "Bin",
    "BinRecord",
    "LoadProfile",
    "load_profile",
    "PackingResult",
    "PlacementKernel",
    "IncrementalSimulation",
    "simulate",
    "audit",
    "ReproError",
    "usage_time",
    "max_bins",
    "momentary_ratio",
    # algorithms
    "OnlineAlgorithm",
    "AnyFit",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "NextFit",
    "RandomFit",
    "LeastExpansion",
    "ClassifyByDuration",
    "RenTang",
    "HybridAlgorithm",
    "CDFF",
    "StaticRowsCDFF",
    "duration_class",
    "item_type",
    # offline
    "OptSandwich",
    "opt_sandwich",
    "opt_repacking",
    "opt_nonrepacking",
    "opt_reference",
    "ceil_load_bound",
    "dual_coloring",
    "waterfill",
    # adversaries
    "AdaptiveAdversary",
    "AdversaryOutcome",
    "SqrtLogAdversary",
    "NonClairvoyantAdversary",
    "realized_instance",
    # reductions
    "align_departures",
    "is_aligned",
    "partition_aligned",
    # analysis
    "measure_ratio",
    "fit_growth",
    "sqrt_log_mu",
    "loglog_mu",
    # workloads
    "uniform_random",
    "poisson_random",
    "staircase",
    "binary_input",
    "aligned_random",
    "sigma_star",
    "full_adversary_schedule",
    "cloud_gaming",
    "batch_jobs",
    "bounded_parallelism",
    "save_csv",
    "load_csv",
    "dump_jsonl",
    "load_jsonl",
    # streaming engine
    "Engine",
    "EngineSummary",
    "EngineMetrics",
    "replay",
    "open_trace",
    "save_checkpoint",
    "load_checkpoint",
    "check_parity",
    "parity_suite",
]
