"""Observability for the streaming engine: counters, histograms, timings.

Since the unified observability layer landed, the primitives (Counter /
Gauge / Histogram / Timing) and the sinks live in :mod:`repro.obs` and
are re-exported here unchanged — every name this module has always
exported keeps working.  What remains engine-specific is
:class:`EngineMetrics`: the registry of per-event metrics the streaming
:class:`~repro.engine.loop.Engine` updates, which adds the wall-clock
quantities (placement/departure latency) the frontend-independent
:class:`~repro.obs.metrics.MetricsListener` deliberately excludes.

Everything here is dependency-free and bounded-memory: histograms have
fixed bucket edges, timings keep aggregates (count/total/min/max), and no
per-event history is retained, so the metrics layer never breaks the
engine's constant-memory contract.

Sinks are deliberately decoupled from the registry: an
:class:`EngineMetrics` holds only data (and therefore pickles inside
checkpoints), while sinks — which may own file handles — are passed to
:meth:`EngineMetrics.flush` at emission time.  Anything with an
``emit(snapshot: dict)`` method is a sink.

Snapshot layout contract: ``counters`` and ``histograms`` contain only
**deterministic** quantities (identical across reruns, across frontends,
and across ``--no-index``); everything wall-clock lives under
``timings`` (including the ``placement_latency`` histogram).  The
``--no-index`` CLI regression test relies on this split.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..obs.export import (
    CallbackSink,
    ConsoleSink,
    JSONLSink,
    JSONSink,
    MemorySink,
    MetricsSink,
)
from ..obs.metrics import (
    BINS_OPEN_EDGES,
    LATENCY_EDGES,
    LIFETIME_EDGES,
    OCCUPANCY_EDGES,
    RESIDUAL_EDGES,
    UTILIZATION_EDGES,
    Counter,
    Gauge,
    Histogram,
    Timing,
    merge_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timing",
    "EngineMetrics",
    "merge_metrics",
    "MetricsSink",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
]

# legacy aliases, kept for anything importing the private names
_OCCUPANCY_EDGES = OCCUPANCY_EDGES
_UTILIZATION_EDGES = UTILIZATION_EDGES
_LIFETIME_EDGES = LIFETIME_EDGES


class EngineMetrics:
    """Counters, histograms and timings an engine updates per event."""

    def __init__(self) -> None:
        self.events = Counter()
        self.arrivals = Counter()
        self.departures = Counter()
        self.bins_opened = Counter()
        self.bins_closed = Counter()
        self.checkpoints = Counter()
        self.bin_occupancy = Histogram(OCCUPANCY_EDGES)
        self.bin_utilization = Histogram(UTILIZATION_EDGES)
        self.bin_lifetime = Histogram(LIFETIME_EDGES)
        self.residual_at_placement = Histogram(RESIDUAL_EDGES)
        self.bins_open = Histogram(BINS_OPEN_EDGES)
        self.placement_latency = Histogram(LATENCY_EDGES)
        self.arrival_latency = Timing()
        self.departure_latency = Timing()

    # -- engine hooks --------------------------------------------------- #
    def on_arrival(
        self,
        latency_s: float,
        *,
        opened: bool,
        residual: Optional[float] = None,
        open_bins: Optional[int] = None,
    ) -> None:
        self.events.inc()
        self.arrivals.inc()
        if opened:
            self.bins_opened.inc()
        self.arrival_latency.observe(latency_s)
        self.placement_latency.observe(latency_s)
        if residual is not None:
            self.residual_at_placement.observe(residual)
        if open_bins is not None:
            self.bins_open.observe(open_bins)

    def on_departure(self, latency_s: float) -> None:
        self.events.inc()
        self.departures.inc()
        self.departure_latency.observe(latency_s)

    def on_bin_close(
        self, *, n_items: int, peak_load: float, capacity: float, usage: float
    ) -> None:
        self.bins_closed.inc()
        self.bin_occupancy.observe(n_items)
        self.bin_utilization.observe(peak_load / capacity if capacity else 0.0)
        self.bin_lifetime.observe(usage)

    def on_checkpoint(self) -> None:
        self.checkpoints.inc()

    # -- merge (per-shard aggregation) ---------------------------------- #
    def merge(self, other: "EngineMetrics") -> None:
        """Fold another registry's totals into this one, field by field.

        Exact for counters and histograms; timings combine count/total
        and keep the global min/max.  This is what
        :func:`repro.parallel.replay_sharded` uses to aggregate
        per-shard metrics into one fleet-wide registry.
        """
        for name, metric in vars(self).items():
            metric.merge(getattr(other, name))

    # -- export --------------------------------------------------------- #
    def snapshot(self, extra: Optional[dict] = None) -> dict:
        snap = {
            "counters": {
                "events": self.events.value,
                "arrivals": self.arrivals.value,
                "departures": self.departures.value,
                "bins_opened": self.bins_opened.value,
                "bins_closed": self.bins_closed.value,
                "checkpoints": self.checkpoints.value,
            },
            "histograms": {
                "bin_occupancy": self.bin_occupancy.to_dict(),
                "bin_utilization": self.bin_utilization.to_dict(),
                "bin_lifetime": self.bin_lifetime.to_dict(),
                "residual_at_placement": self.residual_at_placement.to_dict(),
                "bins_open": self.bins_open.to_dict(),
            },
            "timings": {
                "arrival_latency": self.arrival_latency.to_dict(),
                "departure_latency": self.departure_latency.to_dict(),
                "placement_latency": self.placement_latency.to_dict(),
            },
        }
        if extra:
            snap.update(extra)
        return snap

    def flush(
        self,
        sinks: Union[MetricsSink, Iterable[MetricsSink]],
        extra: Optional[dict] = None,
    ) -> dict:
        """Emit a snapshot to one or more sinks; returns the snapshot."""
        snap = self.snapshot(extra)
        if hasattr(sinks, "emit"):
            sinks = [sinks]  # type: ignore[list-item]
        for sink in sinks:  # type: ignore[union-attr]
            sink.emit(snap)
        return snap

