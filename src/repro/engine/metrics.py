"""Observability for the streaming engine: counters, histograms, timings.

Everything here is dependency-free and bounded-memory: histograms have
fixed bucket edges, timings keep aggregates (count/total/min/max), and no
per-event history is retained, so the metrics layer never breaks the
engine's constant-memory contract.

Sinks are deliberately decoupled from the registry: an
:class:`EngineMetrics` holds only data (and therefore pickles inside
checkpoints), while sinks — which may own file handles — are passed to
:meth:`EngineMetrics.flush` at emission time.  Anything with an
``emit(snapshot: dict)`` method is a sink.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Callable, Iterable, Optional, Protocol, Sequence, Union

__all__ = [
    "Counter",
    "Histogram",
    "Timing",
    "EngineMetrics",
    "MetricsSink",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> int:
        return self.value

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations per ``(lo, hi]`` bucket.

    ``edges`` are the inner boundaries; an observation lands in bucket
    ``i`` when ``edges[i-1] < x <= edges[i]``, with under/overflow buckets
    at the ends.  Memory is O(len(edges)) forever.
    """

    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(self, edges: Sequence[float]) -> None:
        self.edges = tuple(sorted(edges))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, x: float) -> None:
        lo, hi = 0, len(self.edges)
        while lo < hi:  # bisect_left over edges
            mid = (lo + hi) // 2
            if self.edges[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self.sum += x

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        buckets = {}
        prev = None
        for i, edge in enumerate(self.edges):
            label = f"<= {edge:g}" if prev is None else f"({prev:g}, {edge:g}]"
            buckets[label] = self.counts[i]
            prev = edge
        buckets[f"> {self.edges[-1]:g}"] = self.counts[-1]
        return {"total": self.total, "mean": self.mean, "buckets": buckets}

    def __getstate__(self):
        return (self.edges, self.counts, self.total, self.sum)

    def __setstate__(self, state):
        self.edges, self.counts, self.total, self.sum = state


class Timing:
    """Aggregate of elapsed-time observations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, dt: float) -> None:
        self.count += 1
        self.total += dt
        if dt < self.min:
            self.min = dt
        if dt > self.max:
            self.max = dt

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": 1e6 * self.total / self.count if self.count else 0.0,
            "min_us": 1e6 * self.min if self.count else 0.0,
            "max_us": 1e6 * self.max,
        }

    def __getstate__(self):
        return (self.count, self.total, self.min, self.max)

    def __setstate__(self, state):
        self.count, self.total, self.min, self.max = state


# ---------------------------------------------------------------------- #
# Sinks
# ---------------------------------------------------------------------- #
class MetricsSink(Protocol):
    """Anything that accepts metric snapshots."""

    def emit(self, snapshot: dict) -> None: ...


class ConsoleSink:
    """Pretty-print the snapshot to a stream (stderr by default)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream

    def emit(self, snapshot: dict) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        json.dump(snapshot, stream, indent=2, sort_keys=True)
        stream.write("\n")


class JSONSink:
    """Write the latest snapshot to ``path`` (overwriting)."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def emit(self, snapshot: dict) -> None:
        self.path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))


class JSONLSink:
    """Append one snapshot per line — for periodic mid-stream flushes."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def emit(self, snapshot: dict) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(snapshot, sort_keys=True) + "\n")


class CallbackSink:
    """Adapt a plain callable into a sink."""

    def __init__(self, fn: Callable[[dict], None]) -> None:
        self.fn = fn

    def emit(self, snapshot: dict) -> None:
        self.fn(snapshot)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
#: occupancy buckets: items ever packed into a bin over its lifetime
_OCCUPANCY_EDGES = (1, 2, 3, 5, 8, 13, 21, 34)
#: peak-load buckets as a fraction of capacity
_UTILIZATION_EDGES = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
#: bin lifetime buckets (usage time, powers of two)
_LIFETIME_EDGES = (0.5, 1, 2, 4, 8, 16, 32, 64, 128)


class EngineMetrics:
    """Counters, histograms and timings an engine updates per event."""

    def __init__(self) -> None:
        self.events = Counter()
        self.arrivals = Counter()
        self.departures = Counter()
        self.bins_opened = Counter()
        self.bins_closed = Counter()
        self.checkpoints = Counter()
        self.bin_occupancy = Histogram(_OCCUPANCY_EDGES)
        self.bin_utilization = Histogram(_UTILIZATION_EDGES)
        self.bin_lifetime = Histogram(_LIFETIME_EDGES)
        self.arrival_latency = Timing()
        self.departure_latency = Timing()

    # -- engine hooks --------------------------------------------------- #
    def on_arrival(self, latency_s: float, *, opened: bool) -> None:
        self.events.inc()
        self.arrivals.inc()
        if opened:
            self.bins_opened.inc()
        self.arrival_latency.observe(latency_s)

    def on_departure(self, latency_s: float) -> None:
        self.events.inc()
        self.departures.inc()
        self.departure_latency.observe(latency_s)

    def on_bin_close(
        self, *, n_items: int, peak_load: float, capacity: float, usage: float
    ) -> None:
        self.bins_closed.inc()
        self.bin_occupancy.observe(n_items)
        self.bin_utilization.observe(peak_load / capacity if capacity else 0.0)
        self.bin_lifetime.observe(usage)

    def on_checkpoint(self) -> None:
        self.checkpoints.inc()

    # -- export --------------------------------------------------------- #
    def snapshot(self, extra: Optional[dict] = None) -> dict:
        snap = {
            "counters": {
                "events": self.events.value,
                "arrivals": self.arrivals.value,
                "departures": self.departures.value,
                "bins_opened": self.bins_opened.value,
                "bins_closed": self.bins_closed.value,
                "checkpoints": self.checkpoints.value,
            },
            "histograms": {
                "bin_occupancy": self.bin_occupancy.to_dict(),
                "bin_utilization": self.bin_utilization.to_dict(),
                "bin_lifetime": self.bin_lifetime.to_dict(),
            },
            "timings": {
                "arrival_latency": self.arrival_latency.to_dict(),
                "departure_latency": self.departure_latency.to_dict(),
            },
        }
        if extra:
            snap.update(extra)
        return snap

    def flush(
        self,
        sinks: Union[MetricsSink, Iterable[MetricsSink]],
        extra: Optional[dict] = None,
    ) -> dict:
        """Emit a snapshot to one or more sinks; returns the snapshot."""
        snap = self.snapshot(extra)
        if hasattr(sinks, "emit"):
            sinks = [sinks]  # type: ignore[list-item]
        for sink in sinks:  # type: ignore[union-attr]
            sink.emit(snap)
        return snap
