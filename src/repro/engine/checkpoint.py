"""Snapshot/restore of a mid-stream engine (and its algorithm).

Format
------
A checkpoint is a single pickle blob wrapped in a small versioned
envelope (:class:`Checkpoint`).  The engine's
:class:`~repro.core.kernel.PlacementKernel` (which owns the clock, the
open bins, the departure heap, the counters, the adaptive-item set, the
bin index and record-mode history) and the algorithm object are pickled
**together** in one object graph: algorithms legitimately hold references
to live :class:`~repro.core.bins.Bin` objects (CDFF's rows, NextFit's
active bin), and a joint pickle is what preserves that identity —
pickling them separately would silently duplicate bins and desynchronise
the restored run.

What is captured: the kernel (with the algorithm inside it), the
:class:`~repro.engine.accounting.RunningAccounting`, the ``record`` flag
and optional metrics.  What is *not*: observers (may close over file
handles; re-``subscribe`` after restore) and the trace source — the
caller resumes the stream at item index ``checkpoint.arrivals``
(``repro-dbp replay --resume`` does exactly that, see the CLI).

Version history: **v1** pickled the pre-kernel engine's flat attribute
dict (PR 1); **v2** pickles the kernel-backed state; **v3** (current)
additionally lifts every :class:`~repro.core.item.Item` out of the
object graph into four struct-of-arrays columns stored next to the blob
(``Checkpoint.columns``), using the pickle ``persistent_id`` hook — the
blob shrinks to pure kernel/algorithm state and restoring rebuilds each
distinct item exactly once.  v2 files remain loadable (the columns field
is simply absent); v1 files are rejected with an explicit error rather
than a pickle/attribute failure.

Restoring never calls ``algorithm.reset()`` — the algorithm continues
from its pickled private state.  The parity guarantee carries over: a
run resumed from any mid-stream checkpoint finishes with a final cost
bit-identical to the uninterrupted run (pinned by the checkpoint tests).
"""

from __future__ import annotations

import io
import math
import pathlib
import pickle
from array import array
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.errors import CheckpointError, SimulationError
from ..core.item import Item, item_view
from .loop import Engine

__all__ = [
    "CHECKPOINT_VERSION",
    "COMPAT_VERSIONS",
    "Checkpoint",
    "CheckpointError",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 3
#: versions :meth:`Checkpoint.loads` accepts (v2 blobs carry no columns)
COMPAT_VERSIONS = (2, 3)

#: engine attributes captured in a snapshot, in a stable order
_STATE_ATTRS = (
    "_kernel",  # owns algorithm, bins, heap, counters, record history
    "record",
    "accounting",
    "metrics",
)

_NAN = math.nan


class _ColumnPickler(pickle.Pickler):
    """Extract every :class:`Item` into struct-of-arrays columns.

    ``persistent_id`` intercepts items during the joint engine pickle
    and replaces each one with a row number; equal rows deduplicate, so
    an item referenced from several places (a bin's contents *and* the
    record history, say) costs 28 bytes once.  Everything else pickles
    normally — bins, algorithms and the kernel keep their exact object
    graph, which is what preserves shared-bin identity on restore.
    """

    def __init__(self, buf, protocol: int) -> None:
        super().__init__(buf, protocol)
        self._rows: dict[tuple, int] = {}
        self.arrivals = array("d")
        self.departures = array("d")  # NaN encodes an unknown departure
        self.sizes = array("d")
        self.uids = array("q")

    def persistent_id(self, obj):
        if type(obj) is Item:
            key = (obj.arrival, obj.departure, obj.size, obj.uid)
            row = self._rows.get(key)
            if row is None:
                row = len(self._rows)
                self._rows[key] = row
                self.arrivals.append(obj.arrival)
                self.departures.append(
                    _NAN if obj.departure is None else obj.departure
                )
                self.sizes.append(obj.size)
                self.uids.append(obj.uid)
            return row
        return None

    def columns(self) -> Tuple[array, array, array, array]:
        return (self.arrivals, self.departures, self.sizes, self.uids)


class _ColumnUnpickler(pickle.Unpickler):
    """Rebuild extracted items from their columns, one object per row."""

    def __init__(self, buf, columns) -> None:
        super().__init__(buf)
        arrivals, departures, sizes, uids = columns
        self._items = [
            item_view(
                arrivals[k],
                None if departures[k] != departures[k] else departures[k],
                sizes[k],
                uids[k],
            )
            for k in range(len(arrivals))
        ]

    def persistent_load(self, pid):
        try:
            return self._items[pid]
        except (TypeError, IndexError) as exc:
            raise CheckpointError(
                f"checkpoint columns do not cover item row {pid!r}"
            ) from exc


@dataclass(frozen=True)
class Checkpoint:
    """A restorable point-in-time capture of an :class:`Engine`."""

    version: int
    arrivals: int  #: items fed so far — resume the source at this index
    time: float
    cost_so_far: float
    blob: bytes  #: joint pickle of engine state + algorithm
    #: v3 struct-of-arrays item columns (arrivals, departures, sizes,
    #: uids) referenced by the blob's persistent ids; ``None`` on v2
    columns: Optional[Tuple[array, array, array, array]] = field(
        default=None
    )

    # ------------------------------------------------------------------ #
    def dumps(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def loads(cls, data: bytes) -> "Checkpoint":
        try:
            ckpt = pickle.loads(data)
        except Exception as exc:
            # a truncated or corrupted file surfaces as any of half a
            # dozen pickle-layer exceptions; translate them all into one
            # diagnosable error instead of a bare UnpicklingError
            raise CheckpointError(
                "checkpoint data is unreadable (truncated or corrupted "
                f"file?): {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(ckpt, cls):
            raise CheckpointError(
                f"not a checkpoint payload: {type(ckpt).__name__}"
            )
        if ckpt.version not in COMPAT_VERSIONS:
            if ckpt.version == 1:
                raise CheckpointError(
                    "checkpoint format v1 (pre-kernel engine state) is no "
                    "longer loadable: this version stores the unified "
                    f"placement kernel as format v{CHECKPOINT_VERSION}. "
                    "Re-run the stream to write a fresh checkpoint."
                )
            raise CheckpointError(
                f"checkpoint version {ckpt.version} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return ckpt

    def save(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_bytes(self.dumps())

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Checkpoint":
        return cls.loads(pathlib.Path(path).read_bytes())


def snapshot(engine: Engine) -> Checkpoint:
    """Capture ``engine`` (including its algorithm) mid-stream.

    The pending-bin protocol guarantees snapshots only make sense between
    events; taking one during a ``place()`` call is a caller error.
    """
    if engine._kernel._pending_bin is not None:
        raise SimulationError("cannot snapshot mid-placement")
    state = {name: getattr(engine, name) for name in _STATE_ATTRS}
    buf = io.BytesIO()
    pickler = _ColumnPickler(buf, pickle.HIGHEST_PROTOCOL)
    pickler.dump(state)
    return Checkpoint(
        version=CHECKPOINT_VERSION,
        arrivals=engine.accounting.arrivals,
        time=engine.time,
        cost_so_far=engine.accounting.cost_at(engine.time),
        blob=buf.getvalue(),
        columns=pickler.columns(),
    )


def restore(checkpoint: Checkpoint) -> Engine:
    """Rebuild a live engine from a checkpoint.

    The result is fully independent of the engine that produced the
    snapshot (the blob round-trip deep-copies everything), with no
    observers, no tracer, no extra listeners, and whatever metrics were
    captured.  The kernel's listener and facade hooks (dropped at pickle
    time) are re-wired to the new engine; re-attach observability via
    :meth:`~repro.engine.loop.Engine.attach_tracer` /
    :meth:`~repro.engine.loop.Engine.attach_listener`.
    """
    # v3 blobs reference item rows via persistent ids; v2 blobs (from
    # before the columnar data plane) carry their items inline and
    # unpickle with the plain loader — the upgrade path is read-only
    columns = getattr(checkpoint, "columns", None)
    try:
        if columns is not None:
            state = _ColumnUnpickler(
                io.BytesIO(checkpoint.blob), columns
            ).load()
        else:
            state = pickle.loads(checkpoint.blob)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            "checkpoint blob is unreadable (truncated or corrupted "
            f"file?): {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(state, dict) or not set(_STATE_ATTRS) <= set(state):
        raise CheckpointError(
            "checkpoint blob does not contain engine state "
            f"(expected keys {_STATE_ATTRS})"
        )
    engine = object.__new__(Engine)
    for name, value in state.items():
        setattr(engine, name, value)
    engine._observers = []
    engine._last_opened = False
    engine._last_item = None
    engine.tracer = None
    engine.invariants = None  # monitors, like observers, are re-attached
    kernel = engine._kernel
    kernel._listener = engine
    kernel._facade = engine
    return engine


def save_checkpoint(engine: Engine, path: Union[str, pathlib.Path]) -> Checkpoint:
    """Snapshot ``engine`` to ``path``; returns the checkpoint."""
    ckpt = snapshot(engine)
    ckpt.save(path)
    if engine.metrics is not None:
        engine.metrics.on_checkpoint()
    return ckpt


def load_checkpoint(path: Union[str, pathlib.Path]) -> Engine:
    """Rebuild an engine from a checkpoint file."""
    return restore(Checkpoint.load(path))
