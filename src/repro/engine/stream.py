"""Trace sources: constant-memory item streams for the engine.

A *source* is just an iterable of :class:`~repro.core.item.Item` in
non-decreasing arrival order.  In-memory :class:`~repro.core.instance.
Instance` objects qualify directly; the helpers here add lazy file-backed
sources (JSONL/CSV), an order-validating wrapper, a k-way merge for
recombining shards, and format auto-detection for the CLI.

None of these materialise the trace: a 10⁶-item JSONL file streams
through :func:`iter_jsonl` with O(1) resident items, which is what lets
``repro-dbp replay`` keep peak RSS independent of trace length.
"""

from __future__ import annotations

import csv
import heapq
import pathlib
from typing import Iterable, Iterator, Tuple, Union

from ..core.errors import InvalidInstanceError, SimulationError
from ..core.instance import Instance
from ..core.item import Item
from ..core.store import ItemStore
from ..workloads.io import (
    CHUNK_ROWS,
    iter_csv_stores,
    iter_jsonl,
    iter_jsonl_stores,
)

__all__ = [
    "ItemSource",
    "iter_jsonl",
    "iter_csv",
    "iter_instance",
    "iter_tuples",
    "ordered",
    "merge",
    "open_trace",
    "open_trace_stores",
    "trace_format",
]

#: Anything the engine can drain: items in non-decreasing arrival order.
ItemSource = Iterable[Item]


def iter_instance(instance: Instance) -> Iterator[Item]:
    """An in-memory instance as a source (items already release-ordered)."""
    return iter(instance)


def iter_tuples(
    triples: Iterable[Tuple[float, float, float]]
) -> Iterator[Item]:
    """Lazily adapt ``(arrival, departure, size)`` triples into items.

    Unlike :meth:`Instance.from_tuples` this never sorts or stores the
    input — the triples must already be arrival-ordered.
    """
    for uid, (a, d, s) in enumerate(triples):
        yield Item(a, d, s, uid=uid)


def iter_csv(path: Union[str, pathlib.Path]) -> Iterator[Item]:
    """Stream items from a CSV trace (same schema as :func:`load_csv`).

    Lazy row-by-row parse; rows must already be arrival-sorted (the
    engine rejects regressions via :func:`ordered` semantics anyway).
    """
    with pathlib.Path(path).open(newline="") as fh:
        reader = csv.reader(fh)
        header = None
        uid = 0
        for lineno, row in enumerate(reader, start=1):
            if not row:
                continue
            if header is None:
                header = [h.strip().lower() for h in row]
                if header != ["arrival", "departure", "size"]:
                    raise InvalidInstanceError(
                        f"expected header ['arrival', 'departure', 'size'], "
                        f"got {row!r}"
                    )
                continue
            if len(row) != 3:
                raise InvalidInstanceError(
                    f"line {lineno}: expected 3 columns, got {len(row)}"
                )
            try:
                item = Item(
                    float(row[0]), float(row[1]), float(row[2]), uid=uid
                )
            except ValueError as exc:
                raise InvalidInstanceError(f"line {lineno}: {exc}") from exc
            yield item
            uid += 1


def ordered(source: ItemSource) -> Iterator[Item]:
    """Pass items through, raising on any arrival-order regression.

    The engine performs the same check itself; this wrapper is for
    validating a source *before* feeding it somewhere less forgiving.
    """
    last = None
    for item in source:
        if last is not None and item.arrival < last:
            raise SimulationError(
                f"trace is not arrival-ordered: {item} after t={last:g}"
            )
        last = item.arrival
        yield item


def merge(*sources: ItemSource) -> Iterator[Item]:
    """K-way merge of arrival-ordered sources into one ordered stream.

    Uids are reassigned sequentially in merged order (sources typically
    carry clashing uids).  Ties keep source priority (earlier argument
    first), matching the stable-sort convention of :class:`Instance`.
    """
    def _keyed(k: int, src: ItemSource):
        for n, item in enumerate(src):
            yield (item.arrival, k, n), item

    streams = [_keyed(k, src) for k, src in enumerate(sources)]
    for uid, (_, item) in enumerate(heapq.merge(*streams)):
        yield Item(item.arrival, item.departure, item.size, uid=uid)


def trace_format(path: Union[str, pathlib.Path]) -> str:
    """Guess ``'jsonl'`` or ``'csv'`` from the file extension."""
    suffix = pathlib.Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    if suffix in (".csv", ".tsv"):
        return "csv"
    raise InvalidInstanceError(
        f"cannot infer trace format from {path!r}; "
        "pass --format jsonl|csv explicitly"
    )


def open_trace(
    path: Union[str, pathlib.Path], *, format: str = "auto"
) -> Iterator[Item]:
    """A lazy item source for a trace file (JSONL or CSV)."""
    fmt = trace_format(path) if format == "auto" else format
    if fmt == "jsonl":
        return iter_jsonl(path)
    if fmt == "csv":
        return iter_csv(path)
    raise InvalidInstanceError(f"unknown trace format {format!r}")


def open_trace_stores(
    path: Union[str, pathlib.Path],
    *,
    format: str = "auto",
    chunk_rows: int = CHUNK_ROWS,
) -> Iterator[ItemStore]:
    """A trace file as bounded columnar chunks (the fast replay path).

    Yields root :class:`~repro.core.store.ItemStore` chunks of at most
    ``chunk_rows`` rows with sequential uids, exactly the items
    :func:`open_trace` would yield — but decoded straight into columns,
    so the engine can drain them via
    :meth:`~repro.engine.loop.Engine.feed_store` without boxing one
    :class:`Item` per arrival.
    """
    fmt = trace_format(path) if format == "auto" else format
    if fmt == "jsonl":
        return iter_jsonl_stores(path, chunk_rows=chunk_rows)
    if fmt == "csv":
        return iter_csv_stores(path, chunk_rows=chunk_rows)
    raise InvalidInstanceError(f"unknown trace format {format!r}")
