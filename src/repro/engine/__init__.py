"""repro.engine — the streaming, event-driven packing engine.

Where :func:`repro.core.simulation.simulate` needs the whole instance in
memory and keeps full history, this subsystem replays traces of any
length through the shared :class:`~repro.core.kernel.PlacementKernel`
with **incremental accounting** (cost and ``ON_t`` queryable mid-stream
in O(1)), **constant memory** (peak RSS independent of trace length),
**checkpoint/restore**, and an **observability layer**.  Batch and
stream run the *same* kernel, so they agree bit-for-bit by construction
(:mod:`repro.engine.parity` keeps the regression guard).

Quickstart::

    from repro import FirstFit
    from repro.engine import Engine, iter_jsonl

    engine = Engine(FirstFit())
    summary = engine.run(iter_jsonl("trace.jsonl"))
    print(summary.cost, summary.max_open)

or from the shell::

    repro-dbp replay trace.jsonl --algo HybridAlgorithm --metrics m.json
"""

from .accounting import RunningAccounting
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from .events import ArrivalEvent, CheckpointEvent, DepartureEvent, Event, EventKind
from .loop import Engine, EngineSummary, replay
from .metrics import (
    CallbackSink,
    ConsoleSink,
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    JSONLSink,
    JSONSink,
    MemorySink,
    MetricsSink,
    Timing,
    merge_metrics,
)
from .parity import ParityReport, check_parity, default_parity_cells, parity_suite
from .stream import (
    ItemSource,
    iter_csv,
    iter_instance,
    iter_jsonl,
    iter_tuples,
    merge,
    open_trace,
    open_trace_stores,
    ordered,
    trace_format,
)

__all__ = [
    "Engine",
    "EngineSummary",
    "replay",
    "RunningAccounting",
    "Event",
    "EventKind",
    "ArrivalEvent",
    "DepartureEvent",
    "CheckpointEvent",
    "Checkpoint",
    "CheckpointError",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
    "EngineMetrics",
    "merge_metrics",
    "MetricsSink",
    "Counter",
    "Gauge",
    "Histogram",
    "Timing",
    "ConsoleSink",
    "JSONSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "ParityReport",
    "check_parity",
    "parity_suite",
    "default_parity_cells",
    "ItemSource",
    "iter_instance",
    "iter_jsonl",
    "iter_csv",
    "iter_tuples",
    "ordered",
    "merge",
    "open_trace",
    "open_trace_stores",
    "trace_format",
]
