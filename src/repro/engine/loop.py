"""The streaming packing engine.

:class:`Engine` merges an arrival stream (pulled lazily from any
:data:`~repro.engine.stream.ItemSource`) with the kernel's departure heap
and drives an **unmodified** :class:`~repro.algorithms.base.
OnlineAlgorithm` over the combined event sequence.  It is a thin adapter
over the shared :class:`~repro.core.kernel.PlacementKernel` — the same
kernel the batch ``simulate()`` runs on — so event semantics (departures
before arrivals at equal times, release-order tie-breaks, bins close the
moment they empty, clairvoyance enforced by masking) are *identical by
construction*, not by mirroring.  What the engine layers on top:

- **Incremental accounting.**  The engine registers as the kernel's
  listener and folds every event into
  :class:`~repro.engine.accounting.RunningAccounting` in O(1) per event
  (O(log n) including the heap), so ``ON_t``, cost, load and utilisation
  are queryable at any moment mid-stream — no whole-instance
  recomputation, no stored history.
- **Constant memory.**  By default nothing proportional to the trace is
  retained: resident state is the open bins and the pending-departure
  heap.  Pass ``record=True`` to additionally keep items, records and the
  assignment so :meth:`result` can produce a full
  :class:`~repro.core.result.PackingResult` (the parity harness uses
  this; it restores the batch path's memory profile).
- **Observability.**  Optional per-event metrics
  (:class:`~repro.engine.metrics.EngineMetrics`) and observer callbacks
  receiving typed :class:`~repro.engine.events.Event` records.

Per-bin usage is accumulated in close order inside the kernel, so the
final cost is bit-for-bit equal to ``simulate()``'s (the regression guard
in ``repro.engine.parity`` checks exactly this).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.bins import Bin, BinRecord
from ..core.instance import Instance
from ..core.item import Item
from ..core.kernel import KernelListener, PlacementKernel
from ..core.result import PackingResult
from ..core.store import ItemStore
from ..obs.trace import Tracer, TracingListener
from .accounting import RunningAccounting
from .events import ArrivalEvent, DepartureEvent, Event
from .metrics import EngineMetrics
from .stream import ItemSource

__all__ = ["Engine", "EngineSummary", "replay"]


@dataclass(frozen=True, slots=True)
class EngineSummary:
    """The final accounting of one streamed run (JSON-friendly)."""

    algorithm: str
    capacity: float
    items: int
    cost: float
    bins_opened: int
    bins_closed: int
    max_open: int
    peak_load: float
    util_area: float
    final_time: Optional[float]

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "capacity": self.capacity,
            "items": self.items,
            "cost": self.cost,
            "bins_opened": self.bins_opened,
            "bins_closed": self.bins_closed,
            "max_open": self.max_open,
            "peak_load": self.peak_load,
            "util_area": self.util_area,
            "final_time": self.final_time,
        }


class Engine:
    """Event-driven streaming replacement for batch ``simulate()``.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.algorithms.base.OnlineAlgorithm`; it is
        ``reset()`` once at construction (but *not* on checkpoint
        restore).
    capacity:
        Bin capacity, as in the batch simulator.
    metrics:
        Optional :class:`~repro.engine.metrics.EngineMetrics`; updated
        per event when present, at the price of two clock reads per
        event.
    record:
        Keep full history (items, bin records, assignment) so
        :meth:`result` works.  Off by default — on, memory grows with
        the trace exactly like the batch path.
    record_profile:
        Keep open-count deltas so ``accounting.open_profile()`` can
        rebuild ``ON_t`` afterwards (also grows with the trace).
    indexed:
        Maintain the kernel's O(log n) open-bin index (default).  Pass
        ``False`` for plain linear-scan placement queries.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given (and
        enabled), a :class:`~repro.obs.trace.TracingListener` is fanned
        in next to the engine's own kernel listener so every kernel
        event lands in the ring buffer.  A tracer that is *disabled at
        construction* is not attached at all — tracing off costs
        nothing (the contract ``benchmarks/bench_obs.py`` freezes).
    listeners:
        Extra :class:`~repro.core.kernel.KernelListener` objects to fan
        kernel events out to (e.g. the deterministic
        :class:`~repro.obs.metrics.MetricsListener`).  Like observers,
        they are not checkpointed — re-attach after a restore via
        :meth:`attach_listener`.
    invariants:
        Optional :class:`~repro.obs.invariants.InvariantMonitor`; it is
        attached as a kernel listener (the kernel binds it for the cost
        identity cross-check), inherits the engine's tracer when it has
        none of its own, and is finalized by :meth:`finish` so the
        end-of-run bound checks (``span ≤ cost``, Table-1 ratios) run
        without the caller having to remember to.
    """

    def __init__(
        self,
        algorithm,
        *,
        capacity: float = 1.0,
        metrics: Optional[EngineMetrics] = None,
        record: bool = False,
        record_profile: bool = False,
        indexed: bool = True,
        tracer: Optional[Tracer] = None,
        listeners: tuple = (),
        invariants=None,
    ) -> None:
        self.metrics = metrics
        self.record = record
        self.tracer = tracer
        self.invariants = invariants
        self.accounting = RunningAccounting(record_profile=record_profile)
        self._observers: List[Callable[[Event], None]] = []
        self._last_opened = False
        self._last_item: Optional[Item] = None
        extra: List[KernelListener] = list(listeners)
        if tracer is not None and tracer.enabled:
            extra.append(TracingListener(tracer))
        if invariants is not None:
            if getattr(invariants, "tracer", None) is None:
                invariants.tracer = tracer
            extra.append(invariants)
        self._kernel = PlacementKernel(
            algorithm,
            capacity=capacity,
            record=record,
            indexed=indexed,
            listener=self if not extra else [self, *extra],
            facade=self,
        )

    # ------------------------------------------------------------------ #
    # The `sim` facade algorithms see (SimulationView protocol)
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self):
        return self._kernel.algorithm

    @property
    def capacity(self) -> float:
        return self._kernel.capacity

    @property
    def time(self) -> float:
        return self._kernel.time

    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        return self._kernel.open_bins

    @property
    def open_bin_count(self) -> int:
        return self._kernel.open_bin_count

    @property
    def cost_so_far(self) -> float:
        """Closed usage plus open bins' usage up to the current clock."""
        return self.accounting.cost_at(self._kernel.time)

    @property
    def indexed(self) -> bool:
        """Whether the kernel maintains its O(log n) open-bin index."""
        return self._kernel.indexed

    def set_indexed(self, flag: bool) -> None:
        """Switch the kernel's open-bin index on or off (see the kernel)."""
        self._kernel.set_indexed(flag)

    def is_open(self, uid: int) -> bool:
        """Whether bin ``uid`` is currently open (O(1))."""
        return self._kernel.is_open(uid)

    def open_bin(self, tag=None) -> Bin:
        """Called by the algorithm inside ``place()`` to open a fresh bin."""
        return self._kernel.open_bin(tag)

    # indexed candidate queries (delegated to the kernel's bin index)
    def first_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.first_fit(item)

    def best_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.best_fit(item)

    def worst_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.worst_fit(item)

    def last_fit(self, item: Item) -> Optional[Bin]:
        return self._kernel.last_fit(item)

    def fitting_bins(self, item: Item) -> list[Bin]:
        return self._kernel.fitting_bins(item)

    # record-mode history lives in the kernel; exposed for tests/tools
    @property
    def _items(self) -> List[Item]:
        return self._kernel._items

    @property
    def _records(self) -> List[BinRecord]:
        return self._kernel._records

    @property
    def _assignment(self) -> dict[int, int]:
        return self._kernel._assignment

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def subscribe(self, observer: Callable[[Event], None]) -> None:
        """Register a callback invoked with every :class:`Event`.

        Observers are *not* checkpointed (they may close over sockets or
        file handles); re-subscribe after a restore.
        """
        self._observers.append(observer)

    def _emit(self, event: Event) -> None:
        for obs in self._observers:
            obs(event)

    def attach_listener(self, listener: KernelListener) -> None:
        """Fan kernel events out to one more listener, mid-run.

        Listeners (like observers) are not checkpointed; call this again
        after a restore.
        """
        self._kernel.add_listener(listener)

    def attach_tracer(self, tracer: Tracer) -> None:
        """Attach an (enabled) tracer to an already-built engine.

        The CLI resume path uses this: ``load_checkpoint`` rebuilds the
        engine without listeners, then ``--trace`` re-wires tracing.
        """
        self.tracer = tracer
        if tracer.enabled:
            self.attach_listener(TracingListener(tracer))

    # ------------------------------------------------------------------ #
    # Kernel listener callbacks: fold events into accounting/metrics
    # ------------------------------------------------------------------ #
    @property
    def timed(self) -> bool:
        """Whether the kernel should time departures (for metrics)."""
        return self.metrics is not None

    def on_advance(self, t: float) -> None:
        self.accounting.advance(t)

    def on_open(self, bin_: Bin) -> None:
        self.accounting.on_open(bin_.opened_at)

    def on_arrival(self, item: Item, bin_: Bin, opened: bool) -> None:
        self.accounting.on_arrival(item.size)
        self._last_opened = opened
        self._last_item = item

    def on_departure(
        self,
        uid: int,
        removed: Item,
        bin_: Bin,
        t: float,
        closed: bool,
        elapsed: float,
    ) -> None:
        self.accounting.on_departure(
            removed.size, any_active=self._kernel.has_active
        )
        if self.metrics is not None:
            self.metrics.on_departure(elapsed)
        if self._observers:
            self._emit(
                DepartureEvent(
                    time=t,
                    seq=self.accounting.departures,
                    uid=uid,
                    bin_uid=bin_.uid,
                    size=removed.size,
                    closed=closed,
                )
            )

    def on_close(
        self, bin_: Bin, t: float, usage: float, peak: float, n_items: int
    ) -> None:
        self.accounting.on_close(bin_.opened_at, t)
        if self.metrics is not None:
            self.metrics.on_bin_close(
                n_items=n_items,
                peak_load=peak,
                capacity=self.capacity,
                usage=usage,
            )

    # ------------------------------------------------------------------ #
    # Driving API (delegates to the kernel)
    # ------------------------------------------------------------------ #
    def feed(self, item: Item) -> Bin:
        """Release one item to the algorithm; returns the bin it chose.

        Processes all scheduled departures up to the item's arrival
        first — the kernel's semantics, shared with the batch simulator.
        """
        t0 = _time.perf_counter() if self.metrics is not None else 0.0
        self._last_opened = False
        bin_ = self._kernel.release(item)
        if self.metrics is not None:
            capacity = bin_.capacity
            self.metrics.on_arrival(
                _time.perf_counter() - t0,
                opened=self._last_opened,
                residual=bin_.residual() / capacity if capacity else 0.0,
                open_bins=self._kernel.open_bin_count,
            )
        if self._observers:
            self._emit(
                ArrivalEvent(
                    time=self._kernel.time,
                    seq=self.accounting.arrivals,
                    item=item,
                    bin_uid=bin_.uid,
                    opened=self._last_opened,
                )
            )
        return bin_

    def feed_values(
        self,
        arrival: float,
        departure: Optional[float],
        size: float,
        uid: int,
    ) -> Bin:
        """Columnar :meth:`feed`: one arrival from plain scalars.

        Identical semantics and accounting; the kernel builds the single
        boxed view itself (store rows are pre-validated), so the serve
        shards and the chunked replay path never allocate caller-side
        :class:`Item` objects.
        """
        t0 = _time.perf_counter() if self.metrics is not None else 0.0
        self._last_opened = False
        bin_ = self._kernel.release_values(arrival, departure, size, uid)
        if self.metrics is not None:
            capacity = bin_.capacity
            self.metrics.on_arrival(
                _time.perf_counter() - t0,
                opened=self._last_opened,
                residual=bin_.residual() / capacity if capacity else 0.0,
                open_bins=self._kernel.open_bin_count,
            )
        if self._observers:
            self._emit(
                ArrivalEvent(
                    time=self._kernel.time,
                    seq=self.accounting.arrivals,
                    item=self._last_item,
                    bin_uid=bin_.uid,
                    opened=self._last_opened,
                )
            )
        return bin_

    def feed_row(self, store: ItemStore, i: int) -> Bin:
        """Feed row ``i`` of an :class:`ItemStore` (window-relative)."""
        arrival, departure, size, uid = store.row(i)
        return self.feed_values(arrival, departure, size, uid)

    def feed_store(
        self, store: ItemStore, start: int = 0, stop: Optional[int] = None
    ) -> int:
        """Feed rows ``[start, stop)`` of an :class:`ItemStore` in order.

        Returns the number of rows fed.  The per-arrival work is exactly
        :meth:`feed_values`, looped over the store's raw columns.
        """
        arr, dep, siz, uids, w0, w1 = store.columns()
        lo = w0 + start
        hi = w1 if stop is None else w0 + stop
        feed = self.feed_values
        for j in range(lo, hi):
            d = dep[j]
            feed(arr[j], d if d == d else None, siz[j], uids[j])
        return hi - lo

    def depart(self, uid: int, time: float) -> None:
        """Force an adaptive item (unknown departure) out at ``time``."""
        self._kernel.depart(uid, time)

    def advance_to(self, time: float) -> None:
        """Move the clock to ``time``, processing due departures."""
        self._kernel.advance_to(time)

    def run(self, source: ItemSource) -> EngineSummary:
        """Drain an entire source, then :meth:`finish`.

        ``source`` may be an iterable of :class:`Item` objects (the
        classic streaming path), an :class:`~repro.core.instance.
        Instance` or :class:`~repro.core.store.ItemStore` (driven
        columnwise, no boxed iteration), or an iterable of
        :class:`ItemStore` chunks as produced by
        :func:`repro.workloads.io.iter_jsonl_stores`.
        """
        if isinstance(source, Instance):
            self.feed_store(source.store)
            return self.finish()
        if isinstance(source, ItemStore):
            self.feed_store(source)
            return self.finish()
        feed = self.feed
        feed_store = self.feed_store
        for obj in source:
            if type(obj) is ItemStore:
                feed_store(obj)
            else:
                feed(obj)
        return self.finish()

    def finish(self) -> EngineSummary:
        """Process every remaining departure and return the summary.

        Also finalizes an attached invariant monitor, so the end-of-run
        theory checks run exactly once per completed stream.
        """
        self._kernel.drain()
        if self.invariants is not None:
            self.invariants.finalize()
        return self.summary()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def summary(self) -> EngineSummary:
        acc = self.accounting
        kernel = self._kernel
        return EngineSummary(
            algorithm=getattr(
                kernel.algorithm, "name", type(kernel.algorithm).__name__
            ),
            capacity=kernel.capacity,
            items=acc.arrivals,
            cost=acc.cost_at(kernel.time),
            bins_opened=acc.bins_opened,
            bins_closed=acc.bins_closed,
            max_open=acc.max_open,
            peak_load=acc.peak_load,
            util_area=acc.util_area,
            final_time=kernel.time if math.isfinite(kernel.time) else None,
        )

    def result(self) -> PackingResult:
        """The full :class:`PackingResult` (requires ``record=True``)."""
        return self._kernel.result()

    def __repr__(self) -> str:
        kernel = self._kernel
        name = getattr(
            kernel.algorithm, "name", type(kernel.algorithm).__name__
        )
        return (
            f"Engine(algorithm={name!r}, t={kernel.time:g}, "
            f"open={kernel.open_bin_count}, "
            f"cost={self.accounting.cost_at(kernel.time):.6g})"
        )


def replay(
    algorithm,
    source: ItemSource,
    *,
    capacity: float = 1.0,
    metrics: Optional[EngineMetrics] = None,
    tracer: Optional[Tracer] = None,
) -> EngineSummary:
    """One-shot convenience: stream ``source`` through a fresh engine."""
    return Engine(
        algorithm, capacity=capacity, metrics=metrics, tracer=tracer
    ).run(source)
