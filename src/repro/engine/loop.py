"""The streaming packing engine.

:class:`Engine` merges an arrival stream (pulled lazily from any
:data:`~repro.engine.stream.ItemSource`) with its internal departure heap
and drives an **unmodified** :class:`~repro.algorithms.base.
OnlineAlgorithm` over the combined event sequence.  It is a drop-in
``sim`` for algorithms — it exposes the same ``open_bins`` /
``open_bin(tag)`` / ``open_bin_count`` / ``cost_so_far`` surface as
:class:`~repro.core.simulation.IncrementalSimulation` — but differs in
two ways that matter at production scale:

- **Incremental accounting.**  Cost, open-bin count, current load and the
  rest of :class:`~repro.engine.accounting.RunningAccounting` are updated
  in O(1) per event (O(log n) including the heap), so ``ON_t`` and cost
  are queryable at any moment mid-stream — no whole-instance
  recomputation, no stored history.
- **Constant memory.**  By default nothing proportional to the trace is
  retained: resident state is the open bins and the pending-departure
  heap.  Pass ``record=True`` to additionally keep items, records and the
  assignment so :meth:`result` can produce a full
  :class:`~repro.core.result.PackingResult` (the parity harness uses
  this; it restores the batch path's memory profile).

Event semantics are *identical* to the batch simulator — departures
before arrivals at equal times, release-order tie-breaks, bins close the
moment they empty, clairvoyance enforced by masking — and per-bin usage
is accumulated in close order, so the final cost is bit-for-bit equal to
``simulate()``'s (see ``repro.engine.parity``).
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.bins import Bin, BinRecord
from ..core.errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from ..core.item import Item
from ..core.result import PackingResult
from .accounting import RunningAccounting
from .events import ArrivalEvent, DepartureEvent, Event
from .metrics import EngineMetrics
from .stream import ItemSource

__all__ = ["Engine", "EngineSummary", "replay"]


@dataclass(frozen=True, slots=True)
class EngineSummary:
    """The final accounting of one streamed run (JSON-friendly)."""

    algorithm: str
    capacity: float
    items: int
    cost: float
    bins_opened: int
    bins_closed: int
    max_open: int
    peak_load: float
    util_area: float
    final_time: Optional[float]

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "capacity": self.capacity,
            "items": self.items,
            "cost": self.cost,
            "bins_opened": self.bins_opened,
            "bins_closed": self.bins_closed,
            "max_open": self.max_open,
            "peak_load": self.peak_load,
            "util_area": self.util_area,
            "final_time": self.final_time,
        }


class Engine:
    """Event-driven streaming replacement for batch ``simulate()``.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.algorithms.base.OnlineAlgorithm`; it is
        ``reset()`` once at construction (but *not* on checkpoint
        restore).
    capacity:
        Bin capacity, as in the batch simulator.
    metrics:
        Optional :class:`~repro.engine.metrics.EngineMetrics`; updated
        per event when present, at the price of two clock reads per
        event.
    record:
        Keep full history (items, bin records, assignment) so
        :meth:`result` works.  Off by default — on, memory grows with
        the trace exactly like the batch path.
    record_profile:
        Keep open-count deltas so ``accounting.open_profile()`` can
        rebuild ``ON_t`` afterwards (also grows with the trace).
    """

    def __init__(
        self,
        algorithm,
        *,
        capacity: float = 1.0,
        metrics: Optional[EngineMetrics] = None,
        record: bool = False,
        record_profile: bool = False,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.algorithm = algorithm
        self.capacity = capacity
        self.metrics = metrics
        self.record = record
        self.time = -math.inf
        self.accounting = RunningAccounting(record_profile=record_profile)
        self._next_bin_uid = 0
        self._next_seq = 0
        self._open: dict[int, Bin] = {}
        self._departures: List[tuple[float, int, int]] = []  # (t, seq, uid)
        self._item_bin: dict[int, Bin] = {}
        self._peak: dict[int, float] = {}  # open-bin uid -> peak load
        self._bin_count: dict[int, int] = {}  # open-bin uid -> items ever
        self._adaptive: set[int] = set()  # uids with unknown departure
        self._pending_bin: Optional[Bin] = None
        self._observers: List[Callable[[Event], None]] = []
        # record-mode history (empty unless record=True)
        self._items: List[Item] = []
        self._records: List[BinRecord] = []
        self._assignment: dict[int, int] = {}
        self._bin_items: dict[int, list[int]] = {}
        self._departed_at: dict[int, float] = {}
        algorithm.reset()

    # ------------------------------------------------------------------ #
    # The `sim` facade algorithms see (mirrors IncrementalSimulation)
    # ------------------------------------------------------------------ #
    @property
    def open_bins(self) -> tuple[Bin, ...]:
        """Currently open bins, oldest first (first-fit order)."""
        return tuple(self._open.values())

    @property
    def open_bin_count(self) -> int:
        return len(self._open)

    @property
    def cost_so_far(self) -> float:
        """Closed usage plus open bins' usage up to the current clock."""
        return self.accounting.cost_at(self.time)

    def open_bin(self, tag=None) -> Bin:
        """Called by the algorithm inside ``place()`` to open a fresh bin."""
        if self._pending_bin is not None:
            raise PackingError("place() may open at most one new bin")
        b = Bin(self._next_bin_uid, self.capacity, self.time, tag)
        self._pending_bin = b
        return b

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def subscribe(self, observer: Callable[[Event], None]) -> None:
        """Register a callback invoked with every :class:`Event`.

        Observers are *not* checkpointed (they may close over sockets or
        file handles); re-subscribe after a restore.
        """
        self._observers.append(observer)

    def _emit(self, event: Event) -> None:
        for obs in self._observers:
            obs(event)

    # ------------------------------------------------------------------ #
    # Driving API
    # ------------------------------------------------------------------ #
    def feed(self, item: Item) -> Bin:
        """Release one item to the algorithm; returns the bin it chose.

        Processes all scheduled departures up to the item's arrival
        first, exactly like the batch simulator.
        """
        t0 = _time.perf_counter() if self.metrics is not None else 0.0
        if item.arrival < self.time:
            raise SimulationError(
                f"items must be streamed in arrival order: {item} arrives at "
                f"{item.arrival} but the clock is at {self.time}"
            )
        self._advance(item.arrival)
        if item.departure is None and getattr(
            self.algorithm, "clairvoyant", True
        ):
            raise ClairvoyanceError(
                f"clairvoyant algorithm {self.algorithm!r} received an item "
                "with unknown departure"
            )
        masked = not getattr(self.algorithm, "clairvoyant", True)
        view = item.masked() if masked else item
        chosen = self.algorithm.place(view, self)
        opened = self._pending_bin is not None
        bin_ = self._commit(item, view, chosen)
        if item.departure is not None:
            heapq.heappush(
                self._departures, (item.departure, self._next_seq, item.uid)
            )
            self._next_seq += 1
        else:
            self._adaptive.add(item.uid)
        if self.metrics is not None:
            self.metrics.on_arrival(
                _time.perf_counter() - t0, opened=opened
            )
        if self._observers:
            self._emit(
                ArrivalEvent(
                    time=self.time,
                    seq=self.accounting.arrivals,
                    item=item,
                    bin_uid=bin_.uid,
                    opened=opened,
                )
            )
        return bin_

    def depart(self, uid: int, time: float) -> None:
        """Force an adaptive item (unknown departure) out at ``time``."""
        if time < self.time:
            raise SimulationError(
                f"departure at {time} is before the clock ({self.time})"
            )
        if uid not in self._item_bin:
            raise PackingError(f"item {uid} is not active")
        if uid not in self._adaptive:
            raise SimulationError(
                f"item {uid} has a scheduled departure; only adaptive items "
                "may be departed explicitly"
            )
        self._advance(time)
        self._adaptive.discard(uid)
        self._do_departure(uid, time)

    def advance_to(self, time: float) -> None:
        """Move the clock to ``time``, processing due departures."""
        if time < self.time:
            raise SimulationError("time may not move backwards")
        self._advance(time)

    def run(self, source: ItemSource) -> EngineSummary:
        """Drain an entire source, then :meth:`finish`."""
        feed = self.feed
        for item in source:
            feed(item)
        return self.finish()

    def finish(self) -> EngineSummary:
        """Process every remaining departure and return the summary."""
        while self._departures:
            t, _, _ = self._departures[0]
            self._advance(t)
        if self._item_bin:
            alive = list(self._open.values())
            raise SimulationError(
                f"stream finished with items still active in bins {alive}; "
                "adaptive items must be departed explicitly"
            )
        return self.summary()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def summary(self) -> EngineSummary:
        acc = self.accounting
        return EngineSummary(
            algorithm=getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            ),
            capacity=self.capacity,
            items=acc.arrivals,
            cost=acc.cost_at(self.time),
            bins_opened=acc.bins_opened,
            bins_closed=acc.bins_closed,
            max_open=acc.max_open,
            peak_load=acc.peak_load,
            util_area=acc.util_area,
            final_time=self.time if math.isfinite(self.time) else None,
        )

    def result(self) -> PackingResult:
        """The full :class:`PackingResult` (requires ``record=True``)."""
        if not self.record:
            raise SimulationError(
                "result() needs Engine(record=True); the constant-memory "
                "engine keeps no per-item history — use summary() instead"
            )
        if self._item_bin:
            raise SimulationError("result() before the stream is drained")
        return PackingResult(
            algorithm=getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            ),
            items=tuple(self._items),
            assignment=dict(self._assignment),
            bins=tuple(self._records),
            departed_at=dict(self._departed_at),
            capacity=self.capacity,
        )

    # ------------------------------------------------------------------ #
    # Internals (mirroring IncrementalSimulation semantics exactly)
    # ------------------------------------------------------------------ #
    def _advance(self, until: float) -> None:
        while self._departures:
            t, _, uid = self._departures[0]
            if t > until:
                break
            heapq.heappop(self._departures)
            self._do_departure(uid, t)
        if until > self.time:
            self.accounting.advance(until)
            self.time = until

    def _do_departure(self, uid: int, t: float) -> None:
        t0 = _time.perf_counter() if self.metrics is not None else 0.0
        if t > self.time:
            self.accounting.advance(t)
            self.time = t
        bin_ = self._item_bin.pop(uid, None)
        if bin_ is None:
            return  # duplicate schedule; ignore (matches batch simulator)
        removed = bin_._remove(uid)
        self.accounting.on_departure(
            removed.size, any_active=bool(self._item_bin)
        )
        if self.record:
            self._departed_at[uid] = t
        hook = getattr(self.algorithm, "notify_departure", None)
        if hook is not None:
            hook(removed, bin_, self)
        closed = bin_.n_items == 0
        if closed:
            self._close(bin_, t)
        if self.metrics is not None:
            self.metrics.on_departure(_time.perf_counter() - t0)
        if self._observers:
            self._emit(
                DepartureEvent(
                    time=t,
                    seq=self.accounting.departures,
                    uid=uid,
                    bin_uid=bin_.uid,
                    size=removed.size,
                    closed=closed,
                )
            )

    def _close(self, bin_: Bin, t: float) -> None:
        del self._open[bin_.uid]
        peak = self._peak.pop(bin_.uid, 0.0)
        n_items = self._bin_count.pop(bin_.uid, 0)
        usage = self.accounting.on_close(bin_.opened_at, t)
        if self.metrics is not None:
            self.metrics.on_bin_close(
                n_items=n_items,
                peak_load=peak,
                capacity=self.capacity,
                usage=usage,
            )
        if self.record:
            self._records.append(
                BinRecord(
                    uid=bin_.uid,
                    tag=bin_.tag,
                    opened_at=bin_.opened_at,
                    closed_at=t,
                    item_uids=tuple(self._bin_items.pop(bin_.uid, ())),
                    peak_load=peak,
                )
            )
        hook = getattr(self.algorithm, "notify_close", None)
        if hook is not None:
            hook(bin_, self)

    def _commit(self, item: Item, view: Item, chosen) -> Bin:
        pending, self._pending_bin = self._pending_bin, None
        if not isinstance(chosen, Bin):
            raise PackingError(f"place() must return a Bin, got {chosen!r}")
        if pending is not None and chosen is not pending:
            raise PackingError(
                "place() opened a new bin but returned a different one"
            )
        if pending is None and chosen.uid not in self._open:
            raise PackingError(
                f"place() returned bin {chosen.uid} which is not open"
            )
        chosen._add(view)
        if pending is not None:
            self._open[chosen.uid] = chosen
            self._next_bin_uid += 1
            self.accounting.on_open(chosen.opened_at)
        if chosen.load > self._peak.get(chosen.uid, 0.0):
            self._peak[chosen.uid] = chosen.load
        self._bin_count[chosen.uid] = self._bin_count.get(chosen.uid, 0) + 1
        self.accounting.on_arrival(item.size)
        self._item_bin[item.uid] = chosen
        if self.record:
            self._assignment[item.uid] = chosen.uid
            self._bin_items.setdefault(chosen.uid, []).append(item.uid)
            self._items.append(item)
        return self._item_bin[item.uid]

    def __repr__(self) -> str:
        name = getattr(self.algorithm, "name", type(self.algorithm).__name__)
        return (
            f"Engine(algorithm={name!r}, t={self.time:g}, "
            f"open={len(self._open)}, cost={self.accounting.cost_at(self.time):.6g})"
        )


def replay(
    algorithm,
    source: ItemSource,
    *,
    capacity: float = 1.0,
    metrics: Optional[EngineMetrics] = None,
) -> EngineSummary:
    """One-shot convenience: stream ``source`` through a fresh engine."""
    return Engine(algorithm, capacity=capacity, metrics=metrics).run(source)
