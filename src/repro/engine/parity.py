"""Batch/streaming parity: a regression guard, not a proof obligation.

Since the kernel refactor, ``simulate()`` and the streaming
:class:`~repro.engine.loop.Engine` are both thin adapters over the same
:class:`~repro.core.kernel.PlacementKernel`, so batch/stream agreement
holds **by construction** — there is exactly one implementation of the
placement, commit, masking and departure semantics.  This module remains
as the regression check that keeps that claim honest (e.g. against a
future frontend accidentally growing its own semantics, or the engine's
listener-driven accounting drifting from the kernel's close-order
summation).  For a given algorithm and instance it asserts that

- final **cost** matches ``simulate()`` bit-for-bit (the check still
  allows a 1e-9 slack so the contract is stated in tolerant terms),
- **max_open** matches exactly,
- the item→bin **assignment** matches exactly, and
- per-bin records (open/close times, members, peak loads) match.

:func:`parity_suite` sweeps the full algorithm registry over every
workload-generator family — general algorithms on the random/cloud
generators, the aligned-only CDFF variants on binary/aligned inputs.
CI runs it as an explicit step: ``python -m repro.engine.parity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.simulation import simulate
from .loop import Engine

__all__ = [
    "ParityReport",
    "check_parity",
    "parity_suite",
    "default_parity_cells",
    "COST_TOL",
]

#: cost tolerance of the parity contract (observed deltas are exactly 0.0)
COST_TOL = 1e-9


@dataclass(frozen=True)
class ParityReport:
    """The comparison of one streamed run against its batch twin."""

    algorithm: str
    workload: str
    n_items: int
    batch_cost: float
    engine_cost: float
    max_open_batch: int
    max_open_engine: int
    assignment_equal: bool
    bins_equal: bool

    @property
    def cost_delta(self) -> float:
        return abs(self.engine_cost - self.batch_cost)

    @property
    def ok(self) -> bool:
        return (
            self.cost_delta <= COST_TOL
            and self.max_open_batch == self.max_open_engine
            and self.assignment_equal
            and self.bins_equal
        )

    def __str__(self) -> str:
        flag = "ok" if self.ok else "MISMATCH"
        return (
            f"[{flag}] {self.algorithm:20s} on {self.workload:24s} "
            f"n={self.n_items:5d}  cost {self.batch_cost:.6g} vs "
            f"{self.engine_cost:.6g} (Δ={self.cost_delta:.3g})  "
            f"max_open {self.max_open_batch} vs {self.max_open_engine}"
        )


def check_parity(
    algorithm_factory: Callable[[], object],
    instance: Instance,
    *,
    capacity: float = 1.0,
    workload: str = "instance",
) -> ParityReport:
    """Run batch and engine on fresh algorithm instances and compare."""
    batch = simulate(algorithm_factory(), instance, capacity=capacity)
    engine = Engine(algorithm_factory(), capacity=capacity, record=True)
    summary = engine.run(iter(instance))
    streamed = engine.result()
    return ParityReport(
        algorithm=batch.algorithm,
        workload=workload,
        n_items=len(instance),
        batch_cost=batch.cost,
        engine_cost=summary.cost,
        max_open_batch=batch.max_open,
        max_open_engine=summary.max_open,
        assignment_equal=streamed.assignment == batch.assignment,
        bins_equal=streamed.bins == batch.bins,
    )


# ---------------------------------------------------------------------- #
# The default sweep: registry × generator families
# ---------------------------------------------------------------------- #
#: algorithms that accept arbitrary (non-aligned) inputs
GENERAL_ALGORITHMS = (
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "NextFit",
    "HybridAlgorithm",
    "ClassifyByDuration",
    "LeastExpansion",
)
#: algorithms restricted to aligned inputs
ALIGNED_ALGORITHMS = ("CDFF", "StaticRowsCDFF")


def _general_workloads(seed: int) -> List[Tuple[str, Instance]]:
    from ..workloads import (
        batch_jobs,
        cloud_gaming,
        ff_trap,
        poisson_random,
        staircase,
        uniform_random,
    )

    return [
        (f"uniform_random(seed={seed})", uniform_random(120, 32, seed=seed)),
        (
            f"poisson_random(seed={seed})",
            poisson_random(2.0, 16.0, 50.0, seed=seed),
        ),
        ("staircase(mu=64)", staircase(64.0)),
        (f"cloud_gaming(seed={seed})", cloud_gaming(40.0, seed=seed)),
        (f"batch_jobs(seed={seed})", batch_jobs(8, 8, seed=seed)),
        ("ff_trap(mu=16)", ff_trap(16)),
    ]


def _aligned_workloads(seed: int) -> List[Tuple[str, Instance]]:
    from ..workloads import aligned_random, binary_input

    return [
        ("binary_input(mu=64)", binary_input(64)),
        (f"aligned_random(seed={seed})", aligned_random(32, 90, seed=seed)),
    ]


def default_parity_cells(
    seed: int = 0,
) -> List[Tuple[str, str, Instance]]:
    """``(algorithm, workload, instance)`` cells of the default sweep."""
    cells: List[Tuple[str, str, Instance]] = []
    for name in GENERAL_ALGORITHMS:
        for wname, inst in _general_workloads(seed):
            cells.append((name, wname, inst))
    for name in ALIGNED_ALGORITHMS:
        for wname, inst in _aligned_workloads(seed):
            cells.append((name, wname, inst))
    return cells


def parity_task(cell: Tuple[str, str, Instance]) -> ParityReport:
    """Picklable worker for one sweep cell (``parallel_map``-friendly)."""
    from ..parallel import _registry

    name, wname, inst = cell
    return check_parity(_registry()[name], inst, workload=wname)


def parity_suite(
    cells: Optional[Iterable[Tuple[str, str, Instance]]] = None,
    *,
    seed: int = 0,
    workers: int = 1,
) -> List[ParityReport]:
    """Run the parity sweep; returns one report per cell.

    ``workers > 1`` fans the cells out over processes via
    :func:`repro.parallel.parallel_map` (each cell is independent).
    """
    if cells is None:
        cells = default_parity_cells(seed)
    cells = list(cells)
    if workers > 1:
        from ..parallel import parallel_map

        return parallel_map(parity_task, cells, workers=workers)
    return [parity_task(cell) for cell in cells]


def _main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.engine.parity`` — the CI parity gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.engine.parity",
        description="Run the full batch/stream parity sweep and exit "
        "non-zero on any mismatch.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)
    reports = parity_suite(seed=args.seed, workers=args.workers)
    failures = 0
    for report in reports:
        print(report)
        failures += 0 if report.ok else 1
    print(
        f"parity sweep: {len(reports) - failures}/{len(reports)} cells ok"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(_main())
