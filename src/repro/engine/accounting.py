"""Incremental MinUsageTime accounting for the streaming engine.

The batch path derives cost and ``ON_t`` *post mortem* from the full list
of :class:`~repro.core.bins.BinRecord`; that is O(n) space and O(n log n)
work per query.  This module maintains the same quantities as running
state updated in O(1) per event (the engine's heap operations are the
O(log n) part), so cost and the open-bin count are queryable at any moment
mid-stream with no stored history.

Exact-parity invariant: ``closed_usage`` accumulates per-bin usages *in
close order*, which is precisely the summation order of
``PackingResult.cost`` (records are appended at close).  Floating-point
addition order therefore matches and the final costs are bit-identical —
the property the parity suite pins down.

The running cost of *open* bins uses the identity::

    Σ_open (t - opened_at)  =  open_count · t - Σ_open opened_at

so a mid-stream cost query is O(1) off ``sum_opened_at``, maintained by
add/subtract at open/close.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

__all__ = ["RunningAccounting"]


class RunningAccounting:
    """Running totals over a stream of packing events.

    Parameters
    ----------
    record_profile:
        When true, keep the ``(time, ±1)`` open-bin-count deltas so the
        full ``ON_t`` step function can be reconstructed afterwards.  Off
        by default — the delta list grows with the trace, and constant
        memory is the engine's contract.
    """

    __slots__ = (
        "time",
        "closed_usage",
        "open_count",
        "max_open",
        "sum_opened_at",
        "load",
        "peak_load",
        "util_area",
        "arrivals",
        "departures",
        "bins_opened",
        "bins_closed",
        "profile_deltas",
    )

    def __init__(self, *, record_profile: bool = False) -> None:
        self.time: float = -math.inf
        self.closed_usage: float = 0.0
        self.open_count: int = 0
        self.max_open: int = 0
        self.sum_opened_at: float = 0.0
        self.load: float = 0.0  #: total size of active items
        self.peak_load: float = 0.0  #: max_t S_t over the stream so far
        self.util_area: float = 0.0  #: ∫ load dt — space–time demand served
        self.arrivals: int = 0
        self.departures: int = 0
        self.bins_opened: int = 0
        self.bins_closed: int = 0
        self.profile_deltas: Optional[List[Tuple[float, int]]] = (
            [] if record_profile else None
        )

    # ------------------------------------------------------------------ #
    # Event hooks (called by the engine, in event order)
    # ------------------------------------------------------------------ #
    def advance(self, t: float) -> None:
        """Move the clock to ``t``, integrating the load profile."""
        if t > self.time:
            if math.isfinite(self.time):
                self.util_area += self.load * (t - self.time)
            self.time = t

    def on_arrival(self, size: float) -> None:
        self.arrivals += 1
        self.load += size
        if self.load > self.peak_load:
            self.peak_load = self.load

    def on_departure(self, size: float, *, any_active: bool) -> None:
        self.departures += 1
        self.load -= size
        if not any_active:
            self.load = 0.0  # kill floating residue when idle

    def on_open(self, opened_at: float) -> None:
        self.bins_opened += 1
        self.open_count += 1
        self.sum_opened_at += opened_at
        if self.open_count > self.max_open:
            self.max_open = self.open_count
        if self.profile_deltas is not None:
            self.profile_deltas.append((opened_at, +1))

    def on_close(self, opened_at: float, closed_at: float) -> float:
        """Account a bin closing; returns its usage contribution."""
        usage = closed_at - opened_at
        self.closed_usage += usage
        self.open_count -= 1
        self.sum_opened_at -= opened_at
        if self.open_count == 0:
            self.sum_opened_at = 0.0  # same residue-killing as Bin._remove
        if self.profile_deltas is not None:
            self.profile_deltas.append((closed_at, -1))
        self.bins_closed += 1
        return usage

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def cost_at(self, t: Optional[float] = None) -> float:
        """Usage time of closed bins plus open bins up to ``t`` (O(1))."""
        if t is None:
            t = self.time
        if not math.isfinite(t):
            t = 0.0
        return self.closed_usage + self.open_count * t - self.sum_opened_at

    @property
    def cost(self) -> float:
        """Final cost once the stream is drained (no open bins left)."""
        return self.closed_usage

    def open_profile(self):
        """``ON_t`` as a :class:`~repro.core.profile.LoadProfile`.

        Requires ``record_profile=True``; raises otherwise.
        """
        if self.profile_deltas is None:
            raise ValueError(
                "open_profile() needs RunningAccounting(record_profile=True)"
            )
        import numpy as np

        from ..core.profile import LoadProfile

        if not self.profile_deltas:
            return LoadProfile(np.asarray([0.0]), np.zeros(0))
        times = np.asarray([t for t, _ in self.profile_deltas])
        deltas = np.asarray([d for _, d in self.profile_deltas], dtype=float)
        order = np.argsort(times, kind="stable")
        times, deltas = times[order], deltas[order]
        bps, start_idx = np.unique(times, return_index=True)
        sums = np.add.reduceat(deltas, start_idx)
        values = np.round(np.cumsum(sums)[:-1])
        return LoadProfile(bps, values)

    def gauges(self) -> dict:
        """Instantaneous gauge values for the observability layer.

        The subset of :meth:`to_dict` that reads as "right now" rather
        than "so far" — what ``repro-dbp replay --profile`` and metric
        sinks report as gauges.
        """
        return {
            "open_count": self.open_count,
            "load": self.load,
            "cost_so_far": self.cost_at(),
            "max_open": self.max_open,
            "peak_load": self.peak_load,
        }

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot of every running total."""
        return {
            "time": self.time if math.isfinite(self.time) else None,
            "cost_so_far": self.cost_at(),
            "closed_usage": self.closed_usage,
            "open_count": self.open_count,
            "max_open": self.max_open,
            "load": self.load,
            "peak_load": self.peak_load,
            "util_area": self.util_area,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "bins_opened": self.bins_opened,
            "bins_closed": self.bins_closed,
        }

    # pickling support for __slots__ (checkpointing)
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:
        return (
            f"RunningAccounting(t={self.time:g}, cost={self.cost_at():.6g}, "
            f"open={self.open_count}, max_open={self.max_open})"
        )
