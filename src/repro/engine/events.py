"""Event types of the streaming engine.

The engine is a merge of two chronological streams: *arrivals* pulled
lazily from a trace source and *departures* popped from an internal heap.
Both are narrated to observers (and to the metrics layer) as the event
objects defined here.

Ordering matches the batch simulator (DESIGN.md §5): at equal times,
departures are processed before arrivals, and ties among equal-time
departures break by scheduling sequence (i.e. release order).  That order
is encoded in :meth:`Event.sort_key` — ``(time, kind, seq)`` with
``DEPARTURE < ARRIVAL`` — and the engine's heap entries use the same
triple, so a checkpointed heap replays identically after a restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..core.item import Item

__all__ = [
    "EventKind",
    "Event",
    "ArrivalEvent",
    "DepartureEvent",
    "CheckpointEvent",
]


class EventKind(IntEnum):
    """Event categories; the integer value is the tie-break priority."""

    DEPARTURE = 0  #: processed first at equal times (half-open intervals)
    ARRIVAL = 1
    CHECKPOINT = 2  #: synthetic, emitted between items — never ties for order


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: something happened at ``time`` (``seq`` breaks ties)."""

    time: float
    seq: int

    kind: "EventKind" = EventKind.ARRIVAL

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.seq)


@dataclass(frozen=True, slots=True)
class ArrivalEvent(Event):
    """An item was released and placed into ``bin_uid``.

    ``opened`` is true when the placement opened a fresh bin.
    """

    item: Item = None  # type: ignore[assignment]
    bin_uid: int = -1
    opened: bool = False
    kind: EventKind = EventKind.ARRIVAL


@dataclass(frozen=True, slots=True)
class DepartureEvent(Event):
    """Item ``uid`` left ``bin_uid``; ``closed`` when the bin emptied."""

    uid: int = -1
    bin_uid: int = -1
    size: float = 0.0
    closed: bool = False
    kind: EventKind = EventKind.DEPARTURE


@dataclass(frozen=True, slots=True)
class CheckpointEvent(Event):
    """A snapshot was written (CLI ``--checkpoint-every``)."""

    path: str = ""
    arrivals: int = 0
    kind: EventKind = EventKind.CHECKPOINT
