"""Command-line interface: ``repro-dbp`` (or ``python -m repro``).

Subcommands::

    repro-dbp list                 # list all registered experiments
    repro-dbp run T1.GEN.UB ...    # run specific experiments by id
    repro-dbp table1               # the four Table 1 rows
    repro-dbp figures              # Figures 1-3
    repro-dbp lemmas               # lemma validations
    repro-dbp all                  # everything
    repro-dbp demo                 # a 10-second guided tour
    repro-dbp pack t.csv -a CDFF   # batch-pack a trace file
    repro-dbp replay t.jsonl       # stream a trace (constant memory)
    repro-dbp obs summarize t.out  # aggregate a --trace JSONL by event
    repro-dbp obs flame p.prof.json         # flamegraph views of a profile
    repro-dbp obs critical-path t.jsonl     # span-tree critical-path analytics
    repro-dbp obs diff a.json b.json        # drift between two ledger records
    repro-dbp obs regress --baseline b.json # gate a ledger against a baseline
    repro-dbp chaos --schedules 25          # seeded fault-injection sweep
    repro-dbp chaos --replay plan.json --minimize  # shrink a failing plan

Run-producing commands (``run``/``pack``/``replay``) write one JSON
provenance record per run into the ledger directory (``--ledger-dir``,
``REPRO_LEDGER_DIR``, default ``.ledger/``); ``--no-ledger`` disables
this.  ``replay --invariants`` attaches the online theory-invariant
monitors (capacity, cost identity, span ≤ cost, Table-1 ratio bounds).

``run``/``replay``/``serve`` accept ``--sample-hz HZ`` to attach the
statistical stack sampler (:mod:`repro.obs.prof`): a profile artifact is
written at exit (``--profile-out``, default ``<trace>.prof.json``) and
its summary rides in the run's ledger record under the never-gated
``profile`` section.  ``obs flame`` renders a profile as a top-functions
table or exports it as collapsed-stack / speedscope files; ``obs
critical-path`` reconstructs span trees from a ``--trace`` JSONL and
attributes request latency phase by phase.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Sequence

from .experiments import EXPERIMENTS

_GROUPS = {
    "table1": ["T1.GEN.UB", "T1.GEN.LB", "T1.ALIGN.UB", "T1.NC"],
    "figures": ["FIG1", "FIG2", "FIG3"],
    "lemmas": ["LEM3.1", "LEM3.3", "LEM3.5", "COR3.4", "THM4.2",
               "LEM5.5", "LEM5.12"],
    "binary": ["COR5.8", "LEM5.9", "PROP5.3"],
    "ablations": ["ABL.THRESH", "ABL.ANYFIT", "ABL.ROWS"],
    "growth": ["GROWTH"],
    "extensions": ["OBJ.MOTIVATION", "EXT.GREEDY", "EXT.SHALOM", "EXT.AUGMENT",
                   "EXT.NRGAP", "EXT.ADAPT", "EXT.RANDOM", "OPEN.ALIGN",
                   "OPEN.GEN"],
}


def _ledger_dir(args):
    """The ledger directory for a run command, or ``None`` when disabled."""
    if getattr(args, "no_ledger", False):
        return None
    from .obs.ledger import resolve_ledger_dir

    return resolve_ledger_dir(getattr(args, "ledger_dir", None))


def _add_ledger_flags(parser) -> None:
    parser.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="directory for run ledger records (default: $REPRO_LEDGER_DIR "
        "or .ledger/)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not write a ledger record for this run",
    )


def _add_sampler_flags(parser) -> None:
    parser.add_argument(
        "--sample-hz", type=float, default=0.0, metavar="HZ",
        help="attach the statistical stack sampler at HZ samples/s "
        "(0 = off; 97 is a good default — prime, so it does not alias "
        "with periodic work)",
    )
    parser.add_argument(
        "--profile-out", metavar="OUT.prof.json", default=None,
        help="profile artifact path (default: derived from the command's "
        "primary output; requires --sample-hz)",
    )


def _start_sampler(args):
    """Build and start a :class:`StackSampler` when ``--sample-hz`` asks
    for one; returns ``None`` otherwise."""
    hz = getattr(args, "sample_hz", 0.0) or 0.0
    if hz <= 0:
        return None
    from .obs.prof import StackSampler

    sampler = StackSampler(hz)
    sampler.start()
    return sampler


def _finish_sampler(sampler, args, default_out: str):
    """Stop ``sampler``, write its artifact, and return the ledger-ready
    ``profile_info`` dict (``None`` when no sampler ran)."""
    if sampler is None:
        return None
    import pathlib

    profile = sampler.stop()
    out = pathlib.Path(getattr(args, "profile_out", None) or default_out)
    profile.write(out)
    stats = profile.stats()
    print(
        f"profile: {stats['samples']} samples @ {profile.hz:g} Hz "
        f"({stats['unique_stacks']} unique stacks) -> {out}"
    )
    return {"sampler": stats, "artifact": str(out)}


def _run(
    ids: Iterable[str],
    *,
    profile: bool = False,
    ledger_dir=None,
    sampler=None,
    profile_info=None,
) -> int:
    from .experiments.runner import run_experiment

    failures = 0
    for eid in ids:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment id: {eid}", file=sys.stderr)
            failures += 1
            continue
        info = profile_info
        if sampler is not None:
            # per-record cumulative snapshot; the artifact pointer (if
            # any) is added by the caller once the run completes
            info = dict(profile_info or {})
            info["sampler"] = sampler.snapshot().stats()
        result, report = run_experiment(
            eid, profile=profile, ledger_dir=ledger_dir, profile_info=info
        )
        print(result.render())
        if report is not None:
            print(report.render())
        if not result.passed:
            failures += 1
    return failures


def _demo() -> int:
    from . import (
        CDFF,
        FirstFit,
        HybridAlgorithm,
        binary_input,
        opt_reference,
        simulate,
        uniform_random,
    )

    inst = uniform_random(150, 64, seed=42)
    print(f"random instance: {inst!r}")
    for alg in (FirstFit(), HybridAlgorithm()):
        res = simulate(alg, inst)
        print(f"  {res.algorithm:16s} cost={res.cost:9.2f} bins={res.n_bins}")
    opt = opt_reference(inst, max_exact=18)
    print(f"  OPT_R ∈ [{opt.lower:.2f}, {opt.upper:.2f}]")
    sig = binary_input(64)
    res = simulate(CDFF(), sig)
    print(f"σ_64: CDFF cost={res.cost:g} (OPT_R = 64); ratio={res.cost/64:.3f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dbp",
        description="Reproduction harness for 'Tight Bounds for Clairvoyant "
        "Dynamic Bin Packing' (SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiment ids")
    runp = sub.add_parser("run", help="run experiments by id")
    runp.add_argument("ids", nargs="+", metavar="EXPERIMENT_ID")
    runp.add_argument(
        "--profile", action="store_true",
        help="profile each experiment (wall time, peak RSS, tracemalloc)",
    )
    _add_sampler_flags(runp)
    _add_ledger_flags(runp)
    for group in _GROUPS:
        sub.add_parser(group, help=f"run the {group} experiments")
    sub.add_parser("all", help="run every registered experiment")
    sub.add_parser("demo", help="a quick guided tour")
    sub.add_parser("curves", help="growth curves as ASCII charts")
    reportp = sub.add_parser(
        "report", help="run experiments and write a Markdown report"
    )
    reportp.add_argument("-o", "--output", default="REPORT.md")
    reportp.add_argument(
        "ids", nargs="*", metavar="EXPERIMENT_ID",
        help="subset to run (default: everything)",
    )
    packp = sub.add_parser(
        "pack", help="pack a CSV trace with a chosen algorithm"
    )
    packp.add_argument(
        "csv", nargs="?", help="instance file (arrival,departure,size)"
    )
    packp.add_argument(
        "-a", "--algorithm", default="HybridAlgorithm",
        help="algorithm name (see --list-algorithms)",
    )
    packp.add_argument("--capacity", type=float, default=1.0)
    packp.add_argument(
        "--no-index", action="store_true",
        help="disable the kernel's O(log n) open-bin index "
        "(linear-scan placement queries)",
    )
    packp.add_argument(
        "--render", action="store_true", help="draw the packing (ASCII)"
    )
    packp.add_argument(
        "--list-algorithms", action="store_true",
        help="print available algorithm names and exit",
    )
    _add_ledger_flags(packp)
    replayp = sub.add_parser(
        "replay",
        help="stream a trace through the constant-memory engine",
        description="Replay a JSONL/CSV trace through the streaming "
        "engine (repro.engine): constant memory, incremental accounting, "
        "optional checkpointing and metrics.",
    )
    replayp.add_argument(
        "trace", help="trace file (.jsonl/.csv; one request per row)"
    )
    replayp.add_argument(
        "-a", "--algo", "--algorithm", dest="algorithm",
        default="HybridAlgorithm",
        help="algorithm name (see `pack --list-algorithms`)",
    )
    replayp.add_argument("--capacity", type=float, default=1.0)
    replayp.add_argument(
        "--no-index", action="store_true",
        help="disable the kernel's O(log n) open-bin index "
        "(linear-scan placement queries)",
    )
    replayp.add_argument(
        "--format", choices=("auto", "jsonl", "csv"), default="auto",
        help="trace format (default: infer from extension)",
    )
    replayp.add_argument(
        "--metrics", metavar="OUT.json",
        help="write a metrics snapshot (counters/histograms/timings)",
    )
    replayp.add_argument(
        "--checkpoint-every", type=int, metavar="N", default=0,
        help="snapshot engine+algorithm state every N items",
    )
    replayp.add_argument(
        "--checkpoint", metavar="PATH",
        help="checkpoint file (default: <trace>.ckpt)",
    )
    replayp.add_argument(
        "--resume", metavar="PATH",
        help="restore from a checkpoint and skip the items already fed",
    )
    replayp.add_argument(
        "--limit", type=int, metavar="N", default=0,
        help="replay only the first N items of the trace (0 = all)",
    )
    replayp.add_argument(
        "--verify", action="store_true",
        help="also run batch simulate() and assert engine/batch parity "
        "(loads the whole trace into memory)",
    )
    replayp.add_argument(
        "--trace", metavar="OUT.jsonl", dest="trace_out",
        help="record a kernel event trace (spans+events) to a JSONL file",
    )
    replayp.add_argument(
        "--trace-capacity", type=int, metavar="N", default=0,
        help="trace ring-buffer capacity (default: 32768; oldest events "
        "are dropped beyond this)",
    )
    replayp.add_argument(
        "--profile", action="store_true",
        help="profile the replay (wall time, peak RSS, tracemalloc)",
    )
    replayp.add_argument(
        "--invariants", action="store_true",
        help="attach the online theory-invariant monitors (capacity, cost "
        "identity, span<=cost, Table-1 ratio bounds); violations are "
        "reported and recorded in the ledger",
    )
    replayp.add_argument(
        "--strict-invariants", action="store_true",
        help="like --invariants, but abort with an error on the first "
        "violation",
    )
    _add_sampler_flags(replayp)
    _add_ledger_flags(replayp)
    obsp = sub.add_parser(
        "obs", help="observability utilities (summaries, ledger sentinel)"
    )
    obssub = obsp.add_subparsers(dest="obs_command", required=True)
    obssump = obssub.add_parser(
        "summarize", help="aggregate a JSONL trace written by replay --trace"
    )
    obssump.add_argument("trace", help="trace file written by --trace")
    obssump.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N busiest event names (by total span time)",
    )
    obsflamep = obssub.add_parser(
        "flame",
        help="render a --sample-hz profile: top-functions table, "
        "collapsed stacks, speedscope JSON",
    )
    obsflamep.add_argument(
        "profile", help="profile artifact written by --sample-hz "
        "(<out>.prof.json)",
    )
    obsflamep.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the top-functions table (default 20)",
    )
    obsflamep.add_argument(
        "--collapsed", metavar="OUT.txt", default=None,
        help="write Brendan-Gregg collapsed stacks (flamegraph.pl input)",
    )
    obsflamep.add_argument(
        "--speedscope", metavar="OUT.json", default=None,
        help="write a speedscope-compatible JSON profile "
        "(open at https://www.speedscope.app)",
    )
    obscritp = obssub.add_parser(
        "critical-path",
        help="reconstruct span trees from a --trace JSONL and attribute "
        "request latency phase by phase",
    )
    obscritp.add_argument(
        "trace", help="trace file written by replay --trace or "
        "serve --trace-out",
    )
    obscritp.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="also write the full report (per-request slices, phase "
        "totals) as JSON",
    )
    obsdiffp = obssub.add_parser(
        "diff", help="per-metric drift between two ledger records"
    )
    obsdiffp.add_argument("record_a", help="baseline ledger record (JSON)")
    obsdiffp.add_argument("record_b", help="current ledger record (JSON)")
    obsdiffp.add_argument(
        "--tol", action="append", default=[], metavar="PATTERN=REL",
        help="relative tolerance for metrics matching PATTERN (fnmatch over "
        "dotted keys, e.g. 'metrics.cost=0.01'); repeatable",
    )
    obsregp = obssub.add_parser(
        "regress",
        help="gate a ledger directory against a frozen baseline "
        "(exit 1 on cost drift or new invariant violations)",
    )
    obsregp.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file (default: <ledger-dir>/baseline.json)",
    )
    obsregp.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="ledger directory to check (default: $REPRO_LEDGER_DIR or "
        ".ledger/)",
    )
    obsregp.add_argument(
        "--tol", action="append", default=[], metavar="PATTERN=REL",
        help="relative tolerance override, as in `obs diff`; repeatable",
    )
    servep = sub.add_parser(
        "serve",
        help="run the placement service (JSONL over TCP)",
        description="Serve placement decisions over TCP: clients submit "
        "arrive/depart/advance/stats requests as JSON lines and receive "
        "one reply per request.  SIGTERM/SIGINT drains gracefully "
        "(flush micro-batchers, work queues dry, checkpoint every "
        "shard).  `serve top` instead attaches to a *running* server "
        "and renders a live per-shard RED view from its telemetry "
        "admin verb.  See docs/serving.md for the protocol.",
    )
    servep.add_argument(
        "mode", nargs="?", choices=("top",),
        help="'top': poll a running server's stats/telemetry verbs and "
        "render a live per-shard rate/p50/p99/queue view (needs --port)",
    )
    servep.add_argument("--host", default="127.0.0.1")
    servep.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 = pick a free one; printed on startup)",
    )
    servep.add_argument(
        "-a", "--algo", "--algorithm", dest="algorithm",
        default="HybridAlgorithm",
        help="algorithm name (see `pack --list-algorithms`)",
    )
    servep.add_argument("--capacity", type=float, default=1.0)
    servep.add_argument(
        "--shards", type=int, default=1,
        help="worker shards (one kernel each; consistent-hash routed)",
    )
    servep.add_argument(
        "--max-queue", type=int, default=1024,
        help="per-shard queue bound in micro-batches; beyond it clients "
        "get {'error': 'overloaded', 'retry_after': ...}",
    )
    servep.add_argument(
        "--batch-max", type=int, default=1,
        help="micro-batch size (1 = batching off)",
    )
    servep.add_argument(
        "--batch-delay", type=float, default=0.0, metavar="SECONDS",
        help="micro-batch age bound (0 = batching off)",
    )
    servep.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write one v2 checkpoint per shard on drain",
    )
    servep.add_argument(
        "--resume", action="store_true",
        help="restore shards from --checkpoint-dir before serving",
    )
    servep.add_argument(
        "--no-index", action="store_true",
        help="disable the kernel's O(log n) open-bin index",
    )
    servep.add_argument(
        "--no-metrics", action="store_true",
        help="skip per-shard EngineMetrics collection",
    )
    servep.add_argument(
        "--telemetry", action="store_true",
        help="enable request-scoped telemetry: span sampling, per-shard "
        "RED metrics, and the {'op': 'telemetry'} admin verb",
    )
    servep.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="P",
        help="head-sampling probability for span recording (default 1.0; "
        "deterministic in the trace id and --telemetry-seed)",
    )
    servep.add_argument(
        "--telemetry-seed", type=int, default=0, metavar="N",
        help="seed for the deterministic head-sampler",
    )
    servep.add_argument(
        "--trace-out", metavar="OUT.jsonl",
        help="write sampled request spans as JSONL on drain "
        "(implies --telemetry)",
    )
    servep.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="serve top: seconds between refreshes (default 2)",
    )
    servep.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="serve top: stop after N refreshes (0 = until interrupted)",
    )
    servep.add_argument(
        "--prometheus", action="store_true",
        help="serve top: print one Prometheus text-exposition page "
        "and exit",
    )
    _add_sampler_flags(servep)
    _add_ledger_flags(servep)
    loadgenp = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a placement server",
        description="Replay a registered workload generator against a "
        "running `repro-dbp serve` as open-loop traffic (request i is "
        "sent at t0 + i/rate regardless of reply progress) and report "
        "achieved throughput and reply-latency percentiles.",
    )
    loadgenp.add_argument("--host", default="127.0.0.1")
    loadgenp.add_argument("--port", type=int, required=True)
    loadgenp.add_argument(
        "-w", "--workload", default="uniform",
        help="workload generator (see --list-workloads)",
    )
    loadgenp.add_argument(
        "-n", "--items", type=int, default=1000,
        help="number of arrive requests to send",
    )
    loadgenp.add_argument(
        "--rate", type=float, default=5000.0,
        help="offered load, requests/second (global across connections)",
    )
    loadgenp.add_argument(
        "--connections", type=int, default=1,
        help="concurrent pipelined connections (must not exceed the "
        "server's shard count; each lands on its own shard)",
    )
    loadgenp.add_argument("--seed", type=int, default=0)
    loadgenp.add_argument(
        "--json", metavar="OUT.json", help="also write the report as JSON"
    )
    loadgenp.add_argument(
        "--trace", action="store_true",
        help="stamp a deterministic trace id (lg-<i>) on every request "
        "and report the server's per-phase latency attribution "
        "(needs a server started with --telemetry)",
    )
    loadgenp.add_argument(
        "--list-workloads", action="store_true",
        help="print registered workload names and exit",
    )
    _add_ledger_flags(loadgenp)
    chaosp = sub.add_parser(
        "chaos",
        help="deterministic fault-injection runs of the placement service",
        description="Deterministic fault-injection testing: run "
        "FaultPlan schedules against an in-process "
        "placement server on a virtual clock (no sockets, no wall-clock "
        "sleeps): seeded network faults, shard crashes, checkpoint/"
        "restore cycles.  After healing, oracles check exactly-once "
        "delivery and bit-identical decision/cost parity against batch "
        "simulate().  Failing plans can be shrunk to a minimal "
        "replayable artifact under <ledger>/chaos/.",
    )
    chaosp.add_argument(
        "--seed", type=int, default=0,
        help="first (or only) schedule seed (default 0)",
    )
    chaosp.add_argument(
        "--schedules", type=int, default=0, metavar="N",
        help="sweep N generated schedules starting at --seed",
    )
    chaosp.add_argument(
        "--replay", metavar="PLAN.json",
        help="replay a FaultPlan JSON or a chaos-failure artifact "
        "(runs its minimized plan)",
    )
    chaosp.add_argument(
        "--minimize", action="store_true",
        help="on failure, shrink the plan and write a replayable "
        "artifact under <ledger>/chaos/",
    )
    chaosp.add_argument(
        "--dedup-off", action="store_true",
        help="bug injection: disable the shards' idempotence cache "
        "(lost-ack retries double-apply; the oracle must catch it)",
    )
    chaosp.add_argument(
        "--json", metavar="OUT.json", help="also write reports as JSON"
    )
    _add_ledger_flags(chaosp)

    args = parser.parse_args(argv)
    if args.command == "list":
        for eid in sorted(EXPERIMENTS):
            print(eid)
        return 0
    if args.command == "demo":
        return _demo()
    if args.command == "curves":
        from .experiments.curves import growth_charts

        print(growth_charts())
        return 0
    if args.command == "report":
        from .experiments.report import generate_report

        text = generate_report(args.ids or None, out_path=args.output)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
        return 0
    if args.command == "pack":
        return _pack(args)
    if args.command == "replay":
        return _replay(args)
    if args.command == "obs":
        return _obs(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "run":
        sampler = _start_sampler(args)
        info = None
        if sampler is not None:
            info = {"artifact": str(args.profile_out or "run.prof.json")}
        try:
            return _run(
                args.ids,
                profile=args.profile,
                ledger_dir=_ledger_dir(args),
                sampler=sampler,
                profile_info=info,
            )
        finally:
            _finish_sampler(sampler, args, "run.prof.json")
    if args.command == "all":
        return _run(sorted(EXPERIMENTS))
    return _run(_GROUPS[args.command])


def _pack(args) -> int:
    from .parallel import ALGORITHM_REGISTRY, _registry

    if args.list_algorithms:
        for name in ALGORITHM_REGISTRY:
            print(name)
        return 0
    if not args.csv:
        print("pack: a CSV path is required (or --list-algorithms)",
              file=sys.stderr)
        return 1
    registry = _registry()
    if args.algorithm not in registry:
        print(
            f"unknown algorithm {args.algorithm!r}; options: "
            + ", ".join(ALGORITHM_REGISTRY),
            file=sys.stderr,
        )
        return 1
    from .core.simulation import simulate
    from .core.validate import audit
    from .offline.optimal import opt_reference
    from .workloads.io import load_csv

    instance = load_csv(args.csv)
    result = simulate(registry[args.algorithm](), instance,
                      capacity=args.capacity, indexed=not args.no_index)
    audit(result)
    st = instance.stats
    print(
        f"{args.csv}: {st.n_items} items, μ={st.mu:g}, span={st.span:g}, "
        f"demand={st.demand:g}"
    )
    print(
        f"{result.algorithm}: cost={result.cost:g} bins={result.n_bins} "
        f"max_open={result.max_open}"
    )
    ledger_dir = _ledger_dir(args)
    if ledger_dir is not None:
        import pathlib

        from .obs.ledger import LedgerSink

        sink = LedgerSink(
            kind="pack",
            algorithm=result.algorithm,
            generator=pathlib.Path(args.csv).name,
            config={"capacity": args.capacity, "indexed": not args.no_index},
            ledger_dir=ledger_dir,
        )
        sink.emit(
            {
                "cost": result.cost,
                "bins": result.n_bins,
                "max_open": result.max_open,
                "items": st.n_items,
                "mu": st.mu,
                "span": st.span,
                "demand": st.demand,
            }
        )
        print(f"ledger: {sink.last_path}")
    if args.capacity == 1.0:
        opt = opt_reference(instance, max_exact=16)
        print(f"OPT_R ∈ [{opt.lower:g}, {opt.upper:g}]  "
              f"→ certified ratio ≤ {result.cost / opt.lower:.3f}")
    if args.render:
        from .viz.ascii import render_packing

        print(render_packing(result))
    return 0


def _replay(args) -> int:
    import time as _time

    from .engine import (
        Engine,
        EngineMetrics,
        JSONSink,
        load_checkpoint,
        open_trace_stores,
        save_checkpoint,
    )
    from .parallel import ALGORITHM_REGISTRY, _registry

    registry = _registry()
    if args.algorithm not in registry:
        print(
            f"unknown algorithm {args.algorithm!r}; options: "
            + ", ".join(ALGORITHM_REGISTRY),
            file=sys.stderr,
        )
        return 1

    tracer = None
    if args.trace_out:
        from .obs import DEFAULT_CAPACITY, Tracer

        tracer = Tracer(args.trace_capacity or DEFAULT_CAPACITY)
    profiler = None
    if args.profile:
        from .obs import PhaseProfiler

        profiler = PhaseProfiler(trace_malloc=True, top_allocations=3)
    monitor = None
    if args.invariants or args.strict_invariants:
        from .obs.invariants import InvariantMonitor

        monitor = InvariantMonitor(
            capacity=args.capacity,
            algorithm=args.algorithm,
            strict=args.strict_invariants,
            tracer=tracer,
        )

    metrics = EngineMetrics()
    if args.resume:
        engine = load_checkpoint(args.resume)
        if args.verify and not engine.record:
            print(
                "--verify needs a checkpoint taken from a --verify run "
                "(the constant-memory engine keeps no history)",
                file=sys.stderr,
            )
            return 1
        engine.metrics = metrics if engine.metrics is None else engine.metrics
        metrics = engine.metrics
        if tracer is not None:
            engine.attach_tracer(tracer)
        if monitor is not None:
            engine.invariants = monitor
            engine.attach_listener(monitor)
        skip = engine.accounting.arrivals
        print(
            f"resumed from {args.resume}: {skip} items already fed, "
            f"t={engine.time:g}, cost so far {engine.cost_so_far:g}"
        )
    else:
        engine = Engine(
            registry[args.algorithm](),
            capacity=args.capacity,
            metrics=metrics,
            record=args.verify,
            indexed=not args.no_index,
            tracer=tracer,
            invariants=monitor,
        )
        skip = 0

    source = open_trace_stores(args.trace, format=args.format)
    ckpt_path = args.checkpoint or f"{args.trace}.ckpt"
    every = max(0, args.checkpoint_every)
    limit = args.limit or None

    def _feed_all() -> None:
        # Drain columnar chunks.  ``fed`` counts trace rows consumed —
        # including rows skipped on resume — matching the item-at-a-time
        # loop this replaces, so --limit / --resume / --checkpoint-every
        # land on exactly the same rows.
        nonlocal fed
        for chunk in source:
            take = len(chunk)
            if limit is not None:
                take = min(take, limit - fed)
                if take <= 0:
                    return
            i = 0
            if fed < skip:  # already applied before the checkpoint
                i = min(skip - fed, take)
                fed += i
            if every:
                while i < take:
                    engine.feed_row(chunk, i)
                    fed += 1
                    i += 1
                    if fed % every == 0:
                        save_checkpoint(engine, ckpt_path)
            elif i < take:
                engine.feed_store(chunk, i, take)
                fed += take - i

    from .obs.invariants import InvariantViolationError

    sampler = _start_sampler(args)
    t0 = _time.perf_counter()
    fed = 0
    try:
        if profiler is not None:
            with profiler.phase("replay"):
                _feed_all()
            with profiler.phase("drain"):
                summary = engine.finish()
        else:
            _feed_all()
            summary = engine.finish()
    except InvariantViolationError as exc:
        if sampler is not None:
            sampler.stop()
        print(f"replay: {exc}", file=sys.stderr)
        return 1
    elapsed = _time.perf_counter() - t0
    profile_info = _finish_sampler(sampler, args, f"{args.trace}.prof.json")

    events = summary.items + engine.accounting.departures
    rate = events / elapsed if elapsed > 0 else float("inf")
    print(
        f"{args.trace}: {summary.items} items replayed "
        f"({events} events, {rate:,.0f} events/s)"
    )
    print(
        f"{summary.algorithm}: cost={summary.cost:g} "
        f"bins={summary.bins_opened} max_open={summary.max_open} "
        f"peak_load={summary.peak_load:g}"
    )
    if every:
        print(f"checkpoints: every {every} items -> {ckpt_path}")
    if args.metrics:
        metrics.flush(JSONSink(args.metrics), extra=summary.to_dict())
        print(f"metrics written to {args.metrics}")
    if tracer is not None:
        written = tracer.write_jsonl(args.trace_out)
        dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
        print(f"trace: {written} events -> {args.trace_out}{dropped}")
    if profiler is not None:
        print(profiler.report().render())
    if monitor is not None:
        verdicts = monitor.verdicts()
        n_checks = verdicts["checks"]
        n_viol = len(verdicts["violations"])
        status = "ok" if verdicts["ok"] else f"{n_viol} VIOLATION(S)"
        print(f"invariants: {n_checks} checks -> {status}")
        for viol in verdicts["violations"]:
            print(f"  {viol['invariant']}: {viol['message']}", file=sys.stderr)
    ledger_dir = _ledger_dir(args)
    if ledger_dir is not None:
        from pathlib import Path as _Path

        from .obs.ledger import LedgerSink

        sink = LedgerSink(
            ledger_dir=ledger_dir,
            kind="replay",
            algorithm=summary.algorithm,
            generator=_Path(args.trace).name,
            config={
                "capacity": args.capacity,
                "limit": args.limit,
                "indexed": not args.no_index,
                "format": args.format,
                "resumed": bool(args.resume),
            },
            profiler=profiler,
            invariants=monitor,
            wall_s=elapsed,
            profile_info=profile_info,
        )
        sink.emit(metrics.snapshot(extra=summary.to_dict()))
        print(f"ledger: {sink.last_path}")
    if args.verify:
        from .core.instance import Instance
        from .core.simulation import simulate

        streamed = engine.result()
        batch = simulate(
            registry[args.algorithm](),
            Instance(list(streamed.items), reassign_uids=False),
            capacity=args.capacity,
        )
        delta = abs(batch.cost - summary.cost)
        ok = (
            delta <= 1e-9
            and batch.max_open == summary.max_open
            and streamed.assignment == batch.assignment
        )
        print(
            f"parity vs simulate(): Δcost={delta:g}, "
            f"max_open {batch.max_open} vs {summary.max_open} -> "
            + ("ok" if ok else "MISMATCH")
        )
        if not ok:
            return 1
    return 0


def _serve(args) -> int:
    import asyncio

    from .parallel import ALGORITHM_REGISTRY, _registry
    from .serve import PlacementServer, ServeConfig

    if args.mode == "top":
        return _serve_top(args)
    if args.algorithm not in _registry():
        print(
            f"unknown algorithm {args.algorithm!r}; options: "
            + ", ".join(ALGORITHM_REGISTRY),
            file=sys.stderr,
        )
        return 1
    config = ServeConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        algorithm=args.algorithm,
        capacity=args.capacity,
        indexed=not args.no_index,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        metrics=not args.no_metrics,
        ledger_dir=_ledger_dir(args),
        telemetry=args.telemetry or args.trace_out is not None,
        trace_sample=args.trace_sample,
        telemetry_seed=args.telemetry_seed,
        trace_out=args.trace_out,
        sample_hz=args.sample_hz,
        profile_out=args.profile_out
        or ("serve.prof.json" if args.sample_hz > 0 else None),
    )

    import gc

    async def _main() -> None:
        server = PlacementServer(config)
        await server.start()
        # tail-latency hygiene: startup objects (registry, modules, the
        # shards themselves) never die, so take them out of every future
        # collection and make young-gen sweeps rarer
        gc.collect()
        gc.freeze()
        gc.set_threshold(50_000, 50, 50)
        resumed = [
            s.shard_id for s in server.shards
            if s.engine.accounting.arrivals > 0
        ]
        print(
            f"serving {config.algorithm} on {config.host}:{server.port} "
            f"({config.shards} shard(s)"
            + (f", resumed {len(resumed)} from checkpoint" if resumed else "")
            + ")",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        import signal as _signal

        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server._request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.drained.wait()
        totals = server.totals()
        print(
            f"drained: {totals['requests']} requests "
            f"({totals['accepted']} accepted, {totals['errors']} errors), "
            f"cost={totals['cost']:g}"
        )
        if config.checkpoint_dir is not None:
            print(f"checkpoints: {config.checkpoint_dir}")
        path = getattr(server, "ledger_path", None)
        if path is not None:
            print(f"ledger: {path}")
        if config.trace_out is not None:
            print(f"trace: {config.trace_out}")
        if server.profile_path is not None:
            print(f"profile: {server.profile_path}")

    asyncio.run(_main())
    return 0


def _render_top(stats: dict, snap: dict, prev, *, interval: float) -> str:
    """One refresh frame of the ``serve top`` view.

    Rates are deltas against ``prev`` (the previous snapshot) over the
    refresh interval; the first frame falls back to lifetime averages.
    """
    up = snap.get("uptime_s", 0.0)
    totals = stats.get("totals", {})
    lines = [
        f"serve top: uptime {up:.1f}s  requests {totals.get('requests', 0)}  "
        f"accepted {totals.get('accepted', 0)}  "
        f"errors {totals.get('errors', 0)}  "
        f"sample {snap.get('sample', 0.0):g}  "
        f"spans {snap.get('trace', {}).get('recorded', 0)}",
        f"  {'shard':>5s} {'req/s':>9s} {'err':>6s} {'p50_ms':>8s} "
        f"{'p99_ms':>8s} {'queue':>6s} {'infl':>5s} {'batch':>6s}",
    ]
    prev_shards = (prev or {}).get("per_shard", [])
    for k, shard in enumerate(snap.get("per_shard", [])):
        counters = shard.get("counters", {})
        gauges = shard.get("gauges", {})
        quantiles = shard.get("quantiles", {})
        requests = counters.get("requests", 0)
        if k < len(prev_shards) and interval > 0:
            before = prev_shards[k].get("counters", {}).get("requests", 0)
            rate = (requests - before) / interval
        else:
            rate = requests / up if up > 0 else 0.0
        batch = shard.get("histograms", {}).get("batch_size", {})
        lines.append(
            f"  {k:>5d} {rate:>9.1f} {counters.get('errors', 0):>6d} "
            f"{1e3 * quantiles.get('p50_s', 0.0):>8.3f} "
            f"{1e3 * quantiles.get('p99_s', 0.0):>8.3f} "
            f"{gauges.get('queue_depth', {}).get('value', 0):>6.0f} "
            f"{gauges.get('inflight', {}).get('value', 0):>5.0f} "
            f"{batch.get('mean', 0.0):>6.2f}"
        )
    return "\n".join(lines)


def _serve_top(args) -> int:
    """Attach to a running server and render its live telemetry."""
    import asyncio

    from .serve import PlacementClient, render_service_prometheus

    if not args.port:
        print("serve top: --port is required", file=sys.stderr)
        return 1

    async def _snapshot(client):
        reply = await client.telemetry()
        if not reply.get("ok") or reply.get("snapshot") is None:
            print(
                "serve top: the server has telemetry disabled "
                "(restart it with --telemetry)",
                file=sys.stderr,
            )
            return None
        return reply["snapshot"]

    async def _main() -> int:
        client = await PlacementClient.connect(args.host, args.port)
        try:
            if args.prometheus:
                snap = await _snapshot(client)
                if snap is None:
                    return 1
                print(render_service_prometheus(snap), end="")
                return 0
            prev = None
            frames = 0
            while True:
                stats = await client.stats()
                snap = await _snapshot(client)
                if snap is None:
                    return 1
                print(
                    _render_top(stats, snap, prev, interval=args.interval),
                    flush=True,
                )
                prev = snap
                frames += 1
                if args.iterations and frames >= args.iterations:
                    return 0
                await asyncio.sleep(args.interval)
        finally:
            await client.aclose()

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"serve top: {exc}", file=sys.stderr)
        return 1


def _loadgen(args) -> int:
    import asyncio
    import json as _json

    from .serve.loadgen import WORKLOADS, make_workload, run_loadgen

    if args.list_workloads:
        for name in sorted(WORKLOADS):
            print(name)
        return 0
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; options: "
            + ", ".join(sorted(WORKLOADS)),
            file=sys.stderr,
        )
        return 1
    instance = make_workload(args.workload, args.items, args.seed)
    try:
        report = asyncio.run(
            run_loadgen(
                args.host,
                args.port,
                instance=instance,
                rate=args.rate,
                connections=args.connections,
                workload=args.workload,
                trace=args.trace,
            )
        )
    except (ConnectionError, OSError, ValueError) as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}")
    ledger_dir = _ledger_dir(args)
    if ledger_dir is not None:
        from .obs.ledger import LedgerSink

        sink = LedgerSink(
            kind="loadgen",
            algorithm=str(report.server_stats.get("algorithm", "?"))
            if report.server_stats
            else "?",
            generator=args.workload,
            config={
                "items": args.items,
                "rate": args.rate,
                "connections": args.connections,
                "trace": args.trace,
            },
            seed=args.seed,
            ledger_dir=ledger_dir,
        )
        sink.emit(report.ledger_snapshot())
        print(f"ledger: {sink.last_path}")
    return 0


def _chaos(args) -> int:
    import json as _json

    from .testkit import (
        FaultPlan,
        generate_plan,
        minimize,
        run_chaos,
        write_artifact,
    )

    overrides = {"disable_dedup": True} if args.dedup_off else {}
    if args.replay:
        try:
            with open(args.replay) as fh:
                obj = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"chaos: cannot read {args.replay}: {exc}",
                  file=sys.stderr)
            return 1
        # a failure artifact carries both plans; replay the minimal one
        if "minimized_plan" in obj:
            obj = obj["minimized_plan"]
        elif "plan" in obj:
            obj = obj["plan"]
        plans = [FaultPlan.from_dict(obj)]
        for key, value in overrides.items():
            setattr(plans[0], key, value)
    else:
        seeds = range(args.seed, args.seed + max(1, args.schedules))
        plans = [generate_plan(seed, **overrides) for seed in seeds]

    failed = 0
    results = []
    for plan in plans:
        report = run_chaos(plan)
        print(report.summary())
        results.append(report.to_dict())
        if report.ok:
            continue
        failed += 1
        if args.minimize:
            minimal, min_fails, trials = minimize(plan, log=print)
            path = write_artifact(
                plan,
                minimal,
                report.failures,
                ledger_dir=getattr(args, "ledger_dir", None),
                minimized_failures=min_fails,
                trials=trials,
            )
            print(f"minimized after {trials} trial(s) -> {path}")
    print(f"chaos: {len(plans) - failed}/{len(plans)} schedule(s) passed")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"reports written to {args.json}")
    return 1 if failed else 0


def _obs(args) -> int:
    if args.obs_command == "summarize":
        from .obs import summarize_trace

        try:
            print(summarize_trace(args.trace, top=args.top))
        except (OSError, ValueError) as exc:
            print(f"obs summarize: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.obs_command == "flame":
        from .obs.prof import (
            Profile,
            render_top,
            to_collapsed,
            write_speedscope,
        )

        try:
            profile = Profile.read(args.profile)
        except (OSError, ValueError) as exc:
            print(f"obs flame: {exc}", file=sys.stderr)
            return 1
        if profile.samples == 0:
            print(f"obs flame: {args.profile} holds no samples",
                  file=sys.stderr)
            return 1
        print(render_top(profile, top=args.top))
        if args.collapsed:
            with open(args.collapsed, "w") as fh:
                fh.write(to_collapsed(profile))
            print(f"collapsed stacks -> {args.collapsed}")
        if args.speedscope:
            write_speedscope(profile, args.speedscope, name=args.profile)
            print(f"speedscope profile -> {args.speedscope}")
        return 0
    if args.obs_command == "critical-path":
        import json as _json

        from .obs.prof import analyze_trace

        try:
            report = analyze_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"obs critical-path: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        if args.json:
            with open(args.json, "w") as fh:
                _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"report written to {args.json}")
        return 0
    if args.obs_command == "diff":
        from .obs.ledger import (
            diff_records,
            parse_tolerances,
            read_record,
            render_drifts,
        )

        try:
            tol = parse_tolerances(args.tol or [])
            record_a = read_record(args.record_a)
            record_b = read_record(args.record_b)
        except (OSError, ValueError) as exc:
            print(f"obs diff: {exc}", file=sys.stderr)
            return 1
        drifts = diff_records(record_a, record_b, tol)
        for line in render_drifts(drifts):
            print(line)
        bad = [d for d in drifts if not d.ok]
        print(
            f"diff: {len(drifts)} metrics, "
            + ("all within tolerance" if not bad else f"{len(bad)} drifted")
        )
        return 0 if not bad else 1
    if args.obs_command == "regress":
        from .obs.ledger import (
            parse_tolerances,
            read_baseline,
            read_ledger,
            regress,
            resolve_ledger_dir,
        )

        ledger_dir = resolve_ledger_dir(args.ledger_dir)
        baseline_path = args.baseline or (ledger_dir / "baseline.json")
        try:
            tol = parse_tolerances(args.tol or [])
            current = read_ledger(ledger_dir)
            baseline = read_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"obs regress: {exc}", file=sys.stderr)
            return 1
        report = regress(current, baseline, tol)
        print(report.render())
        return 0 if report.ok else 1
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
