"""Command-line interface: ``repro-dbp`` (or ``python -m repro``).

Subcommands::

    repro-dbp list                 # list all registered experiments
    repro-dbp run T1.GEN.UB ...    # run specific experiments by id
    repro-dbp table1               # the four Table 1 rows
    repro-dbp figures              # Figures 1-3
    repro-dbp lemmas               # lemma validations
    repro-dbp all                  # everything
    repro-dbp demo                 # a 10-second guided tour
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Sequence

from .experiments import EXPERIMENTS

_GROUPS = {
    "table1": ["T1.GEN.UB", "T1.GEN.LB", "T1.ALIGN.UB", "T1.NC"],
    "figures": ["FIG1", "FIG2", "FIG3"],
    "lemmas": ["LEM3.1", "LEM3.3", "LEM3.5", "COR3.4", "THM4.2",
               "LEM5.5", "LEM5.12"],
    "binary": ["COR5.8", "LEM5.9", "PROP5.3"],
    "ablations": ["ABL.THRESH", "ABL.ANYFIT", "ABL.ROWS"],
    "growth": ["GROWTH"],
    "extensions": ["OBJ.MOTIVATION", "EXT.GREEDY", "EXT.SHALOM", "EXT.AUGMENT",
                   "EXT.NRGAP", "EXT.ADAPT", "EXT.RANDOM", "OPEN.ALIGN",
                   "OPEN.GEN"],
}


def _run(ids: Iterable[str]) -> int:
    failures = 0
    for eid in ids:
        fn = EXPERIMENTS.get(eid)
        if fn is None:
            print(f"unknown experiment id: {eid}", file=sys.stderr)
            failures += 1
            continue
        result = fn()
        print(result.render())
        if not result.passed:
            failures += 1
    return failures


def _demo() -> int:
    from . import (
        CDFF,
        FirstFit,
        HybridAlgorithm,
        binary_input,
        opt_reference,
        simulate,
        uniform_random,
    )

    inst = uniform_random(150, 64, seed=42)
    print(f"random instance: {inst!r}")
    for alg in (FirstFit(), HybridAlgorithm()):
        res = simulate(alg, inst)
        print(f"  {res.algorithm:16s} cost={res.cost:9.2f} bins={res.n_bins}")
    opt = opt_reference(inst, max_exact=18)
    print(f"  OPT_R ∈ [{opt.lower:.2f}, {opt.upper:.2f}]")
    sig = binary_input(64)
    res = simulate(CDFF(), sig)
    print(f"σ_64: CDFF cost={res.cost:g} (OPT_R = 64); ratio={res.cost/64:.3f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dbp",
        description="Reproduction harness for 'Tight Bounds for Clairvoyant "
        "Dynamic Bin Packing' (SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiment ids")
    runp = sub.add_parser("run", help="run experiments by id")
    runp.add_argument("ids", nargs="+", metavar="EXPERIMENT_ID")
    for group in _GROUPS:
        sub.add_parser(group, help=f"run the {group} experiments")
    sub.add_parser("all", help="run every registered experiment")
    sub.add_parser("demo", help="a quick guided tour")
    sub.add_parser("curves", help="growth curves as ASCII charts")
    reportp = sub.add_parser(
        "report", help="run experiments and write a Markdown report"
    )
    reportp.add_argument("-o", "--output", default="REPORT.md")
    reportp.add_argument(
        "ids", nargs="*", metavar="EXPERIMENT_ID",
        help="subset to run (default: everything)",
    )
    packp = sub.add_parser(
        "pack", help="pack a CSV trace with a chosen algorithm"
    )
    packp.add_argument(
        "csv", nargs="?", help="instance file (arrival,departure,size)"
    )
    packp.add_argument(
        "-a", "--algorithm", default="HybridAlgorithm",
        help="algorithm name (see --list-algorithms)",
    )
    packp.add_argument("--capacity", type=float, default=1.0)
    packp.add_argument(
        "--render", action="store_true", help="draw the packing (ASCII)"
    )
    packp.add_argument(
        "--list-algorithms", action="store_true",
        help="print available algorithm names and exit",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        for eid in sorted(EXPERIMENTS):
            print(eid)
        return 0
    if args.command == "demo":
        return _demo()
    if args.command == "curves":
        from .experiments.curves import growth_charts

        print(growth_charts())
        return 0
    if args.command == "report":
        from .experiments.report import generate_report

        text = generate_report(args.ids or None, out_path=args.output)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
        return 0
    if args.command == "pack":
        return _pack(args)
    if args.command == "run":
        return _run(args.ids)
    if args.command == "all":
        return _run(sorted(EXPERIMENTS))
    return _run(_GROUPS[args.command])


def _pack(args) -> int:
    from .parallel import ALGORITHM_REGISTRY, _registry

    if args.list_algorithms:
        for name in ALGORITHM_REGISTRY:
            print(name)
        return 0
    if not args.csv:
        print("pack: a CSV path is required (or --list-algorithms)",
              file=sys.stderr)
        return 1
    registry = _registry()
    if args.algorithm not in registry:
        print(
            f"unknown algorithm {args.algorithm!r}; options: "
            + ", ".join(ALGORITHM_REGISTRY),
            file=sys.stderr,
        )
        return 1
    from .core.simulation import simulate
    from .core.validate import audit
    from .offline.optimal import opt_reference
    from .workloads.io import load_csv

    instance = load_csv(args.csv)
    result = simulate(registry[args.algorithm](), instance,
                      capacity=args.capacity)
    audit(result)
    st = instance.stats
    print(
        f"{args.csv}: {st.n_items} items, μ={st.mu:g}, span={st.span:g}, "
        f"demand={st.demand:g}"
    )
    print(
        f"{result.algorithm}: cost={result.cost:g} bins={result.n_bins} "
        f"max_open={result.max_open}"
    )
    if args.capacity == 1.0:
        opt = opt_reference(instance, max_exact=16)
        print(f"OPT_R ∈ [{opt.lower:g}, {opt.upper:g}]  "
              f"→ certified ratio ≤ {result.cost / opt.lower:.3f}")
    if args.render:
        from .viz.ascii import render_packing

        print(render_packing(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
