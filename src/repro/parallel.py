"""Parallel execution helpers for experiment sweeps.

Competitive-ratio sweeps are embarrassingly parallel across (μ, seed)
cells; this module wraps :mod:`concurrent.futures` with the conventions
the rest of the package needs:

- ``workers=1`` (the default) runs serially in-process — determinism and
  debuggability first, parallelism opt-in (per the optimisation guide:
  measure before you parallelise);
- tasks must be picklable: module-level functions and instances built
  from frozen dataclasses qualify; lambdas do not — :func:`ratio_task`
  is provided as a picklable work item for the common case.

Example::

    from repro.parallel import parallel_map, ratio_task
    cells = [("FirstFit", inst1), ("HybridAlgorithm", inst2)]
    ratios = parallel_map(ratio_task, cells, workers=4)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from .core.instance import Instance

__all__ = ["parallel_map", "ratio_task", "ALGORITHM_REGISTRY"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    ``workers=1`` runs serially (no pool, exact tracebacks); ``workers>1``
    uses a process pool, requiring ``fn`` and the items to be picklable.
    Results are returned in input order either way.
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    if workers == 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _registry() -> dict:
    from .algorithms import (
        CDFF,
        BestFit,
        ClassifyByDuration,
        FirstFit,
        HybridAlgorithm,
        LastFit,
        LeastExpansion,
        NextFit,
        StaticRowsCDFF,
        WorstFit,
    )

    return {
        "FirstFit": FirstFit,
        "BestFit": BestFit,
        "WorstFit": WorstFit,
        "LastFit": LastFit,
        "NextFit": NextFit,
        "ClassifyByDuration": ClassifyByDuration,
        "HybridAlgorithm": HybridAlgorithm,
        "CDFF": CDFF,
        "StaticRowsCDFF": StaticRowsCDFF,
        "LeastExpansion": LeastExpansion,
    }


#: names accepted by :func:`ratio_task`
ALGORITHM_REGISTRY = tuple(sorted(_registry()))


def ratio_task(cell: tuple[str, Instance]) -> float:
    """Picklable work item: ``(algorithm name, instance) → certified ratio``.

    The ratio is ``ALG / OPT_R-lower`` (a certified upper estimate), the
    convention of the upper-bound experiments.
    """
    name, instance = cell
    registry = _registry()
    if name not in registry:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {ALGORITHM_REGISTRY}"
        )
    from .core.simulation import simulate
    from .offline.optimal import opt_reference

    result = simulate(registry[name](), instance)
    opt = opt_reference(instance, max_exact=16)
    return result.cost / opt.lower if opt.lower > 0 else float("inf")
