"""Parallel execution helpers for experiment sweeps.

Competitive-ratio sweeps are embarrassingly parallel across (μ, seed)
cells; this module wraps :mod:`concurrent.futures` with the conventions
the rest of the package needs:

- ``workers=1`` (the default) runs serially in-process — determinism and
  debuggability first, parallelism opt-in (per the optimisation guide:
  measure before you parallelise);
- tasks must be picklable: module-level functions and instances built
  from frozen dataclasses qualify; lambdas do not — :func:`ratio_task`,
  :func:`replay_task` and :func:`repro.engine.parity.parity_task` are
  provided as picklable work items for the common cases.

Example::

    from repro.parallel import parallel_map, ratio_task
    cells = [("FirstFit", inst1), ("HybridAlgorithm", inst2)]
    ratios = parallel_map(ratio_task, cells, workers=4)

Every task runs the shared :class:`~repro.core.kernel.PlacementKernel`
(via ``simulate()`` or the streaming engine), so per-cell results are
identical whether a sweep runs serially or across processes.
"""

from __future__ import annotations

import pathlib
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from .core.instance import Instance

__all__ = [
    "parallel_map",
    "ratio_task",
    "replay_task",
    "replay_sharded",
    "ALGORITHM_REGISTRY",
]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    ``workers=1`` runs serially (no pool, exact tracebacks); ``workers>1``
    uses a process pool, requiring ``fn`` and the items to be picklable.
    Results are returned in input order either way.

    ``chunksize`` defaults to ``max(1, len(items) // (4 * workers))`` —
    large enough to amortise pickling, small enough to load-balance
    uneven cells.

    When the platform cannot start a process pool at all (sandboxed or
    no-fork environments raise ``OSError``/``PermissionError`` at fork
    time), the map **falls back to serial execution** with a warning
    instead of crashing; sweeps then still complete, just without the
    speedup.  Exceptions raised by ``fn`` itself are never swallowed.
    """
    if workers < 1:
        raise ValueError(f"workers must be ≥ 1, got {workers}")
    items = list(items)
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * workers))
    if workers == 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, BrokenProcessPool, NotImplementedError) as exc:
        warnings.warn(
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]


def _registry() -> dict:
    from .algorithms import (
        CDFF,
        BestFit,
        ClassifyByDuration,
        FirstFit,
        HybridAlgorithm,
        LastFit,
        LeastExpansion,
        NextFit,
        StaticRowsCDFF,
        WorstFit,
    )

    return {
        "FirstFit": FirstFit,
        "BestFit": BestFit,
        "WorstFit": WorstFit,
        "LastFit": LastFit,
        "NextFit": NextFit,
        "ClassifyByDuration": ClassifyByDuration,
        "HybridAlgorithm": HybridAlgorithm,
        "CDFF": CDFF,
        "StaticRowsCDFF": StaticRowsCDFF,
        "LeastExpansion": LeastExpansion,
    }


#: names accepted by :func:`ratio_task`
ALGORITHM_REGISTRY = tuple(sorted(_registry()))


def ratio_task(cell: tuple[str, Instance]) -> float:
    """Picklable work item: ``(algorithm name, instance) → certified ratio``.

    The ratio is ``ALG / OPT_R-lower`` (a certified upper estimate), the
    convention of the upper-bound experiments.
    """
    name, instance = cell
    registry = _registry()
    if name not in registry:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {ALGORITHM_REGISTRY}"
        )
    from .core.simulation import simulate
    from .offline.optimal import opt_reference

    result = simulate(registry[name](), instance)
    opt = opt_reference(instance, max_exact=16)
    return result.cost / opt.lower if opt.lower > 0 else float("inf")


# ---------------------------------------------------------------------- #
# Sharded streaming replay (the engine's multi-worker entry point)
# ---------------------------------------------------------------------- #
def replay_task(cell: tuple) -> dict:
    """Picklable work item: ``(algorithm name, trace path) → summary dict``.

    Streams the trace file through a fresh
    :class:`~repro.engine.loop.Engine` in constant memory; the returned
    dict is :meth:`~repro.engine.loop.EngineSummary.to_dict`.  An
    optional third cell element (bool) disables the kernel's open-bin
    index (``indexed=False``, the linear-scan fallback); an optional
    fourth element (bool) attaches an
    :class:`~repro.engine.metrics.EngineMetrics` and returns it (they
    pickle, so they travel back across the process pool) under the
    ``"metrics"`` key for :func:`replay_sharded` to merge.
    """
    name, path = cell[0], cell[1]
    indexed = cell[2] if len(cell) > 2 else True
    with_metrics = cell[3] if len(cell) > 3 else False
    registry = _registry()
    if name not in registry:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {ALGORITHM_REGISTRY}"
        )
    from .engine import Engine, EngineMetrics, open_trace

    metrics = EngineMetrics() if with_metrics else None
    engine = Engine(registry[name](), indexed=indexed, metrics=metrics)
    out = engine.run(open_trace(path)).to_dict()
    if with_metrics:
        out["metrics"] = metrics
    return out


def replay_sharded(
    paths: Sequence[Union[str, pathlib.Path]],
    algorithm: str = "HybridAlgorithm",
    *,
    workers: int = 1,
    indexed: bool = True,
    metrics: bool = False,
) -> dict:
    """Replay many trace shards, one independent engine per shard.

    Each shard is packed in isolation (its own algorithm instance and
    bins), so the aggregate cost is the sum over shards — the standard
    scale-out regime where traffic is partitioned across machines.  Use
    :func:`repro.engine.stream.merge` instead when shards must share
    bins.

    With ``metrics=True`` every shard records an
    :class:`~repro.engine.metrics.EngineMetrics`; the per-shard
    registries are merged (exactly for counters/histograms, global
    min/max for timings) into one fleet-wide snapshot returned under
    the ``"metrics"`` key.

    Returns the aggregated totals plus the per-shard summaries.
    """
    cells = [(algorithm, str(p), indexed, metrics) for p in paths]
    shards = parallel_map(replay_task, cells, workers=workers)
    merged = None
    if metrics:
        from .engine import EngineMetrics, merge_metrics

        merged = merge_metrics(
            (s.pop("metrics") for s in shards), into=EngineMetrics()
        )
    out = {
        "algorithm": algorithm,
        "shards": shards,
        "n_shards": len(shards),
        "items": sum(s["items"] for s in shards),
        "cost": sum(s["cost"] for s in shards),
        "bins_opened": sum(s["bins_opened"] for s in shards),
        "max_open": sum(s["max_open"] for s in shards),
    }
    if merged is not None:
        out["metrics"] = merged.snapshot()
    return out
