"""The non-clairvoyant Ω(μ) adversary (Table 1, row 3; Li et al. [7]).

In the non-clairvoyant setting departure times are revealed only at
departure, so an *adaptive* adversary may decide them after watching where
the algorithm packed each item.  The classical construction (implemented in
the style of Li et al.):

1. at time 0, release ``g²`` items of size ``1/g`` with *unknown*
   departures — any algorithm must spread them over at least ``g`` bins;
2. in every bin the algorithm opened, pick one *survivor*; depart all other
   items at time 1;
3. depart the survivors at time μ.

The algorithm is stuck with ``≥ g`` bins open until μ (it cannot repack),
paying ``≥ g·μ``; the offline optimum packs the ``b ≤ g²/g…`` survivors
into ``⌈b/g⌉`` bins and everything else into short-lived bins, paying
``O(⌈b/g⌉·μ + g)``.  With ``g = μ`` the ratio is ``Ω(μ)`` — matching the
``μ + 4`` upper bound of First-Fit [13] up to constants.

This demonstrates the Table 1 row; it is not a re-proof of [7]'s bound for
every algorithm (DESIGN.md §4, substitution 3).
"""

from __future__ import annotations

from ..core.errors import SimulationError
from ..core.item import Item
from .base import AdaptiveAdversary

__all__ = ["NonClairvoyantAdversary"]


class NonClairvoyantAdversary(AdaptiveAdversary):
    """Adaptive-departure adversary forcing Ω(min(g, μ)).

    Parameters
    ----------
    g:
        Granularity: item size is ``1/g`` and ``g²`` items are released.
    mu:
        Final max/min length ratio (survivors live ``[0, μ]``, the rest
        ``[0, 1]``).
    """

    def __init__(self, g: int, mu: float) -> None:
        if g < 1:
            raise ValueError("g must be a positive integer")
        if mu <= 1:
            raise ValueError("μ must exceed 1")
        self.g = g
        self.mu = float(mu)
        self.name = f"NonClairvoyantAdversary(g={g}, mu={mu:g})"

    def drive(self, sim) -> None:
        if getattr(sim.algorithm, "clairvoyant", True):
            raise SimulationError(
                "the non-clairvoyant adversary requires a non-clairvoyant "
                "algorithm (items have undetermined departures)"
            )
        g = self.g
        size = 1.0 / g
        placements: dict[int, int] = {}
        for uid in range(g * g):
            b = sim.release(Item(0.0, None, size, uid=uid))
            placements[uid] = b.uid
        # one survivor per open bin: the first item the bin received
        survivors: set[int] = set()
        seen_bins: set[int] = set()
        for uid in range(g * g):
            b = placements[uid]
            if b not in seen_bins:
                seen_bins.add(b)
                survivors.add(uid)
        for uid in range(g * g):
            if uid not in survivors:
                sim.depart(uid, 1.0)
        for uid in sorted(survivors):
            sim.depart(uid, self.mu)
