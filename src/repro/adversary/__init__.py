"""Adaptive adversaries: the paper's lower bound and the cited Ω(μ) one."""

from .base import AdaptiveAdversary, AdversaryOutcome, realized_instance
from .nonclairvoyant import NonClairvoyantAdversary
from .sqrt_log import SqrtLogAdversary

__all__ = [
    "AdaptiveAdversary",
    "AdversaryOutcome",
    "realized_instance",
    "SqrtLogAdversary",
    "NonClairvoyantAdversary",
]
