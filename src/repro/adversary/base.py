"""Adaptive adversary framework.

An adaptive adversary constructs its input *while* the online algorithm
runs, reacting to the algorithm's observable state (its open bins).  This
is exactly the model behind the paper's lower bound (Theorem 4.3): "release
a prefix of σ*_t and stop as soon as ON opens √log μ bins".

Adversaries drive a recording :class:`~repro.core.kernel.PlacementKernel`
directly — the same kernel behind both the batch simulator and the
streaming engine, exposing the full
:class:`~repro.algorithms.base.SimulationView` surface plus
``release``/``depart``/``run_until`` — and return an
:class:`AdversaryOutcome` bundling the algorithm's audited result with the
instance the adversary ended up generating, so the experiments can feed
that same instance to the offline oracles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.instance import Instance
from ..core.item import Item
from ..core.result import PackingResult
from ..core.validate import audit

__all__ = ["AdaptiveAdversary", "AdversaryOutcome", "realized_instance"]


def realized_instance(result: PackingResult) -> Instance:
    """The instance the adversary generated, with *actual* departures.

    Items released with unknown departures get the departure time the
    adversary eventually chose; the resulting instance is what OPT is
    evaluated on.
    """
    items = []
    for it in result.items:
        arrival, departure = result.true_interval(it.uid)
        items.append(Item(arrival, departure, it.size, uid=it.uid))
    items.sort(key=lambda x: (x.arrival, x.uid))
    return Instance(items, reassign_uids=False)


@dataclass(frozen=True)
class AdversaryOutcome:
    """What an adversary run produced."""

    result: PackingResult  #: the online algorithm's audited packing
    instance: Instance  #: the generated input with realised departures

    @property
    def online_cost(self) -> float:
        return self.result.cost


class AdaptiveAdversary(ABC):
    """Base class: subclasses implement :meth:`drive`."""

    name: str = "adversary"

    @abstractmethod
    def drive(self, sim) -> None:
        """Release items (and schedule departures) against ``sim``."""

    def run(self, algorithm, *, capacity: float = 1.0, verify: bool = True
            ) -> AdversaryOutcome:
        """Play against ``algorithm`` and return the audited outcome."""
        from ..core.kernel import PlacementKernel

        sim = PlacementKernel(algorithm, capacity=capacity, record=True)
        self.drive(sim)
        result = sim.finish()
        if verify:
            audit(result)
        return AdversaryOutcome(result=result, instance=realized_instance(result))
