"""The Ω(√log μ) adversary of Theorem 4.3.

For each round ``t_i = i``, ``i = 0 … μ−1``, the adversary releases a
*prefix* of Definition 4.1's σ*_{t_i} — items of lengths
``1, 2, 4, …, 2^{log μ}``, shortest first, each of load ``1/√(log μ)`` —
and stops the round as soon as the online algorithm has ``⌈√(log μ)⌉``
bins open.  A full σ*_t carries total load ``(log μ + 1)/√log μ > √log μ``,
so the stopping condition always triggers within a round.

The proof shows (inequalities (1)–(4)) that the online cost is at least
``μ√log μ`` while ``OPT_R ≤ 8/√log μ · ON``; through the Dual-Coloring
4-approximation the same holds against OPT_NR up to constants.  The
T1.GEN.LB experiment replays this against every implemented algorithm and
reports ratios against the exact OPT_R oracle and the DC stand-in.
"""

from __future__ import annotations

import math

from ..core.item import Item
from .base import AdaptiveAdversary

__all__ = ["SqrtLogAdversary"]


class SqrtLogAdversary(AdaptiveAdversary):
    """Theorem 4.3's adversary for a given power-of-two μ.

    Parameters
    ----------
    mu:
        The targeted max/min length ratio (power of two ≥ 2); the number of
        rounds is μ and lengths go up to μ.
    rounds:
        Optionally fewer rounds than μ (the full μ rounds make the span
        term negligible; fewer rounds run faster and still expose the
        per-round forcing).
    """

    def __init__(self, mu: int, *, rounds: int | None = None) -> None:
        if mu < 2 or (mu & (mu - 1)) != 0:
            raise ValueError(f"μ must be a power of two ≥ 2, got {mu}")
        self.mu = mu
        self.n = int(math.log2(mu))
        self.rounds = rounds if rounds is not None else mu
        if self.rounds < 1:
            raise ValueError("need at least one round")
        self.load = min(1.0, 1.0 / math.sqrt(self.n)) if self.n > 0 else 1.0
        self.target_bins = max(1, math.ceil(math.sqrt(self.n)))
        self.name = f"SqrtLogAdversary(mu={mu})"
        #: lengths of the last item released in each round (the proof's l_{t_i})
        self.last_lengths: list[float] = []

    def drive(self, sim) -> None:
        uid = 0
        self.last_lengths = []
        for i in range(self.rounds):
            t = float(i)
            sim.run_until(t)
            last = 0.0
            for k in range(self.n + 1):
                if sim.open_bin_count >= self.target_bins:
                    break
                length = float(2**k)
                sim.release(Item(t, t + length, self.load, uid=uid))
                uid += 1
                last = length
            self.last_lengths.append(last)

    def online_cost_lower_bound(self) -> float:
        """Inequality (2): ``Σ_i l_{t_i} ≤ ON(σ)`` — the proof's certified
        floor on the online cost, computable from the released sequence."""
        return sum(self.last_lengths)
