"""Randomised search for hard (oblivious) instances."""

from .hardening import InstanceSearch, SearchOutcome, certified_ratio
from .mutators import (
    aligned_mutator,
    aligned_sampler,
    general_mutator,
    general_sampler,
)

__all__ = [
    "InstanceSearch",
    "SearchOutcome",
    "certified_ratio",
    "aligned_sampler",
    "aligned_mutator",
    "general_sampler",
    "general_mutator",
]
