"""Randomised search for hard instances (hill climbing with restarts).

The paper's lower bounds are *adaptive* adversaries; a complementary
empirical tool is searching the space of *oblivious* (fixed) instances for
ones that maximise a given algorithm's competitive ratio.  This module
provides a small, generic local-search harness used by the OPEN.ALIGN and
OPEN.GEN experiments:

- an :class:`InstanceSearch` owns a *sampler* (fresh random instance), a
  *mutator* (local perturbation) and an *objective* (the certified ratio
  of the algorithm under study);
- :meth:`InstanceSearch.run` performs restarts × steps of first-improvement
  hill climbing and returns the best instance found with its score.

Scores use ``ALG / OPT_R-upper`` — a *certified floor* on the true ratio —
so anything the search reports is a real lower-bound witness, never an
artefact of a loose OPT estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.instance import Instance
from ..core.simulation import simulate
from ..offline.optimal import opt_reference

__all__ = ["InstanceSearch", "SearchOutcome", "certified_ratio"]


def certified_ratio(
    algorithm_factory: Callable[[], object],
    instance: Instance,
    *,
    max_exact: int = 12,
) -> float:
    """``ALG(σ) / OPT_R-upper(σ)`` — a certified floor on the true ratio."""
    result = simulate(algorithm_factory(), instance)
    opt = opt_reference(instance, max_exact=max_exact)
    if opt.upper <= 0:
        return 0.0
    return result.cost / opt.upper


@dataclass(frozen=True)
class SearchOutcome:
    """Best witness found by one search run."""

    instance: Instance
    score: float
    evaluations: int


class InstanceSearch:
    """First-improvement hill climbing over instances.

    Parameters
    ----------
    sampler:
        ``rng -> Instance`` producing a fresh random starting point.
    mutator:
        ``(Instance, rng) -> Instance`` producing a local perturbation.
    objective:
        ``Instance -> float``; higher is harder.  Must be a *certified*
        quantity if the outcome is to be treated as a witness.
    """

    def __init__(
        self,
        sampler: Callable[[np.random.Generator], Instance],
        mutator: Callable[[Instance, np.random.Generator], Instance],
        objective: Callable[[Instance], float],
    ) -> None:
        self.sampler = sampler
        self.mutator = mutator
        self.objective = objective

    def run(
        self,
        *,
        restarts: int = 4,
        steps: int = 50,
        seed: int = 0,
        patience: Optional[int] = None,
    ) -> SearchOutcome:
        """Hill-climb from ``restarts`` random starts; keep the best."""
        rng = np.random.default_rng(seed)
        best_inst: Optional[Instance] = None
        best_score = -np.inf
        evaluations = 0
        for _ in range(max(1, restarts)):
            inst = self.sampler(rng)
            score = self.objective(inst)
            evaluations += 1
            stale = 0
            for _ in range(max(0, steps)):
                cand = self.mutator(inst, rng)
                cand_score = self.objective(cand)
                evaluations += 1
                if cand_score > score + 1e-12:
                    inst, score = cand, cand_score
                    stale = 0
                else:
                    stale += 1
                    if patience is not None and stale >= patience:
                        break
            if score > best_score:
                best_inst, best_score = inst, score
        assert best_inst is not None
        return SearchOutcome(best_inst, float(best_score), evaluations)
