"""Samplers and mutators for the hard-instance search.

Two families:

- *aligned* (Definition 2.1 preserved by construction) — used by
  OPEN.ALIGN to probe CDFF;
- *general* (arbitrary arrivals, lengths in [1, μ]) — used by OPEN.GEN to
  probe HA and the baselines.

Mutators make one local move: resample a single item, duplicate an item
(creating load pressure at its window), or drop one.  All moves keep an
anchor item of length μ at time 0 so the instance's μ never shrinks.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..core.instance import Instance
from ..workloads.aligned import aligned_random
from ..workloads.random_general import uniform_random

__all__ = [
    "aligned_sampler",
    "aligned_mutator",
    "general_sampler",
    "general_mutator",
]


def aligned_sampler(
    mu: int, n_items: int, *, size_low: float = 0.3
) -> Callable[[np.random.Generator], Instance]:
    """A sampler of fresh random aligned instances (Definition 2.1)."""

    def sample(rng: np.random.Generator) -> Instance:
        return aligned_random(
            mu, n_items, seed=int(rng.integers(2**31)), size_low=size_low
        )

    return sample


def _aligned_item(mu: int, rng: np.random.Generator) -> tuple[float, float, float]:
    n = int(math.log2(mu))
    i = int(rng.integers(0, n + 1))
    width = 2**i
    c = int(rng.integers(0, mu // width))
    length = (
        float(rng.uniform(max(0.5001, width / 2), width))
        if width > 1
        else float(rng.uniform(0.5001, 1.0))
    )
    size = float(rng.uniform(0.3, 1.0))
    return (float(c * width), c * width + length, size)


def aligned_mutator(mu: int) -> Callable[[Instance, np.random.Generator], Instance]:
    """A local-move mutator that preserves alignment and the μ anchor."""

    def mutate(inst: Instance, rng: np.random.Generator) -> Instance:
        items = [(it.arrival, it.departure, it.size) for it in inst]
        move = rng.integers(3)
        if move == 0 and len(items) > 2:  # drop
            items.pop(int(rng.integers(len(items))))
        elif move == 1:  # duplicate (same window, new size)
            a, d, _ = items[int(rng.integers(len(items)))]
            items.append((a, d, float(rng.uniform(0.3, 1.0))))
        else:  # resample
            items[int(rng.integers(len(items)))] = _aligned_item(mu, rng)
        if not any(a == 0.0 and d >= mu for (a, d, s) in items):
            items.append((0.0, float(mu), 0.2))
        return Instance.from_tuples(items)

    return mutate


def general_sampler(
    mu: float, n_items: int
) -> Callable[[np.random.Generator], Instance]:
    """A sampler of fresh random general instances with the given μ."""

    def sample(rng: np.random.Generator) -> Instance:
        return uniform_random(
            n_items, mu, seed=int(rng.integers(2**31)), horizon=2.0 * mu
        )

    return sample


def _general_item(mu: float, rng: np.random.Generator) -> tuple[float, float, float]:
    a = float(rng.uniform(0, 2.0 * mu))
    length = float(np.exp(rng.uniform(0.0, np.log(mu))))
    size = float(rng.uniform(0.05, 1.0))
    return (a, a + length, size)


def general_mutator(mu: float) -> Callable[[Instance, np.random.Generator], Instance]:
    """A local-move mutator for general instances, keeping both μ anchors."""

    def mutate(inst: Instance, rng: np.random.Generator) -> Instance:
        items = [(it.arrival, it.departure, it.size) for it in inst]
        move = rng.integers(3)
        if move == 0 and len(items) > 3:
            items.pop(int(rng.integers(len(items))))
        elif move == 1:
            a, d, _ = items[int(rng.integers(len(items)))]
            items.append((a, d, float(rng.uniform(0.05, 1.0))))
        else:
            items[int(rng.integers(len(items)))] = _general_item(mu, rng)
        # keep the μ anchors
        if not any(a == 0.0 and abs((d - a) - mu) < 1e-9 for (a, d, s) in items):
            items.append((0.0, float(mu), 0.1))
        if not any(abs((d - a) - 1.0) < 1e-9 for (a, d, s) in items):
            items.append((0.0, 1.0, 0.1))
        return Instance.from_tuples(items)

    return mutate
