"""ASCII line charts for ratio-vs-μ curves.

No plotting library is available offline, so growth curves are rendered
as character charts: one column per μ value, series plotted with distinct
markers, a labelled y-axis, and the μ values along the x-axis.  Used by
the CLI's ``curves`` command and embeddable in the Markdown report.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 60,
    x_label: str = "μ",
    y_label: str = "ratio",
    title: str = "",
) -> str:
    """Render ``series`` (name → y values over ``x_values``) as text.

    X positions are spaced by index (μ sweeps are geometric, so index
    spacing *is* the log-μ axis).
    """
    if not series:
        return "(no series)\n"
    n = len(x_values)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {n} x-values"
            )
    all_y = [y for ys in series.values() for y in ys]
    y_min = min(all_y)
    y_max = max(all_y)
    if math.isclose(y_min, y_max):
        y_min, y_max = y_min - 0.5, y_max + 0.5
    pad = 0.05 * (y_max - y_min)
    y_min, y_max = y_min - pad, y_max + pad

    cols = max(n, min(width, 2 * width // max(1, n) * n))
    step = max(1, (cols - 1) // max(1, n - 1)) if n > 1 else 1
    used_width = step * (n - 1) + 1 if n > 1 else 1
    grid = [[" "] * used_width for _ in range(height)]

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return (height - 1) - min(height - 1, max(0, round(frac * (height - 1))))

    for k, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        for i, y in enumerate(ys):
            grid[to_row(y)][i * step] = marker

    lines = []
    if title:
        lines.append(title)
    label_w = 8
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max - pad:>{label_w}.2f} |"
        elif r == height - 1:
            label = f"{y_min + pad:>{label_w}.2f} |"
        else:
            label = " " * label_w + " |"
        lines.append(label + "".join(row))
    lines.append(" " * label_w + " +" + "-" * used_width)
    xticks = [" "] * (used_width + 8)  # room for the last tick's digits
    for i, x in enumerate(x_values):
        tick = f"{x:g}"
        pos = i * step
        for j, ch in enumerate(tick):
            if pos + j < len(xticks):
                xticks[pos + j] = ch
    lines.append(" " * (label_w + 2) + "".join(xticks) + f"   ({x_label})")
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {name}"
        for k, name in enumerate(series)
    )
    lines.append(f"{y_label}: {legend}")
    return "\n".join(lines) + "\n"
