"""ASCII visualisation and paper-figure regeneration."""

from .ascii import render_instance, render_packing, render_rows, timeline_scale
from .figures import figure1, figure2, figure3
from .plots import ascii_chart

__all__ = [
    "render_instance",
    "render_packing",
    "render_rows",
    "timeline_scale",
    "figure1",
    "figure2",
    "figure3",
    "ascii_chart",
]
