"""Regeneration of the paper's three figures (FIG1–FIG3 in DESIGN.md).

Each function returns the figure as a text block; the benchmarks and the
CLI print them, and the tests assert their structural properties (e.g.
Figure 3's bin occupancy must match Lemma 5.5's bit mapping).
"""

from __future__ import annotations

from typing import Optional

from ..algorithms.cdff import CDFF
from ..core.instance import Instance
from ..core.simulation import IncrementalSimulation
from ..workloads.aligned import aligned_random, binary_input
from .ascii import render_instance, render_packing, render_rows

__all__ = ["figure1", "figure2", "figure3"]


def figure1(
    *,
    mu: int = 16,
    n_items: int = 60,
    seed: int = 7,
    stop_at: Optional[int] = None,
    instance: Optional[Instance] = None,
) -> str:
    """Figure 1: a snapshot of CDFF's rows of bins at a moment in time.

    Runs CDFF over an aligned input and renders the live row structure
    right after the arrivals at time ``stop_at`` (default: the moment with
    the most open bins is chosen by a dry run).
    """
    inst = instance if instance is not None else aligned_random(
        mu, n_items, seed=seed
    )
    algorithm = CDFF()
    sim = IncrementalSimulation(algorithm)
    if stop_at is None:
        # dry run to find the busiest arrival time
        from ..core.simulation import simulate

        probe = simulate(CDFF(), inst)
        prof = probe.open_bins_profile()
        peak_idx = int(prof.values.argmax()) if len(prof.values) else 0
        stop_time = float(prof.breakpoints[peak_idx])
    else:
        stop_time = float(stop_at)
    for item in inst:
        if item.arrival > stop_time:
            break
        sim.release(item)
    header = (
        f"Figure 1 — CDFF row structure at t={stop_time:g} "
        f"(aligned input, μ={inst.mu:g})\n"
    )
    return header + render_rows(algorithm.rows_snapshot())


def figure2(*, mu: int = 8, width: int = 64) -> str:
    """Figure 2: the binary input σ_μ (σ_8 in the paper)."""
    inst = binary_input(mu)
    header = f"Figure 2 — the binary input σ_{mu} (each bar is one item)\n"
    return header + render_instance(inst, width=width)


def figure3(*, mu: int = 8, width: int = 64) -> str:
    """Figure 3: how CDFF packs σ_μ (σ_8 in the paper)."""
    from ..core.simulation import simulate

    inst = binary_input(mu)
    result = simulate(CDFF(), inst)
    header = f"Figure 3 — CDFF's packing of σ_{mu}\n"
    return header + render_packing(result, width=width)
