"""ASCII renderers for instances and packings (Figures 1–3 of the paper).

Pure-text output (no plotting dependency in this offline environment):

- :func:`render_instance` draws the items grouped by duration class, one
  timeline per class — the layout of the paper's Figure 2 (σ_8);
- :func:`render_packing` draws each bin's busy period with its momentary
  occupancy count — the layout of Figure 3 (CDFF packing of σ_8);
- :func:`render_rows` draws a live CDFF row structure with per-bin load
  gauges — the layout of Figure 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..core.bins import Bin
from ..core.instance import Instance
from ..core.item import Item
from ..core.result import PackingResult

__all__ = ["render_instance", "render_packing", "render_rows", "timeline_scale"]


def timeline_scale(t_min: float, t_max: float, width: int):
    """Map time to a character column in ``[0, width)``."""
    span = max(t_max - t_min, 1e-12)

    def to_col(t: float) -> int:
        frac = (t - t_min) / span
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    return to_col


def _class_of(item: Item) -> int:
    return max(0, math.ceil(math.log2(item.length) - 1e-12))


def render_instance(instance: Instance, *, width: int = 64) -> str:
    """One timeline per duration class, items drawn as ``[====)`` bars."""
    if len(instance) == 0:
        return "(empty instance)\n"
    t_min = min(it.arrival for it in instance)
    t_max = max(it.departure for it in instance)  # type: ignore[type-var]
    to_col = timeline_scale(t_min, float(t_max), width)
    by_class: Dict[int, List[Item]] = {}
    for it in instance:
        by_class.setdefault(_class_of(it), []).append(it)

    lines = [f"items over t ∈ [{t_min:g}, {t_max:g}]  (one timeline per class)"]
    for cls in sorted(by_class, reverse=True):
        # items of the same class may overlap; stack them on sub-lines
        sublines: List[List[str]] = []
        for it in sorted(by_class[cls], key=lambda x: x.arrival):
            a, d = to_col(it.arrival), to_col(it.departure)  # type: ignore[arg-type]
            placed = False
            for sub in sublines:
                if all(ch == " " for ch in sub[a : d + 1]):
                    _draw(sub, a, d)
                    placed = True
                    break
            if not placed:
                sub = [" "] * width
                _draw(sub, a, d)
                sublines.append(sub)
        label = f"class {cls} (len≤{2**cls:g})"
        for k, sub in enumerate(sublines):
            prefix = f"{label:>18} |" if k == 0 else f"{'':>18} |"
            lines.append(prefix + "".join(sub) + "|")
    return "\n".join(lines) + "\n"


def _draw(sub: List[str], a: int, d: int) -> None:
    if d <= a:
        d = a + 1 if a + 1 < len(sub) else a
    sub[a] = "["
    for c in range(a + 1, d):
        sub[c] = "="
    if d < len(sub):
        sub[d] = ")"


def render_packing(result: PackingResult, *, width: int = 64) -> str:
    """One line per bin: momentary item count (digits) over the bin's life."""
    if not result.bins:
        return "(no bins)\n"
    t_min = min(rec.opened_at for rec in result.bins)
    t_max = max(rec.closed_at for rec in result.bins)
    to_col = timeline_scale(t_min, t_max, width)
    lines = [
        f"{result.algorithm}: {result.n_bins} bins, cost {result.cost:g}, "
        f"t ∈ [{t_min:g}, {t_max:g}]  (digit = items in bin)"
    ]
    for rec in sorted(result.bins, key=lambda r: (r.opened_at, r.uid)):
        cells = [0] * width
        for it in result.items_of(rec.uid):
            a, d = result.true_interval(it.uid)
            ca, cd = to_col(a), to_col(d)
            for c in range(ca, max(cd, ca + 1)):
                cells[c] += 1
        row = "".join(
            " " if n == 0 else (str(n) if n < 10 else "+") for n in cells
        )
        tag = f" tag={rec.tag!r}" if rec.tag is not None else ""
        lines.append(f"bin {rec.uid:>3} |{row}|{tag}")
    return "\n".join(lines) + "\n"


def render_rows(
    rows: Dict[int, Sequence[Bin]], *, gauge: int = 10, capacity: float = 1.0
) -> str:
    """CDFF's rows of bins with load gauges — the paper's Figure 1 layout.

    Each bin prints as ``[####......]`` with fill proportional to load.
    """
    if not rows:
        return "(no open rows)\n"
    lines = ["CDFF rows (each box is one bin; fill = load)"]
    for r in sorted(rows):
        bins = rows[r]
        boxes = []
        for b in bins:
            fill = int(round(gauge * min(1.0, b.load / capacity)))
            boxes.append("[" + "#" * fill + "." * (gauge - fill) + "]")
        lines.append(f"row {r:>2}: " + " ".join(boxes) if boxes else f"row {r:>2}: (empty)")
    return "\n".join(lines) + "\n"
