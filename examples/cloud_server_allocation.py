#!/usr/bin/env python3
"""Cloud server allocation — the paper's motivating scenario.

Users request a bandwidth share of a server for a session whose duration
is predictable at arrival (cloud gaming).  The operator pays for every
server-hour a machine is powered on (MinUsageTime).

Part 1 synthesises diurnal traffic and compares allocation policies on it:
on benign traffic the greedy Any-Fit policies are excellent and the
duration-classifying policies pay overhead.  Part 2 injects one
pathological burst (long pinned sessions interleaved with heavy short
ones — the paper's Ω(μ) failure mode of First-Fit) and the picture
inverts: First-Fit's bill explodes while the Hybrid Algorithm barely
notices.  HA's O(√log μ) guarantee is exactly this insurance.

Run:  python examples/cloud_server_allocation.py
"""

from repro import (
    BestFit,
    ClassifyByDuration,
    FirstFit,
    HybridAlgorithm,
    NextFit,
    audit,
    cloud_gaming,
    opt_reference,
    simulate,
)


def main() -> None:
    trace = cloud_gaming(
        horizon=72.0,  # three "days"
        seed=2026,
        base_rate=3.0,
        peak_factor=4.0,
        mean_session=1.0,
        max_session=12.0,
    ).normalized()
    st = trace.stats
    print(
        f"synthetic trace: {st.n_items} sessions, μ = {st.mu:.1f}, "
        f"peak load {st.max_load:.2f} servers, demand {st.demand:.1f} server-hours"
    )

    opt = opt_reference(trace, max_exact=16)
    print(f"offline optimum (repacking): ≥ {opt.lower:.1f} server-hours\n")

    policies = [NextFit(), FirstFit(), BestFit(), ClassifyByDuration(),
                HybridAlgorithm()]
    rows = []
    for policy in policies:
        result = simulate(policy, trace)
        audit(result)
        rows.append((result.algorithm, result.cost, result.max_open,
                     result.cost / opt.lower))

    baseline = rows[0][1]  # NextFit, the naive policy
    print(f"{'policy':28s} {'server-hours':>12s} {'peak servers':>12s} "
          f"{'vs OPT≥':>8s} {'savings':>8s}")
    for name, cost, peak, ratio in rows:
        savings = 100.0 * (baseline - cost) / baseline
        print(f"{name:28s} {cost:12.1f} {peak:12d} {ratio:8.3f} {savings:7.1f}%")
    print(
        "\nOn friendly traffic the greedy policies win — classification is"
        "\npure overhead here.  Now the insurance case:\n"
    )

    # Part 2: one adversarial burst — long pinned sessions interleaved with
    # heavy short ones at a single instant (the paper's First-Fit trap).
    from repro.workloads.adversarial import ff_trap

    trace_end = max(it.departure for it in trace)
    burst = ff_trap(64, pairs=60).shifted(trace_end + 1.0)
    stressed = trace.concat(burst)
    opt2 = opt_reference(stressed, max_exact=12)
    print("same trace + one pathological burst of pinned sessions:")
    print(f"{'policy':28s} {'server-hours':>12s} {'vs OPT≥':>8s}")
    for policy in (FirstFit(), HybridAlgorithm()):
        result = simulate(policy, stressed)
        audit(result)
        print(f"{result.algorithm:28s} {result.cost:12.1f} "
              f"{result.cost / opt2.lower:8.3f}")
    print(
        "\nOne burst and First-Fit's bill explodes (it pays ~μ per pinned"
        "\nsession) while HA consolidates the pins into CD bins and keeps its"
        "\nO(√log μ) guarantee.  That worst-case robustness — at a few percent"
        "\novercost on calm days — is what the paper proves you can buy."
    )


if __name__ == "__main__":
    main()
