#!/usr/bin/env python3
"""Why clairvoyance matters: the Θ(μ) non-clairvoyant wall (Table 1, row 3).

Without departure times, an adaptive adversary can pin every bin an
algorithm opens: release g² tiny items, keep one survivor per bin alive
forever, kill the rest.  The algorithm cannot repack, so its bins idle at
1/g load for the whole horizon while the optimum consolidates survivors
into a single bin.

This script sweeps μ and shows the non-clairvoyant ratio growing linearly
while clairvoyant HA (on the same realised instances) stays flat.

Run:  python examples/nonclairvoyant_gap.py
"""

from repro import (
    FirstFit,
    HybridAlgorithm,
    NonClairvoyantAdversary,
    opt_reference,
    simulate,
)


def main() -> None:
    print(f"{'μ=g':>5} {'NC FirstFit':>12} {'clairvoyant HA':>15} {'μ+4':>6}")
    for g in (4, 8, 16, 32):
        adv = NonClairvoyantAdversary(g, float(g))
        out = adv.run(FirstFit(clairvoyant=False))
        opt = opt_reference(out.instance, max_exact=12)
        nc_ratio = out.online_cost / opt.upper

        # replay the *realised* instance clairvoyantly: HA sees departures
        ha = simulate(HybridAlgorithm(), out.instance.normalized())
        ha_ratio = ha.cost / opt_reference(
            out.instance.normalized(), max_exact=12
        ).lower

        print(f"{g:>5} {nc_ratio:>12.2f} {ha_ratio:>15.2f} {g + 4:>6}")

    print(
        "\nThe non-clairvoyant ratio tracks ~μ/2 (the adversary's force) and"
        "\nFirst-Fit cannot do better than μ+4 in that setting [13][7]."
        "\nGiven departure times, the same instances are nearly free for HA —"
        "\nthe exponential value of clairvoyance this paper quantifies."
    )


if __name__ == "__main__":
    main()
