#!/usr/bin/env python3
"""Quickstart: the core API in sixty lines.

Builds a small instance, runs the paper's Hybrid Algorithm next to
First-Fit, audits both packings, and compares them with the exact
repacking optimum.

Run:  python examples/quickstart.py
"""

from repro import (
    FirstFit,
    HybridAlgorithm,
    Instance,
    audit,
    opt_reference,
    simulate,
)


def main() -> None:
    # An instance is a list of (arrival, departure, size) requests.
    # Think "cloud sessions": each wants a fraction of a server for a while.
    sigma = Instance.from_tuples(
        [
            (0.0, 8.0, 0.10),   # a long, light session
            (0.0, 1.0, 0.85),   # a short, heavy one
            (1.0, 2.0, 0.85),   # another heavy one right after
            (2.0, 6.0, 0.40),
            (2.0, 6.0, 0.40),
            (3.0, 4.0, 0.30),
        ]
    )
    print(f"instance: {sigma!r}")
    print(f"  demand d(σ) = {sigma.demand:.2f}   span(σ) = {sigma.span:.2f}")

    for algorithm in (FirstFit(), HybridAlgorithm()):
        result = simulate(algorithm, sigma)
        audit(result)  # independent feasibility + accounting check
        print(
            f"\n{result.algorithm}: cost {result.cost:.2f} "
            f"using {result.n_bins} bins (max {result.max_open} at once)"
        )
        for rec in result.bins:
            items = ", ".join(str(it) for it in result.items_of(rec.uid))
            print(f"  bin {rec.uid} [{rec.opened_at:g}, {rec.closed_at:g}): {items}")

    opt = opt_reference(sigma)
    print(f"\nOPT_R (repacking optimum): {opt.lower:.2f}", end="")
    if not opt.exact:
        print(f" .. {opt.upper:.2f}", end="")
    print()
    result = simulate(HybridAlgorithm(), sigma)
    print(f"HA competitive ratio on this input: {result.cost / opt.upper:.3f}")


if __name__ == "__main__":
    main()
