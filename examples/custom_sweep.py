#!/usr/bin/env python3
"""Bring-your-own-workload: sweeping policies over a custom trace family.

Shows the downstream-user workflow end to end:

1. define a workload generator for *your* traffic (here: bursty batch
   jobs whose durations are nested powers of two);
2. sweep the packing policies over μ with several seeds;
3. get a table of certified competitive ratios with bootstrap CIs
   (optionally computed on a process pool);
4. save a generated instance to CSV for later replay.

Run:  python examples/custom_sweep.py
"""

import tempfile

from repro import Instance, load_csv, save_csv
from repro.experiments.sweep import ratio_sweep
from repro.workloads import batch_jobs


def my_workload(mu: int, seed: int) -> Instance:
    """Bursty batch submissions, ~6 bursts of 25 jobs, durations ≤ μ."""
    return batch_jobs(
        n_bursts=6,
        jobs_per_burst=25,
        seed=seed,
        burst_spacing=float(mu) / 2.0,
        mu=float(mu),
        size_low=0.05,
        size_high=0.45,
    )


def main() -> None:
    table = ratio_sweep(
        ["NextFit", "FirstFit", "BestFit", "ClassifyByDuration",
         "HybridAlgorithm", "LeastExpansion"],
        my_workload,
        mus=(8, 32, 128),
        seeds=range(4),
        workers=1,  # set >1 for a process pool on real sweeps
        title="policies on bursty batch jobs (certified ratios, 95% CI)",
    )
    print(table.render())

    # persist one instance for replay / sharing
    inst = my_workload(32, seed=0)
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as f:
        path = f.name
    save_csv(inst, path)
    again = load_csv(path)
    assert again == inst
    print(f"saved a {len(inst)}-item instance to {path} and re-loaded it "
          "bit-exactly.")


if __name__ == "__main__":
    main()
