#!/usr/bin/env python3
"""CDFF on aligned inputs, and the binary-string connection (Section 5).

Shows three things:

1. Figures 2–3: the binary input σ_8 and how CDFF packs it;
2. Corollary 5.8 live: CDFF's open-bin count at time t equals
   ``max_0(binary(t)) + 1`` — printed side by side;
3. the exponential gap: CDFF (~log log μ) vs static per-class rows (~log μ)
   as μ grows.

Run:  python examples/aligned_inputs_cdff.py
"""

import math

from repro import CDFF, StaticRowsCDFF, binary_input, simulate
from repro.analysis.binary_strings import binary, max_zero_run
from repro.viz.figures import figure2, figure3


def main() -> None:
    print(figure2(mu=8))
    print(figure3(mu=8))

    mu = 32
    n = int(math.log2(mu))
    res = simulate(CDFF(), binary_input(mu))
    prof = res.open_bins_profile()
    print(f"Corollary 5.8 on σ_{mu}: open bins at t⁺ vs max₀(binary(t)) + 1")
    print(f"{'t':>3} {'binary(t)':>9} {'max₀+1':>7} {'CDFF':>5}")
    for t in range(mu):
        b = binary(t, n)
        expected = max_zero_run(b) + 1
        measured = int(prof(float(t)))
        marker = "" if expected == measured else "  <-- MISMATCH"
        print(f"{t:>3} {b:>9} {expected:>7} {measured:>5}{marker}")

    print("\nDynamic rows vs static rows on σ_μ (ratio to OPT_R = μ):")
    print(f"{'μ':>6} {'CDFF':>7} {'static':>7} {'log μ + 1':>9}")
    for k in range(2, 13, 2):
        m = 2**k
        dyn = simulate(CDFF(), binary_input(m)).cost / m
        stat = simulate(StaticRowsCDFF(), binary_input(m)).cost / m
        print(f"{m:>6} {dyn:>7.2f} {stat:>7.2f} {k + 1:>9}")
    print(
        "\nThe static policy tracks log μ exactly; CDFF grows like the"
        "\nexpected longest zero-run of a random log μ-bit string — about"
        "\n2·log log μ.  That re-indexing of rows over time is the entire"
        "\nexponential improvement."
    )


if __name__ == "__main__":
    main()
