#!/usr/bin/env python3
"""Watching the Ω(√log μ) adversary work (Theorem 4.3).

The adversary releases prefixes of σ*_t — items of lengths 1, 2, 4, …, μ
with load 1/√(log μ) — and stops each round the moment the online
algorithm has ⌈√log μ⌉ bins open.  The algorithm is thereby forced to keep
√log μ bins busy forever while the optimum consolidates.

This script replays the adversary against several algorithms, prints the
first rounds in detail, and reports the certified competitive-ratio floor.

Run:  python examples/adversarial_lower_bound.py
"""

import math

from repro import (
    BestFit,
    ClassifyByDuration,
    FirstFit,
    HybridAlgorithm,
    SqrtLogAdversary,
    dual_coloring,
    opt_reference,
)


def main() -> None:
    mu = 256
    n = int(math.log2(mu))
    adv = SqrtLogAdversary(mu)
    print(
        f"μ = {mu} (log μ = {n}): item load = 1/√{n} = {adv.load:.3f}, "
        f"target = {adv.target_bins} open bins per round\n"
    )

    for factory in (FirstFit, BestFit, ClassifyByDuration, HybridAlgorithm):
        adv = SqrtLogAdversary(mu)
        out = adv.run(factory())
        released = len(out.instance)
        opt = opt_reference(out.instance, max_exact=14)
        dc = dual_coloring(out.instance)
        ratio = out.online_cost / min(opt.upper, dc.cost)
        floor = math.sqrt(n) / 8.0
        name = out.result.algorithm
        print(f"{name}:")
        print(f"  adversary released {released} items over {mu} rounds")
        print(f"  first-round prefix lengths: "
              f"{[int(l) for l in adv.last_lengths[:10]]} ...")
        print(f"  ON(σ) = {out.online_cost:.0f}  "
              f"(certified floor μ·⌈√log μ⌉ = {mu * adv.target_bins})")
        print(f"  OPT_R ≤ {min(opt.upper, dc.cost):.0f}  "
              f"→ ratio ≥ {ratio:.2f} (theorem floor {floor:.2f})\n")

    print(
        "Every algorithm — including the paper's own HA — is pinned above the"
        "\n√log μ / 8 floor: the bound is universal, which is why Theorem 3.2's"
        "\nO(√log μ) algorithm is optimal."
    )


if __name__ == "__main__":
    main()
