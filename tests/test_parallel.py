"""Unit tests for the parallel sweep helpers."""

import math

import pytest

from repro.parallel import (
    ALGORITHM_REGISTRY,
    parallel_map,
    ratio_task,
    replay_sharded,
    replay_task,
)
from repro.workloads.random_general import uniform_random


def square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(square, [1, 2, 3]) == [1, 4, 9]

    def test_order_preserved_parallel(self):
        assert parallel_map(square, list(range(20)), workers=2) == [
            x * x for x in range(20)
        ]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], workers=0)

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_serial_fallback_when_pool_unavailable(self, monkeypatch):
        """Sandboxed/no-fork environments must degrade, not crash."""

        def broken_pool(*args, **kwargs):
            raise PermissionError("fork blocked by sandbox")

        monkeypatch.setattr(
            "repro.parallel.ProcessPoolExecutor", broken_pool
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = parallel_map(square, [1, 2, 3], workers=4)
        assert out == [1, 4, 9]

    def test_fn_errors_not_swallowed(self):
        def boom(x):
            raise ValueError("from fn")

        with pytest.raises(ValueError, match="from fn"):
            parallel_map(boom, [1], workers=1)

    def test_default_chunksize(self):
        # 100 items / (4 * 2 workers) = 12; just exercise the path
        assert parallel_map(square, list(range(100)), workers=2) == [
            x * x for x in range(100)
        ]

    def test_accepts_iterables(self):
        assert parallel_map(square, iter([1, 2, 3])) == [1, 4, 9]


class TestRatioTask:
    def test_serial_ratio(self):
        inst = uniform_random(60, 8, seed=0)
        r = ratio_task(("FirstFit", inst))
        assert r >= 1.0 - 1e-9

    def test_unknown_algorithm(self):
        inst = uniform_random(10, 4, seed=0)
        with pytest.raises(KeyError):
            ratio_task(("Nope", inst))

    def test_registry_names(self):
        assert "HybridAlgorithm" in ALGORITHM_REGISTRY
        assert "CDFF" in ALGORITHM_REGISTRY

    def test_parallel_equals_serial(self):
        cells = [
            (name, uniform_random(40, 8, seed=s))
            for s in (0, 1)
            for name in ("FirstFit", "HybridAlgorithm")
        ]
        serial = parallel_map(ratio_task, cells, workers=1)
        par = parallel_map(ratio_task, cells, workers=2)
        assert all(
            math.isclose(a, b, rel_tol=1e-12) for a, b in zip(serial, par)
        )


class TestShardedReplay:
    @pytest.fixture
    def shards(self, tmp_path):
        from repro.workloads import dump_jsonl

        paths = []
        for s in (0, 1, 2):
            path = tmp_path / f"shard{s}.jsonl"
            dump_jsonl(uniform_random(40, 8, seed=s), path)
            paths.append(path)
        return paths

    def test_replay_task(self, shards):
        from repro.core.simulation import simulate
        from repro.parallel import _registry
        from repro.workloads import load_jsonl

        summary = replay_task(("FirstFit", str(shards[0])))
        batch = simulate(_registry()["FirstFit"](), load_jsonl(shards[0]))
        assert summary["cost"] == batch.cost
        assert summary["items"] == 40

    def test_replay_task_unknown_algorithm(self, shards):
        with pytest.raises(KeyError):
            replay_task(("Nope", str(shards[0])))

    def test_sharded_aggregates(self, shards):
        agg = replay_sharded(shards, "FirstFit", workers=1)
        assert agg["n_shards"] == 3
        assert agg["items"] == 120
        assert agg["cost"] == pytest.approx(
            sum(s["cost"] for s in agg["shards"])
        )
        assert agg["cost"] == pytest.approx(
            sum(replay_task(("FirstFit", str(p)))["cost"] for p in shards)
        )

    def test_sharded_parallel_equals_serial(self, shards):
        serial = replay_sharded(shards, "HybridAlgorithm", workers=1)
        par = replay_sharded(shards, "HybridAlgorithm", workers=2)
        assert serial["cost"] == pytest.approx(par["cost"], rel=1e-12)
        assert serial["max_open"] == par["max_open"]
