"""Unit tests for the parallel sweep helpers."""

import math

import pytest

from repro.parallel import ALGORITHM_REGISTRY, parallel_map, ratio_task
from repro.workloads.random_general import uniform_random


def square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(square, [1, 2, 3]) == [1, 4, 9]

    def test_order_preserved_parallel(self):
        assert parallel_map(square, list(range(20)), workers=2) == [
            x * x for x in range(20)
        ]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], workers=0)

    def test_empty(self):
        assert parallel_map(square, []) == []


class TestRatioTask:
    def test_serial_ratio(self):
        inst = uniform_random(60, 8, seed=0)
        r = ratio_task(("FirstFit", inst))
        assert r >= 1.0 - 1e-9

    def test_unknown_algorithm(self):
        inst = uniform_random(10, 4, seed=0)
        with pytest.raises(KeyError):
            ratio_task(("Nope", inst))

    def test_registry_names(self):
        assert "HybridAlgorithm" in ALGORITHM_REGISTRY
        assert "CDFF" in ALGORITHM_REGISTRY

    def test_parallel_equals_serial(self):
        cells = [
            (name, uniform_random(40, 8, seed=s))
            for s in (0, 1)
            for name in ("FirstFit", "HybridAlgorithm")
        ]
        serial = parallel_map(ratio_task, cells, workers=1)
        par = parallel_map(ratio_task, cells, workers=2)
        assert all(
            math.isclose(a, b, rel_tol=1e-12) for a, b in zip(serial, par)
        )
