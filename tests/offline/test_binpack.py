"""Unit tests for the exact bin-packing solver."""

import numpy as np
import pytest

from repro.offline.binpack import ffd, l2_lower_bound, min_bins, min_bins_bounded


class TestFFD:
    def test_empty(self):
        assert ffd([]) == 0

    def test_single(self):
        assert ffd([0.4]) == 1

    def test_perfect_pairs(self):
        assert ffd([0.6, 0.4, 0.7, 0.3]) == 2

    def test_ffd_classic_suboptimal_case(self):
        # FFD can exceed OPT; it must still be an upper bound
        sizes = [0.45, 0.45, 0.35, 0.35, 0.2, 0.2]
        assert ffd(sizes) >= min_bins(sizes)

    def test_custom_capacity(self):
        assert ffd([1.0, 1.0, 1.0], capacity=3.0) == 1


class TestL2:
    def test_empty(self):
        assert l2_lower_bound([]) == 0

    def test_volume_bound(self):
        assert l2_lower_bound([0.5] * 7) >= 4  # ceil(3.5)

    def test_big_items_counted(self):
        # four items > 1/2 can never share
        assert l2_lower_bound([0.6, 0.6, 0.6, 0.6]) == 4

    def test_never_exceeds_optimum(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            sizes = list(rng.uniform(0.05, 1.0, size=int(rng.integers(1, 12))))
            assert l2_lower_bound(sizes) <= min_bins(sizes)


class TestMinBins:
    def test_empty(self):
        assert min_bins([]) == 0

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            min_bins([1.2])

    def test_exact_thirds(self):
        assert min_bins([1 / 3] * 6) == 2

    def test_known_hard_case(self):
        # FFD uses 3 bins here, optimum is 2 (classic example)
        sizes = [0.41, 0.41, 0.3, 0.3, 0.29, 0.29]
        assert min_bins(sizes) == 2

    def test_all_big(self):
        assert min_bins([0.51] * 5) == 5

    def test_single_bin(self):
        assert min_bins([0.2, 0.3, 0.4]) == 1

    def test_matches_bruteforce_random(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(1, 9))
            sizes = list(rng.uniform(0.1, 1.0, size=n))
            assert min_bins(sizes) == _brute_force(sizes)

    def test_capacity_parameter(self):
        assert min_bins([2.0 / 3] * 3, capacity=2.0) == 1


def _brute_force(sizes, capacity=1.0):
    """Minimum bins by exhaustive partition (reference implementation)."""
    best = len(sizes)

    def rec(idx, bins):
        nonlocal best
        if len(bins) >= best:
            return
        if idx == len(sizes):
            best = min(best, len(bins))
            return
        s = sizes[idx]
        for k in range(len(bins)):
            if bins[k] + s <= capacity + 1e-9:
                bins[k] += s
                rec(idx + 1, bins)
                bins[k] -= s
        bins.append(s)
        rec(idx + 1, bins)
        bins.pop()

    rec(0, [])
    return best


class TestMinBinsBounded:
    def test_exact_when_small(self):
        lo, hi = min_bins_bounded([0.6, 0.6, 0.3], max_exact=10)
        assert lo == hi == 2

    def test_sandwich_when_large(self):
        sizes = [0.3] * 40
        lo, hi = min_bins_bounded(sizes, max_exact=10)
        assert lo <= 12 + 1 and hi >= lo
        assert lo <= _volume(sizes) + 1

    def test_sandwich_brackets_optimum(self):
        rng = np.random.default_rng(1)
        sizes = list(rng.uniform(0.05, 0.95, size=30))
        lo, hi = min_bins_bounded(sizes, max_exact=5)
        exact = min_bins(sizes)
        assert lo <= exact <= hi


def _volume(sizes):
    import math

    return math.ceil(sum(sizes))
