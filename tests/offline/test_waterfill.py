"""Unit tests for the Lemma 3.1 constructive repacking (waterfill)."""

import math

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.profile import load_profile
from repro.offline.bounds import (
    ceil_load_bound,
    lemma31_ceil_upper,
    lemma31_demand_span_upper,
)
from repro.offline.waterfill import waterfill
from repro.workloads.random_general import uniform_random


class TestWaterfillBasics:
    def test_empty(self):
        wf = waterfill(Instance([]))
        assert wf.cost == 0.0

    def test_single_item(self):
        wf = waterfill(Instance.from_tuples([(0, 3, 0.4)]))
        assert math.isclose(wf.cost, 3.0)

    def test_merges_into_one_bin(self):
        # two 0.4 items must be merged (combined ≤ 1)
        wf = waterfill(Instance.from_tuples([(0, 2, 0.4), (0, 2, 0.4)]))
        assert math.isclose(wf.cost, 2.0)
        assert wf.max_open == 1

    def test_cannot_merge_big(self):
        wf = waterfill(Instance.from_tuples([(0, 2, 0.8), (0, 2, 0.8)]))
        assert math.isclose(wf.cost, 4.0)

    def test_remerges_after_departures(self):
        # three 0.5 items: two bins; one departs early → merge back to one
        inst = Instance.from_tuples([(0, 4, 0.5), (0, 4, 0.5), (0, 1, 0.5)])
        wf = waterfill(inst)
        # [0,1): 2 bins (1.0 + 0.5); [1,4): 1 bin
        assert math.isclose(wf.cost, 2 * 1 + 1 * 3)


class TestLemma31Guarantees:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cost_within_upper_bounds(self, seed):
        inst = uniform_random(120, 32, seed=seed)
        wf = waterfill(inst)
        assert wf.cost <= lemma31_ceil_upper(inst) + 1e-6
        assert wf.cost <= lemma31_demand_span_upper(inst) + 1e-6
        assert wf.cost >= ceil_load_bound(inst) - 1e-6

    @pytest.mark.parametrize("seed", [0, 1])
    def test_pointwise_invariant(self, seed):
        """At every breakpoint the open-bin count is ≤ 2⌈S_t⌉."""
        inst = uniform_random(80, 16, seed=seed)
        wf = waterfill(inst)
        load = load_profile(inst)
        checkpoints = np.union1d(wf.profile.breakpoints, load.breakpoints)
        for t in checkpoints[:-1]:
            n = wf.profile(float(t))
            s = load(float(t))
            assert n <= 2 * math.ceil(s - 1e-9) + 1e-9, f"t={t}: {n} vs S={s}"

    def test_profile_integral_is_cost(self):
        inst = uniform_random(60, 8, seed=9)
        wf = waterfill(inst)
        assert math.isclose(wf.cost, wf.profile.integral())
