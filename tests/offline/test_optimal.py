"""Unit tests for the OPT oracles."""

import math

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.offline.optimal import opt_nonrepacking, opt_reference, opt_repacking
from repro.workloads.aligned import binary_input
from repro.workloads.random_general import uniform_random


class TestOptRepacking:
    def test_empty(self):
        s = opt_repacking(Instance([]))
        assert s.lower == s.upper == 0.0

    def test_single_item(self):
        s = opt_repacking(Instance.from_tuples([(0, 3, 0.4)]))
        assert s.exact and math.isclose(s.lower, 3.0)

    def test_two_big_items(self):
        s = opt_repacking(Instance.from_tuples([(0, 2, 0.8), (0, 2, 0.8)]))
        assert s.exact and math.isclose(s.lower, 4.0)

    def test_repacking_beats_nonrepacking_example(self):
        # A: [0,2] 0.6; B: [1,3] 0.6 — at every instant one bin suffices for
        # each alone, two when they overlap
        inst = Instance.from_tuples([(0, 2, 0.6), (1, 3, 0.6)])
        s = opt_repacking(inst)
        assert s.exact and math.isclose(s.lower, 1 + 2 + 1 - 0)  # 2 bins on [1,2]

    def test_binary_input_is_mu(self):
        mu = 64
        s = opt_repacking(binary_input(mu))
        assert s.exact and math.isclose(s.lower, mu)

    def test_sandwich_on_large_segments(self):
        inst = Instance.from_tuples([(0, 1, 0.3)] * 40)
        s = opt_repacking(inst, max_exact=5)
        assert s.lower <= s.upper
        assert s.lower >= math.ceil(40 * 0.3) * 1.0 - 1e-9

    def test_capacity(self):
        inst = Instance.from_tuples([(0, 1, 1.0)] * 4)
        s = opt_repacking(inst, capacity=2.0)
        assert s.exact and math.isclose(s.lower, 2.0)

    def test_agrees_with_bounds_random(self):
        from repro.offline.bounds import opt_sandwich

        for seed in range(3):
            inst = uniform_random(60, 16, seed=seed)
            oracle = opt_repacking(inst, max_exact=20)
            closed = opt_sandwich(inst)
            assert oracle.lower >= closed.lower - 1e-6
            assert oracle.upper <= closed.upper + 1e-6


class TestOptNonrepacking:
    def test_empty(self):
        assert opt_nonrepacking(Instance([])) == 0.0

    def test_single(self):
        assert opt_nonrepacking(Instance.from_tuples([(0, 3, 0.4)])) == 3.0

    def test_pair_packs_together(self):
        inst = Instance.from_tuples([(0, 2, 0.4), (1, 3, 0.4)])
        assert math.isclose(opt_nonrepacking(inst), 3.0)

    def test_pair_forced_apart(self):
        inst = Instance.from_tuples([(0, 2, 0.8), (1, 3, 0.8)])
        assert math.isclose(opt_nonrepacking(inst), 4.0)

    def test_at_least_repacking(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            triples = []
            for _ in range(6):
                a = float(rng.uniform(0, 4))
                triples.append(
                    (a, a + float(rng.uniform(0.5, 3)), float(rng.uniform(0.1, 1)))
                )
            inst = Instance.from_tuples(triples)
            nr = opt_nonrepacking(inst)
            r = opt_repacking(inst)
            assert nr >= r.lower - 1e-9

    def test_too_many_items_rejected(self):
        inst = Instance.from_tuples([(0, 1, 0.1)] * 20)
        with pytest.raises(InvalidInstanceError):
            opt_nonrepacking(inst, max_items=10)

    def test_nonrepacking_gap_example(self):
        """A case where OPT_NR > OPT_R: staircase overlap forcing a bad
        irrevocable choice."""
        # X: [0,10] 0.5; Y: [0,1] 0.5; Z: [1,10] 0.6
        # NR: X with Y → Z separate: 10+10=20; X alone: 10+1+9=20; best 20?
        # R: repack at t=1: [0,1]: {X,Y} 1 bin; [1,10]: X+Z=1.1 → 2 bins...
        inst = Instance.from_tuples([(0, 10, 0.5), (0, 1, 0.5), (1, 10, 0.6)])
        nr = opt_nonrepacking(inst)
        r = opt_repacking(inst)
        assert r.exact
        assert nr >= r.lower


class TestOptReference:
    def test_combines_bounds(self):
        inst = uniform_random(50, 8, seed=1)
        ref = opt_reference(inst)
        oracle = opt_repacking(inst)
        assert ref.lower >= oracle.lower - 1e-12
        assert ref.upper <= oracle.upper + 1e-12

    def test_exact_passthrough(self):
        inst = Instance.from_tuples([(0, 2, 1.0), (0, 2, 1.0)])
        ref = opt_reference(inst)
        assert ref.exact and math.isclose(ref.lower, 4.0)
