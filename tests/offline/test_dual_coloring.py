"""Unit tests for the Dual-Coloring stand-in (offline non-repacking packer)."""

import math

import pytest

from repro.core.errors import PackingError
from repro.core.instance import Instance
from repro.core.item import Item
from repro.offline.dual_coloring import (
    OfflineAssignment,
    dual_coloring,
    first_fit_decreasing_length,
)
from repro.offline.optimal import opt_reference
from repro.workloads.random_general import uniform_random


class TestOfflineAssignment:
    def test_cost_single_group(self):
        g = (Item(0, 2, 0.4, uid=0), Item(1, 3, 0.4, uid=1))
        assert math.isclose(OfflineAssignment((g,)).cost, 3.0)

    def test_cost_group_with_gap(self):
        g = (Item(0, 1, 0.4, uid=0), Item(5, 6, 0.4, uid=1))
        # a gap means the bin closes and reopens: usage is 2, not 6
        assert math.isclose(OfflineAssignment((g,)).cost, 2.0)

    def test_audit_passes_feasible(self):
        g = (Item(0, 2, 0.5, uid=0), Item(0, 2, 0.5, uid=1))
        OfflineAssignment((g,)).audit()

    def test_audit_catches_overload(self):
        g = (Item(0, 2, 0.7, uid=0), Item(0, 2, 0.7, uid=1))
        with pytest.raises(PackingError):
            OfflineAssignment((g,)).audit()

    def test_audit_catches_duplicates(self):
        it = Item(0, 2, 0.3, uid=0)
        with pytest.raises(PackingError):
            OfflineAssignment(((it,), (it,))).audit()


class TestFFDLength:
    def test_longest_first(self):
        items = [Item(0, 1, 0.6, uid=0), Item(0, 8, 0.6, uid=1)]
        a = first_fit_decreasing_length(items)
        # the length-8 item seeds group 0
        assert a.groups[0][0].uid == 1

    def test_packs_compatible(self):
        items = [Item(0, 4, 0.5, uid=0), Item(0, 4, 0.5, uid=1)]
        a = first_fit_decreasing_length(items)
        assert a.n_bins == 1

    def test_respects_capacity_over_time(self):
        items = [
            Item(0, 4, 0.6, uid=0),
            Item(2, 6, 0.6, uid=1),  # overlaps on [2,4): must split
        ]
        a = first_fit_decreasing_length(items)
        a.audit()
        assert a.n_bins == 2


class TestDualColoring:
    def test_big_items_private(self):
        inst = Instance.from_tuples([(0, 2, 0.9), (0, 2, 0.9), (0, 2, 0.1)])
        a = dual_coloring(inst)
        a.audit()
        big_groups = [g for g in a.groups if any(it.size > 0.5 for it in g)]
        assert all(len(g) == 1 for g in big_groups)

    def test_cost_upper_bounds_opt_nr_role(self):
        """DC is a feasible non-repacking packing, so its cost ≥ OPT bounds
        and it must stay within 4×OPT_R on the tested families."""
        for seed in range(4):
            inst = uniform_random(150, 32, seed=seed)
            a = dual_coloring(inst)
            a.audit()
            opt = opt_reference(inst, max_exact=16)
            assert a.cost >= opt.lower - 1e-6
            assert a.cost <= 4.0 * opt.upper + 1e-6

    def test_empty(self):
        a = dual_coloring(Instance([]))
        assert a.cost == 0.0 and a.n_bins == 0

    def test_adversary_family(self):
        from repro.workloads.adversarial import full_adversary_schedule

        inst = full_adversary_schedule(64)
        a = dual_coloring(inst)
        a.audit()
        opt = opt_reference(inst, max_exact=16)
        assert a.cost <= 4.0 * opt.upper + 1e-6
