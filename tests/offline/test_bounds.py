"""Unit tests for the closed-form OPT bounds (Section 2 / Lemma 3.1)."""

import math

import pytest

from repro.core.instance import Instance
from repro.offline.bounds import (
    OptSandwich,
    ceil_load_bound,
    demand_bound,
    lemma31_ceil_upper,
    lemma31_demand_span_upper,
    opt_sandwich,
    span_bound,
)


@pytest.fixture
def inst():
    return Instance.from_tuples(
        [(0, 2, 0.6), (0, 2, 0.6), (1, 3, 0.3), (5, 6, 0.2)]
    )


class TestLowerBounds:
    def test_demand(self, inst):
        assert math.isclose(demand_bound(inst), 1.2 + 1.2 + 0.6 + 0.2)

    def test_span(self, inst):
        assert math.isclose(span_bound(inst), 3.0 + 1.0)

    def test_ceil_dominates_span(self, inst):
        assert ceil_load_bound(inst) >= span_bound(inst) - 1e-12

    def test_ceil_dominates_demand(self, inst):
        assert ceil_load_bound(inst) >= demand_bound(inst) - 1e-12

    def test_ceil_value(self, inst):
        # loads: [0,1): 1.2→2; [1,2): 1.5→2; [2,3): 0.3→1; [5,6): 0.2→1
        assert math.isclose(ceil_load_bound(inst), 2 + 2 + 1 + 1)


class TestUpperBounds:
    def test_lemma31_ceil(self, inst):
        assert math.isclose(lemma31_ceil_upper(inst), 2 * ceil_load_bound(inst))

    def test_lemma31_demand_span(self, inst):
        assert math.isclose(
            lemma31_demand_span_upper(inst),
            2 * demand_bound(inst) + 2 * span_bound(inst),
        )

    def test_upper_at_least_lower(self, inst):
        s = opt_sandwich(inst)
        assert s.lower <= s.upper


class TestOptSandwich:
    def test_exact_flag(self):
        assert OptSandwich(3.0, 3.0).exact
        assert not OptSandwich(3.0, 4.0).exact

    def test_midpoint(self):
        assert OptSandwich(2.0, 4.0).midpoint == 3.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            OptSandwich(5.0, 3.0)

    def test_empty_instance(self):
        s = opt_sandwich(Instance([]))
        assert s.lower == s.upper == 0.0

    def test_single_full_item(self):
        s = opt_sandwich(Instance.from_tuples([(0, 4, 1.0)]))
        assert s.lower == 4.0  # exactly one bin for 4 time units
