"""Smoke tests: every example script runs to completion.

Each example is executed in-process (import + ``main()``) with stdout
captured; the assertions check the story each example tells actually
appears in its output.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    mod = importlib.util.module_from_spec(spec)  # type: ignore[arg-type]
    sys.modules[spec.name] = mod  # type: ignore[union-attr]
    try:
        spec.loader.exec_module(mod)  # type: ignore[union-attr]
        mod.main()
    finally:
        sys.modules.pop(spec.name, None)  # type: ignore[union-attr]
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "OPT_R" in out
        assert "HybridAlgorithm" in out

    def test_aligned_inputs(self, capsys):
        out = run_example("aligned_inputs_cdff.py", capsys)
        assert "MISMATCH" not in out  # Cor 5.8 identity holds live
        assert "Figure 3" in out

    def test_adversarial_lower_bound(self, capsys):
        out = run_example("adversarial_lower_bound.py", capsys)
        assert "ratio ≥" in out
        assert "HybridAlgorithm" in out

    def test_nonclairvoyant_gap(self, capsys):
        out = run_example("nonclairvoyant_gap.py", capsys)
        assert "μ+4" in out

    @pytest.mark.slow
    def test_cloud_server_allocation(self, capsys):
        out = run_example("cloud_server_allocation.py", capsys)
        assert "pathological burst" in out

    @pytest.mark.slow
    def test_custom_sweep(self, capsys):
        out = run_example("custom_sweep.py", capsys)
        assert "SWEEP" in out
        assert "bit-exactly" in out
